//! Cross-crate integration tests: every connectivity algorithm in the
//! workspace must agree with the sequential ground truth on a shared zoo of
//! graph families, and the paper's round-complexity separation must be
//! visible on well-connected instances.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wcc_baselines::run_baseline;
use wcc_core::prelude::*;
use wcc_core::sublinear::{sublinear_components, SublinearParams};
use wcc_graph::generators::GraphFamily;
use wcc_graph::prelude::*;
use wcc_mpc::{MpcConfig, MpcContext};

fn zoo(seed: u64) -> Vec<(String, Graph)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let families = vec![
        GraphFamily::Expander { degree: 8 },
        GraphFamily::PlantedExpanders {
            num_components: 3,
            degree: 8,
        },
        GraphFamily::PaperRandom { degree: 12 },
        GraphFamily::Cycle,
        GraphFamily::BinaryTree,
        GraphFamily::RingOfCliques { clique_size: 6 },
        GraphFamily::Star,
        GraphFamily::PreferentialAttachment {
            edges_per_vertex: 2,
        },
    ];
    families
        .into_iter()
        .map(|f| (f.name(), f.generate(220, &mut rng)))
        .collect()
}

#[test]
fn pipeline_matches_ground_truth_on_the_whole_zoo() {
    let params = Params::test_scale();
    for (name, g) in zoo(1) {
        let truth = connected_components(&g);
        // Promise a generous gap: the exact endgame keeps the answer right
        // even where the promise is wrong (cycles, trees, ...).
        let result = well_connected_components(&g, 0.25, &params, 11).unwrap();
        assert!(
            result.components.same_partition(&truth),
            "pipeline mismatch on {name}: {} vs {} components",
            result.components.num_components(),
            truth.num_components()
        );
    }
}

#[test]
fn adaptive_matches_ground_truth_on_the_whole_zoo() {
    let params = Params::test_scale();
    for (name, g) in zoo(2) {
        let truth = connected_components(&g);
        let result = adaptive_components(&g, &params, 13).unwrap();
        assert!(
            result.components.same_partition(&truth),
            "adaptive mismatch on {name}"
        );
    }
}

#[test]
fn sublinear_matches_ground_truth_on_the_whole_zoo() {
    for (name, g) in zoo(3) {
        let truth = connected_components(&g);
        let result = sublinear_components(&g, 64, &SublinearParams::laptop_scale(), 17).unwrap();
        assert!(
            result.components.same_partition(&truth),
            "sublinear mismatch on {name}"
        );
    }
}

#[test]
fn all_baselines_match_ground_truth_on_the_whole_zoo() {
    for (name, g) in zoo(4) {
        let truth = connected_components(&g);
        for baseline in [
            "min-label",
            "hash-to-min",
            "random-mate",
            "shiloach-vishkin",
        ] {
            let mut ctx = MpcContext::new(
                MpcConfig::for_input_size(2 * g.num_edges() + g.num_vertices(), 0.5).permissive(),
            );
            let res = run_baseline(baseline, &g, &mut ctx, 23);
            assert!(
                res.labels.same_partition(&truth),
                "{baseline} mismatch on {name}"
            );
        }
    }
}

#[test]
fn round_separation_on_well_connected_instances() {
    // The paper's headline: on expander components the pipeline's rounds stay
    // essentially flat in n while label propagation grows with the diameter /
    // log n. Compare two sizes a factor 16 apart.
    let params = Params::laptop_scale();
    let mut ours = Vec::new();
    let mut theirs = Vec::new();
    for &n in &[256usize, 4096] {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let g = generators::planted_expander_components(&[n / 2, n / 2], 8, &mut rng);
        let result = well_connected_components(&g, 0.3, &params, 31).unwrap();
        ours.push(result.stats.total_rounds());
        let mut ctx = MpcContext::new(
            MpcConfig::for_input_size(2 * g.num_edges() + g.num_vertices(), 0.5).permissive(),
        );
        theirs.push(run_baseline("random-mate", &g, &mut ctx, 5).rounds);
    }
    // Our round count barely moves (log log n + constant endgame)...
    assert!(
        ours[1] <= ours[0] + 8,
        "pipeline rounds grew too fast: {ours:?}"
    );
    // ...while the constant-growth baseline needs noticeably more rounds on
    // the larger instance.
    assert!(
        theirs[1] > theirs[0],
        "random-mate rounds should grow with n: {theirs:?}"
    );
}

#[test]
fn pipeline_report_is_consistent_with_stats() {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let g = generators::planted_expander_components(&[150, 150], 8, &mut rng);
    let result = well_connected_components(&g, 0.3, &Params::test_scale(), 3).unwrap();
    assert_eq!(result.report.grow_phases.len(), result.report.num_batches);
    assert!(result.report.regularized_vertices >= g.num_vertices());
    assert!(result.stats.total_communication_words() > 0);
    assert!(result.stats.rounds_in_phase("regularize") >= 1);
    assert!(result.stats.rounds_in_phase("grow-components") >= 1);
    assert!(result.stats.rounds_in_phase("low-diameter-bfs") >= 1);
}
