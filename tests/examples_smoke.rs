//! Smoke test for the `examples/` directory: every example must keep
//! compiling, and `quickstart` must actually run to completion. This stops
//! examples from silently rotting as the library API evolves.

use std::path::{Path, PathBuf};
use std::process::Command;

fn cargo() -> Command {
    Command::new(std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into()))
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Where `cargo build` puts artifacts, honoring `CARGO_TARGET_DIR`.
fn target_dir(root: &Path) -> PathBuf {
    std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("target"))
}

/// Names of all `examples/*.rs` targets, from the directory listing itself so
/// a newly added example is covered without touching this test.
fn example_names(root: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(root.join("examples"))
        .expect("examples/ directory exists")
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            if path.extension()? == "rs" {
                Some(path.file_stem()?.to_string_lossy().into_owned())
            } else {
                None
            }
        })
        .collect();
    names.sort();
    names
}

#[test]
fn all_examples_build() {
    let root = workspace_root();
    let names = example_names(&root);
    assert!(!names.is_empty(), "no examples found under examples/");

    let status = cargo()
        .current_dir(&root)
        .args(["build", "--examples"])
        .status()
        .expect("failed to spawn cargo build --examples");
    assert!(status.success(), "cargo build --examples failed");

    for name in &names {
        let bin = target_dir(&root).join("debug/examples").join(name);
        assert!(
            bin.exists(),
            "example `{name}` was not produced by `cargo build --examples` \
             (looked at {})",
            bin.display()
        );
    }
}

#[test]
fn quickstart_example_runs_to_completion() {
    let root = workspace_root();
    let output = cargo()
        .current_dir(&root)
        .args(["run", "--example", "quickstart"])
        // Divide the instance sizes so the unoptimized binary finishes in
        // seconds; the example itself defaults to full scale.
        .env("WCC_EXAMPLE_SCALE", "20")
        .output()
        .expect("failed to spawn cargo run --example quickstart");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "quickstart exited with {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status.code()
    );
    assert!(
        stdout.contains("matches the sequential union-find ground truth"),
        "quickstart did not reach its final ground-truth check:\n{stdout}"
    );
}
