//! Property-based tests (proptest): the correctness invariants of every
//! algorithm hold on arbitrary random inputs, not just the hand-picked cases
//! of the unit tests.

use proptest::prelude::*;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wcc_core::leader::{contraction_graph, finish_with_bfs};
use wcc_core::prelude::*;
use wcc_core::regularize::regularize;
use wcc_core::sublinear::{sublinear_components, SublinearParams};
use wcc_graph::prelude::*;
use wcc_mpc::{MpcConfig, MpcContext};
use wcc_sketch::ConnectivitySketch;

/// Strategy: a random sparse graph given by a vertex count and an edge list.
fn arb_graph(max_n: usize, max_extra_edges: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..max_extra_edges);
        edges.prop_map(move |e| Graph::from_edges_unchecked(n, e))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn union_find_and_bfs_always_agree(g in arb_graph(120, 300)) {
        let a = connected_components(&g);
        let b = components::connected_components_union_find(&g);
        prop_assert!(a.same_partition(&b));
    }

    #[test]
    fn spanning_forest_is_always_valid(g in arb_graph(100, 250)) {
        let f = components::spanning_forest(&g);
        prop_assert!(components::verify_spanning_forest(&g, &f.edges));
        // A forest has n - #components edges.
        prop_assert_eq!(
            f.edges.len(),
            g.num_vertices() - connected_components(&g).num_components()
        );
    }

    #[test]
    fn agm_sketch_components_match_truth(g in arb_graph(80, 200), seed in 0u64..50) {
        let truth = connected_components(&g);
        let mut sk = ConnectivitySketch::new(g.num_vertices(), seed);
        for (u, v) in g.edge_iter() {
            sk.add_edge(u, v);
        }
        let got = sk.components();
        // Always a refinement; equal with the default number of phases.
        prop_assert!(got.is_refinement_of(&truth));
        prop_assert!(got.same_partition(&truth));
    }

    #[test]
    fn regularization_preserves_components_exactly(g in arb_graph(60, 150), seed in 0u64..20) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ctx = MpcContext::new(
            MpcConfig::for_input_size(4 * g.num_edges() + 16, 0.5).permissive(),
        );
        let reg = regularize(&g, &Params::test_scale(), &mut ctx, &mut rng).unwrap();
        // Regular output.
        prop_assert!(reg.graph.is_regular(reg.degree));
        // Pull-back of the product components equals the input components.
        let pulled = reg.pull_back_labels(&connected_components(&reg.graph));
        prop_assert!(pulled.same_partition(&connected_components(&g)));
    }

    #[test]
    fn contraction_plus_bfs_is_exact_for_any_partition_refining_components(
        g in arb_graph(80, 200),
        seed in 0u64..20,
    ) {
        // Start from an arbitrary refinement of the true components (random
        // sub-partition of each component) and check the endgame repairs it.
        let truth = connected_components(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        use rand::Rng;
        let raw: Vec<usize> = (0..g.num_vertices())
            .map(|v| truth.label(v) * 16 + rng.gen_range(0..3))
            .collect();
        let partition = Partition::from_raw_labels(&raw);
        let mut ctx = MpcContext::new(
            MpcConfig::for_input_size(4 * g.num_edges() + 16, 0.5).permissive(),
        );
        let (finished, _levels) = finish_with_bfs(&g, &partition, &mut ctx);
        prop_assert!(finished.equals_components(&truth));
        // And the contraction graph never contains self-loops.
        let h = contraction_graph(&g, &partition, &mut ctx);
        prop_assert!(!h.has_self_loops());
    }

    #[test]
    fn full_pipeline_is_exact_on_arbitrary_graphs(g in arb_graph(60, 140), seed in 0u64..10) {
        // The spectral-gap promise is deliberately wrong for most generated
        // graphs; exactness must hold anyway (the opportunistic part only
        // affects the round count).
        let truth = connected_components(&g);
        let result = well_connected_components(&g, 0.4, &Params::test_scale(), seed).unwrap();
        prop_assert!(result.components.same_partition(&truth));
    }

    #[test]
    fn sublinear_algorithm_is_exact_on_arbitrary_graphs(g in arb_graph(60, 140), seed in 0u64..10) {
        let truth = connected_components(&g);
        let result = sublinear_components(&g, 32, &SublinearParams::laptop_scale(), seed).unwrap();
        prop_assert!(result.components.same_partition(&truth));
    }

    #[test]
    fn partition_coarsening_is_monotone(labels in proptest::collection::vec(0usize..6, 2..60)) {
        let p = Partition::from_raw_labels(&labels);
        // Coarsening by mapping every part to a single group yields one part.
        let all_one = p.coarsen(&vec![0usize; p.num_parts()]);
        prop_assert_eq!(all_one.num_parts(), 1);
        // Coarsening by the identity keeps the partition.
        let identity: Vec<usize> = (0..p.num_parts()).collect();
        let same = p.coarsen(&identity);
        prop_assert_eq!(same.num_parts(), p.num_parts());
        prop_assert!(same.to_component_labels().same_partition(&p.to_component_labels()));
    }
}
