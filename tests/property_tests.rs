//! Property-based tests (proptest): the correctness invariants of every
//! algorithm hold on arbitrary random inputs, not just the hand-picked cases
//! of the unit tests.

use proptest::prelude::*;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wcc_core::leader::{contraction_graph, finish_with_bfs};
use wcc_core::prelude::*;
use wcc_core::regularize::regularize;
use wcc_core::sublinear::{sublinear_components, SublinearParams};
use wcc_graph::prelude::*;
use wcc_mpc::{MpcConfig, MpcContext};
use wcc_sketch::ConnectivitySketch;

/// Strategy: a random sparse graph given by a vertex count and an edge list.
fn arb_graph(max_n: usize, max_extra_edges: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..max_extra_edges);
        edges.prop_map(move |e| Graph::from_edges_unchecked(n, e))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn union_find_and_bfs_always_agree(g in arb_graph(120, 300)) {
        let a = connected_components(&g);
        let b = components::connected_components_union_find(&g);
        prop_assert!(a.same_partition(&b));
    }

    #[test]
    fn spanning_forest_is_always_valid(g in arb_graph(100, 250)) {
        let f = components::spanning_forest(&g);
        prop_assert!(components::verify_spanning_forest(&g, &f.edges));
        // A forest has n - #components edges.
        prop_assert_eq!(
            f.edges.len(),
            g.num_vertices() - connected_components(&g).num_components()
        );
    }

    #[test]
    fn agm_sketch_components_match_truth(g in arb_graph(80, 200), seed in 0u64..50) {
        let truth = connected_components(&g);
        let mut sk = ConnectivitySketch::new(g.num_vertices(), seed);
        for (u, v) in g.edge_iter() {
            sk.add_edge(u, v);
        }
        let got = sk.components();
        // Always a refinement; equal with the default number of phases.
        prop_assert!(got.is_refinement_of(&truth));
        prop_assert!(got.same_partition(&truth));
    }

    #[test]
    fn regularization_preserves_components_exactly(g in arb_graph(60, 150), seed in 0u64..20) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ctx = MpcContext::new(
            MpcConfig::for_input_size(4 * g.num_edges() + 16, 0.5).permissive(),
        );
        let reg = regularize(&g, &Params::test_scale(), &mut ctx, &mut rng).unwrap();
        // Regular output.
        prop_assert!(reg.graph.is_regular(reg.degree));
        // Pull-back of the product components equals the input components.
        let pulled = reg.pull_back_labels(&connected_components(&reg.graph));
        prop_assert!(pulled.same_partition(&connected_components(&g)));
    }

    #[test]
    fn contraction_plus_bfs_is_exact_for_any_partition_refining_components(
        g in arb_graph(80, 200),
        seed in 0u64..20,
    ) {
        // Start from an arbitrary refinement of the true components (random
        // sub-partition of each component) and check the endgame repairs it.
        let truth = connected_components(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        use rand::Rng;
        let raw: Vec<usize> = (0..g.num_vertices())
            .map(|v| truth.label(v) * 16 + rng.gen_range(0..3))
            .collect();
        let partition = Partition::from_raw_labels(&raw);
        let mut ctx = MpcContext::new(
            MpcConfig::for_input_size(4 * g.num_edges() + 16, 0.5).permissive(),
        );
        let (finished, _levels) = finish_with_bfs(&g, &partition, &mut ctx);
        prop_assert!(finished.equals_components(&truth));
        // And the contraction graph never contains self-loops.
        let h = contraction_graph(&g, &partition, &mut ctx);
        prop_assert!(!h.has_self_loops());
    }

    #[test]
    fn full_pipeline_is_exact_on_arbitrary_graphs(g in arb_graph(60, 140), seed in 0u64..10) {
        // The spectral-gap promise is deliberately wrong for most generated
        // graphs; exactness must hold anyway (the opportunistic part only
        // affects the round count).
        let truth = connected_components(&g);
        let result = well_connected_components(&g, 0.4, &Params::test_scale(), seed).unwrap();
        prop_assert!(result.components.same_partition(&truth));
    }

    #[test]
    fn sublinear_algorithm_is_exact_on_arbitrary_graphs(g in arb_graph(60, 140), seed in 0u64..10) {
        let truth = connected_components(&g);
        let result = sublinear_components(&g, 32, &SublinearParams::laptop_scale(), seed).unwrap();
        prop_assert!(result.components.same_partition(&truth));
    }

    #[test]
    fn text_to_binary_chunks_to_text_preserves_the_edge_multiset(
        g in arb_graph(80, 200),
        batch_edges in 1usize..40,
    ) {
        use wcc_graph::io::{read_edge_chunks, write_edge_chunks};

        // Text leg: serialize and re-load (this is where ids are remapped).
        let mut text1 = Vec::new();
        write_edge_list(&g, &mut text1).unwrap();
        let loaded = read_edge_list(std::io::Cursor::new(text1)).unwrap();

        // Binary leg: the re-loaded edges in *original* ids, chunked.
        let raw_edges: Vec<(u64, u64)> = loaded
            .graph
            .edge_iter()
            .map(|(u, v)| (loaded.original_ids[u], loaded.original_ids[v]))
            .collect();
        let chunks: Vec<&[(u64, u64)]> = raw_edges.chunks(batch_edges).collect();
        let mut binary = Vec::new();
        write_edge_chunks(&chunks, &mut binary).unwrap();
        let decoded = read_edge_chunks(std::io::Cursor::new(binary)).unwrap();

        // Back to text: emit the decoded stream as edge-list lines (keeping
        // the raw id space) and re-load it one final time.
        let flat: Vec<(u64, u64)> = decoded.into_iter().flatten().collect();
        let mut text2 = String::from("# decoded from the binary chunk leg\n");
        for &(a, b) in &flat {
            text2.push_str(&format!("{a} {b}\n"));
        }
        let final_loaded = read_edge_list(std::io::Cursor::new(text2.into_bytes())).unwrap();

        // The normalized edge multiset survived the whole journey. (Isolated
        // vertices don't: no serialization leg carries them, so the multiset
        // — not the vertex count — is the invariant.)
        let multiset = |edges: Vec<(u64, u64)>| {
            let mut m: Vec<(u64, u64)> = edges
                .into_iter()
                .map(|(a, b)| (a.min(b), a.max(b)))
                .collect();
            m.sort_unstable();
            m
        };
        let original: Vec<(u64, u64)> =
            g.edge_iter().map(|(u, v)| (u as u64, v as u64)).collect();
        let survived: Vec<(u64, u64)> = final_loaded
            .graph
            .edge_iter()
            .map(|(u, v)| {
                (
                    final_loaded.original_ids[u],
                    final_loaded.original_ids[v],
                )
            })
            .collect();
        prop_assert_eq!(multiset(original), multiset(survived));
    }

    #[test]
    fn truncated_chunk_streams_error_instead_of_panicking(
        g in arb_graph(40, 100),
        batch_edges in 1usize..20,
        cut_permille in 0usize..1000,
    ) {
        use wcc_graph::io::{read_edge_chunks, write_edge_chunks, IoError};

        let raw: Vec<(u64, u64)> = g.edge_iter().map(|(u, v)| (u as u64, v as u64)).collect();
        let chunks: Vec<&[(u64, u64)]> = raw.chunks(batch_edges).collect();
        let mut binary = Vec::new();
        write_edge_chunks(&chunks, &mut binary).unwrap();

        // Clean EOF is legal exactly at the header boundary and after each
        // chunk; everywhere else the reader must report truncation (and must
        // never panic).
        let mut boundaries = vec![8usize];
        let mut offset = 8usize;
        for c in &chunks {
            offset += 8 + 16 * c.len();
            boundaries.push(offset);
        }
        let cut = binary.len() * cut_permille / 1000;
        let result = read_edge_chunks(std::io::Cursor::new(binary[..cut].to_vec()));
        if boundaries.contains(&cut) {
            prop_assert!(result.is_ok(), "cut {} is a chunk boundary", cut);
        } else {
            prop_assert!(
                matches!(result, Err(IoError::Truncated { .. })),
                "cut {} inside the stream must report truncation", cut
            );
        }
    }

    #[test]
    fn corrupted_chunk_headers_error_instead_of_panicking(
        g in arb_graph(40, 100),
        batch_edges in 1usize..20,
        chunk_pick in 0usize..20,
        flip_bit in 0u32..4,
    ) {
        use wcc_graph::io::{read_edge_chunks, write_edge_chunks, IoError};

        let raw: Vec<(u64, u64)> = g.edge_iter().map(|(u, v)| (u as u64, v as u64)).collect();
        if raw.is_empty() {
            return; // a graph with no edges has no chunk header to corrupt
        }
        let chunks: Vec<&[(u64, u64)]> = raw.chunks(batch_edges).collect();
        let mut binary = Vec::new();
        write_edge_chunks(&chunks, &mut binary).unwrap();

        // Corrupt the low nibble of one chunk's length header: the length is
        // no longer a multiple of 16, which the reader must flag as Corrupt
        // — never panic, never mis-decode.
        let target = chunk_pick % chunks.len();
        let mut offset = 8usize;
        for c in chunks.iter().take(target) {
            offset += 8 + 16 * c.len();
        }
        binary[offset] ^= 1u8 << flip_bit;
        let result = read_edge_chunks(std::io::Cursor::new(binary));
        prop_assert!(
            matches!(result, Err(IoError::Corrupt { chunk, .. }) if chunk == target),
            "corrupting chunk {}'s header must surface as Corrupt", target
        );

        // Corrupting the magic must surface as BadMagic.
        let mut bad_magic = Vec::new();
        write_edge_chunks(&chunks, &mut bad_magic).unwrap();
        bad_magic[0] ^= 0xFF;
        prop_assert!(matches!(
            read_edge_chunks(std::io::Cursor::new(bad_magic)),
            Err(IoError::BadMagic)
        ));
    }

    #[test]
    fn streaming_replay_is_exact_on_arbitrary_graphs(
        g in arb_graph(50, 120),
        seed in 0u64..8,
        batch_edges in 1usize..60,
    ) {
        use wcc_core::stream::{IncrementalComponents, StreamParams};

        // Arbitrary graphs violate every well-connectedness premise; the
        // incremental engine must still land on the exact components, just
        // like the one-shot pipeline does.
        let truth = connected_components(&g);
        let edges: Vec<(u64, u64)> = g.edge_iter().map(|(u, v)| (u as u64, v as u64)).collect();
        let mut engine = IncrementalComponents::new(StreamParams::test_scale(), seed);
        for chunk in edges.chunks(batch_edges) {
            engine.apply_batch(chunk).unwrap();
        }
        prop_assert!(engine.labels_for_universe(g.num_vertices()).same_partition(&truth));
    }

    #[test]
    fn compact_edge_codec_round_trips_and_preserves_order(
        a1 in proptest::num::u32::ANY,
        b1 in proptest::num::u32::ANY,
        a2 in proptest::num::u32::ANY,
        b2 in proptest::num::u32::ANY,
    ) {
        use wcc_mpc::{pack_edge, unpack_edge};

        // Every id in the u32 space round-trips through the packed u64...
        let p1 = pack_edge(a1 as usize, b1 as usize);
        let p2 = pack_edge(a2 as usize, b2 as usize);
        prop_assert_eq!(unpack_edge(p1), (a1 as usize, b1 as usize));
        prop_assert_eq!(unpack_edge(p2), (a2 as usize, b2 as usize));
        // ...and the packing is order-preserving: u64 comparison of packed
        // edges agrees with lexicographic comparison of the tuples, which
        // is what lets the contraction radix-sort packed words directly.
        prop_assert_eq!(p1.cmp(&p2), (a1, b1).cmp(&(a2, b2)));
    }

    #[test]
    fn width_negotiation_is_compact_exactly_up_to_the_u32_id_space(
        small_ids in 0usize..(1 << 20),
        near_boundary in 0usize..8,
    ) {
        use wcc_mpc::compact::COMPACT_ID_SPACE;
        use wcc_mpc::{pack_edge, unpack_edge, TupleWidth};

        // Graph-scale id spaces always negotiate the compact width.
        prop_assert!(TupleWidth::negotiate(small_ids).is_compact());

        // Straddling the boundary: an id space of up to 2^32 ids (top id
        // 2^32 - 1 still fits a u32) negotiates compact; anything larger
        // must fall back to the wide path instead of truncating ids.
        let ids = (1usize << 32) - 4 + near_boundary;
        let width = TupleWidth::negotiate(ids);
        prop_assert_eq!(width.is_compact(), (ids as u128) <= COMPACT_ID_SPACE);
        if width.is_compact() {
            // No truncation: the largest id of a compact space round-trips.
            let top = ids - 1;
            prop_assert_eq!(unpack_edge(pack_edge(top, top)), (top, top));
        }
    }

    #[test]
    fn op_chunks_round_trip_for_arbitrary_schedules(
        ops_raw in proptest::collection::vec((0u64..500, 0u64..500, proptest::bool::ANY), 0..200),
        batch_ops in 1usize..40,
    ) {
        use wcc_graph::io::{read_op_chunks, write_op_chunks, EdgeOp};

        let ops: Vec<EdgeOp> = ops_raw
            .iter()
            .map(|&(u, v, del)| if del { EdgeOp::delete(u, v) } else { EdgeOp::insert(u, v) })
            .collect();
        let chunks: Vec<&[EdgeOp]> = ops.chunks(batch_ops).collect();
        let mut binary = Vec::new();
        write_op_chunks(&chunks, &mut binary).unwrap();
        let decoded = read_op_chunks(std::io::Cursor::new(binary)).unwrap();
        let expect: Vec<Vec<EdgeOp>> = chunks.iter().map(|c| c.to_vec()).collect();
        prop_assert_eq!(decoded, expect);
    }

    #[test]
    fn truncated_or_tag_corrupted_op_streams_error_instead_of_panicking(
        ops_raw in proptest::collection::vec((0u64..100, 0u64..100, proptest::bool::ANY), 1..80),
        batch_ops in 1usize..20,
        cut_permille in 0usize..1000,
        bad_tag in 2u8..255,
    ) {
        use wcc_graph::io::{read_op_chunks, write_op_chunks, EdgeOp, IoError, CHUNK_BYTES_PER_OP};

        let ops: Vec<EdgeOp> = ops_raw
            .iter()
            .map(|&(u, v, del)| if del { EdgeOp::delete(u, v) } else { EdgeOp::insert(u, v) })
            .collect();
        let chunks: Vec<&[EdgeOp]> = ops.chunks(batch_ops).collect();
        let mut binary = Vec::new();
        write_op_chunks(&chunks, &mut binary).unwrap();

        // Truncation at every offset: clean EOF is legal exactly at the
        // header boundary and after each chunk, truncation everywhere else.
        let mut boundaries = vec![8usize];
        let mut offset = 8usize;
        for c in &chunks {
            offset += 8 + CHUNK_BYTES_PER_OP * c.len();
            boundaries.push(offset);
        }
        let cut = binary.len() * cut_permille / 1000;
        let result = read_op_chunks(std::io::Cursor::new(binary[..cut].to_vec()));
        if boundaries.contains(&cut) {
            prop_assert!(result.is_ok(), "cut {} is a chunk boundary", cut);
        } else {
            prop_assert!(
                matches!(result, Err(IoError::Truncated { .. })),
                "cut {} inside the stream must report truncation", cut
            );
        }

        // An op tag outside {insert, delete} must surface as Corrupt naming
        // the right chunk — never panic, never decode garbage.
        let target = (cut_permille + batch_ops) % chunks.len();
        let record = cut_permille % chunks[target].len();
        let mut offset = 8usize;
        for c in chunks.iter().take(target) {
            offset += 8 + CHUNK_BYTES_PER_OP * c.len();
        }
        let mut corrupted = Vec::new();
        write_op_chunks(&chunks, &mut corrupted).unwrap();
        corrupted[offset + 8 + record * CHUNK_BYTES_PER_OP] = bad_tag;
        prop_assert!(
            matches!(
                read_op_chunks(std::io::Cursor::new(corrupted)),
                Err(IoError::Corrupt { chunk, .. }) if chunk == target
            ),
            "corrupting a tag in chunk {} must surface as Corrupt", target
        );
    }

    #[test]
    fn over_deletion_is_always_rejected_and_never_applied(
        g in arb_graph(40, 100),
        seed in 0u64..8,
        pick in 0usize..1_000_000,
    ) {
        use wcc_core::stream::{IncrementalComponents, StreamParams};
        use wcc_graph::io::EdgeOp;

        let edges: Vec<(u64, u64)> = g.edge_iter().map(|(u, v)| (u as u64, v as u64)).collect();
        if edges.is_empty() {
            return;
        }
        let ops: Vec<EdgeOp> = edges.iter().map(|&(u, v)| EdgeOp::insert(u, v)).collect();
        let mut engine = IncrementalComponents::new(StreamParams::test_scale(), seed);
        engine.apply_ops_batch(&ops).unwrap();
        let batches_before = engine.batches_applied();
        let edges_before = engine.num_edges();

        // Deleting one more copy than was ever inserted is a hard error —
        // as a double delete of an existing edge...
        let (u, v) = edges[pick % edges.len()];
        let copies = edges
            .iter()
            .filter(|&&(a, b)| (a.min(b), a.max(b)) == (u.min(v), u.max(v)))
            .count();
        let over: Vec<EdgeOp> = (0..=copies).map(|_| EdgeOp::delete(u, v)).collect();
        prop_assert!(engine.apply_ops_batch(&over).is_err());
        // ...and as a delete of a never-inserted edge (fresh vertex pair).
        let fresh = 1_000_000u64 + (pick as u64 % 1000);
        prop_assert!(engine.apply_ops_batch(&[EdgeOp::delete(fresh, fresh + 1)]).is_err());

        // Rejected batches left the engine untouched.
        prop_assert_eq!(engine.batches_applied(), batches_before);
        prop_assert_eq!(engine.num_edges(), edges_before);
        // Exactly `copies` deletions of the same pair are fine.
        prop_assert!(engine.apply_ops_batch(&over[..copies]).is_ok());
        prop_assert_eq!(engine.num_edges(), edges_before - copies);
    }

    #[test]
    fn partition_coarsening_is_monotone(labels in proptest::collection::vec(0usize..6, 2..60)) {
        let p = Partition::from_raw_labels(&labels);
        // Coarsening by mapping every part to a single group yields one part.
        let all_one = p.coarsen(&vec![0usize; p.num_parts()]);
        prop_assert_eq!(all_one.num_parts(), 1);
        // Coarsening by the identity keeps the partition.
        let identity: Vec<usize> = (0..p.num_parts()).collect();
        let same = p.coarsen(&identity);
        prop_assert_eq!(same.num_parts(), p.num_parts());
        prop_assert!(same.to_component_labels().same_partition(&p.to_component_labels()));
    }
}
