//! Distributional equivalence of the v3 walk kernel against the executable
//! spec kernel.
//!
//! The v3 kernel (stay-run compression + 32-bit keystream draws, DESIGN.md
//! §10) consumes the per-vertex ChaCha8 streams differently from the spec
//! engine, so fixed-seed outputs legitimately differ — but both kernels
//! simulate the *same* lazy random walk on the self-loop-padded graph, so
//! their endpoint distributions must agree. We pin that with a two-sample
//! χ² test on per-start endpoint frequencies across three regular graph
//! families and three seeds.
//!
//! The statistic: for equal sample sizes the two-sample χ² is
//! `Σ (a_c − b_c)² / (a_c + b_c)` over occupied cells `c`, which under the
//! null follows χ² with roughly `(occupied cells − starts)` degrees of
//! freedom. We accept below `df + 6·√(2·df) + 16` — about six standard
//! deviations above the mean, loose enough that a correct kernel never
//! trips it across the 9 (family, seed) pairs, tight enough that a biased
//! neighbor draw or an off-by-one stay-run blows straight through it
//! (verified by mutation during development: dropping the Lemire rejection
//! or miscounting a run yields statistics 10–100× over threshold).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wcc_core::walks::{direct_walk_endpoint, v3_walk_endpoint};
use wcc_graph::generators::{cycle, planted_expander_components, random_regular_permutation_graph};
use wcc_graph::Graph;

const SEEDS: [u64; 3] = [5, 17, 41];
const WALK_LEN: usize = 12;
const SAMPLES_PER_START: usize = 300;

fn families(seed: u64) -> Vec<(&'static str, Graph)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA71);
    vec![
        (
            "random_regular",
            random_regular_permutation_graph(40, 8, &mut rng),
        ),
        (
            "planted_expanders",
            planted_expander_components(&[20, 20], 8, &mut rng),
        ),
        ("cycle", cycle(40)),
    ]
}

/// Per-start endpoint histograms for one kernel: `hist[v][e]` counts walks
/// from `v` ending at `e`.
fn sample_endpoints<F: FnMut(&Graph, usize, &mut ChaCha8Rng) -> usize>(
    g: &Graph,
    seed: u64,
    tag: u64,
    mut endpoint: F,
) -> Vec<Vec<u64>> {
    let n = g.num_vertices();
    let mut hist = vec![vec![0u64; n]; n];
    for (v, row) in hist.iter_mut().enumerate() {
        // One independent stream per (kernel, start); successive walks on a
        // stream are independent draws.
        let mut rng = ChaCha8Rng::seed_from_u64(wcc_mpc::derive_stream_seed(seed ^ tag, v as u64));
        for _ in 0..SAMPLES_PER_START {
            row[endpoint(g, v, &mut rng)] += 1;
        }
    }
    hist
}

#[test]
fn v3_endpoint_distribution_matches_spec_kernel() {
    for seed in SEEDS {
        for (name, g) in families(seed) {
            let delta = g.max_degree();
            assert!(
                delta > 0 && g.is_regular(delta),
                "family {name} must be regular for the batched kernels"
            );
            let padded = g.with_self_loops(delta);

            let spec = sample_endpoints(&g, seed, 0x57EC, |g_, v, rng| {
                // Spec semantics: direct steps on the materialised
                // self-loop-padded graph (span 2Δ, stay probability 1/2).
                let _ = g_;
                direct_walk_endpoint(&padded, v, WALK_LEN, rng)
            });
            let v3 = sample_endpoints(&g, seed, 0x0003, |g_, v, rng| {
                v3_walk_endpoint(g_, v, WALK_LEN, rng)
            });

            let mut chi2 = 0.0f64;
            let mut occupied = 0usize;
            for v in 0..g.num_vertices() {
                for e in 0..g.num_vertices() {
                    let (a, b) = (spec[v][e] as f64, v3[v][e] as f64);
                    if a + b > 0.0 {
                        occupied += 1;
                        chi2 += (a - b) * (a - b) / (a + b);
                    }
                }
            }
            let df = occupied.saturating_sub(g.num_vertices()) as f64;
            let threshold = df + 6.0 * (2.0 * df).sqrt() + 16.0;
            assert!(
                chi2 < threshold,
                "endpoint distributions diverged: family {name}, seed {seed}: \
                 χ² = {chi2:.1} over {occupied} cells (df ≈ {df:.0}, \
                 threshold {threshold:.1})"
            );
        }
    }
}
