//! Integration tests of the MPC model invariants: memory budgets are
//! respected (or violations reported), round accounting is additive across
//! phases, and the simulated primitives agree with their specification.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wcc_core::prelude::*;
use wcc_graph::prelude::*;
use wcc_mpc::primitives::{count_by_key, distributed_dedup, distributed_search, distributed_sort};
use wcc_mpc::{Cluster, MpcConfig, MpcContext, MpcError};

#[test]
fn strict_memory_mode_rejects_undersized_clusters() {
    // A cluster that cannot even hold the input must refuse to shuffle.
    let config = MpcConfig {
        memory_per_machine: 8,
        num_machines: 2,
        delta: 0.5,
        strict_memory: true,
        threads: 1,
    };
    assert!(config.check_feasible(1000).is_err());
    let mut ctx = MpcContext::new(config);
    let cluster = Cluster::from_tuples(&config, (0u64..500).map(|i| (i, i)).collect());
    let err = cluster.shuffle_by_key(&mut ctx, |t| t.0).unwrap_err();
    assert!(matches!(err, MpcError::MemoryExceeded { .. }));
}

#[test]
fn pipeline_respects_its_memory_budget_on_well_sized_clusters() {
    // With the default sizing (memory ≈ input^delta, 4x machines slack) the
    // pipeline should not record any memory violations on expander inputs.
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let g = generators::planted_expander_components(&[200, 200], 8, &mut rng);
    let result = well_connected_components(&g, 0.3, &Params::test_scale(), 5).unwrap();
    assert_eq!(
        result.stats.memory_violations(),
        0,
        "pipeline overflowed a machine: max load {} words",
        result.stats.max_machine_load_words()
    );
}

#[test]
fn phase_rounds_sum_to_total_rounds() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let g = generators::random_regular_permutation_graph(300, 8, &mut rng);
    let result = well_connected_components(&g, 0.3, &Params::test_scale(), 7).unwrap();
    let phase_sum: u64 = result.stats.phases().iter().map(|p| p.rounds).sum();
    assert_eq!(phase_sum, result.stats.total_rounds());
    let comm_sum: u64 = result
        .stats
        .phases()
        .iter()
        .map(|p| p.communication_words)
        .sum();
    assert_eq!(comm_sum, result.stats.total_communication_words());
}

#[test]
fn sort_search_dedup_and_count_agree_with_naive_implementations() {
    let config = MpcConfig::for_input_size(1 << 14, 0.5);
    let mut ctx = MpcContext::new(config);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    use rand::Rng;
    let tuples: Vec<(u64, u64)> = (0..3000).map(|i| (rng.gen_range(0..500), i)).collect();
    let cluster = Cluster::from_tuples(&config, tuples.clone());

    // Sort.
    let sorted = distributed_sort(&cluster, &mut ctx, |t| t.0).unwrap();
    let keys: Vec<u64> = sorted.gather().iter().map(|t| t.0).collect();
    let mut expected = keys.clone();
    expected.sort_unstable();
    assert_eq!(keys, expected);

    // Search.
    let data: Vec<(u64, u64)> = (0..100).map(|i| (i * 3, i)).collect();
    let queries: Vec<u64> = vec![0, 3, 4, 297, 300];
    let found = distributed_search(&data, &queries, &mut ctx);
    assert_eq!(found, vec![Some(0), Some(1), None, Some(99), None]);

    // Dedup.
    let deduped = distributed_dedup(&cluster, &mut ctx, |t| t.0).unwrap();
    let mut distinct: Vec<u64> = tuples.iter().map(|t| t.0).collect();
    distinct.sort_unstable();
    distinct.dedup();
    assert_eq!(deduped.len(), distinct.len());

    // Count.
    let counts = count_by_key(&cluster, &mut ctx, |t| t.0).unwrap();
    let total: u64 = counts.iter().map(|&(_, c)| c).sum();
    assert_eq!(total, tuples.len() as u64);
}

#[test]
fn sort_round_cost_scales_with_inverse_delta() {
    // The O(1/δ) factors the paper carries around: halving δ (squaring the
    // number of memory-limited levels) roughly doubles the sort rounds.
    let big_memory = MpcConfig::with_memory(1 << 20, 1 << 10);
    let small_memory = MpcConfig::with_memory(1 << 20, 1 << 5);
    assert!(small_memory.sort_rounds(1 << 20) >= 2 * big_memory.sort_rounds(1 << 20));
}

#[test]
fn total_memory_of_default_configs_is_near_linear() {
    for &n in &[1usize << 12, 1 << 16, 1 << 20] {
        let config = MpcConfig::for_input_size(n, 0.5);
        assert!(config.total_memory() >= n);
        assert!(
            config.total_memory() <= 16 * n,
            "total memory should stay within polylog slack of the input size"
        );
    }
}
