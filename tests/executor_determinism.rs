//! Cross-backend determinism: the threaded executor must be *bit-identical*
//! to the sequential one.
//!
//! This is the contract that makes the backend pluggable at all (DESIGN.md,
//! "The executor seam"): every source of randomness is a per-vertex/chunk
//! ChaCha8 stream derived from the master seed, results are reassembled in
//! index order, and statistics merge through ordered `WorkerStats` — so the
//! output labels, round counts, communication words and per-phase breakdowns
//! may not depend on the thread count in any way. Here we pin that down for
//! the two end-to-end entry points across 1/2/8 threads, three seeds and
//! three graph families.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wcc_core::pipeline::{adaptive_components, well_connected_components};
use wcc_core::Params;
use wcc_graph::generators::GraphFamily;
use wcc_graph::Graph;

const THREADED: [usize; 2] = [2, 8];
const SEEDS: [u64; 3] = [3, 11, 29];

fn families() -> Vec<(GraphFamily, f64)> {
    vec![
        (GraphFamily::Expander { degree: 8 }, 0.3),
        (
            GraphFamily::PlantedExpanders {
                num_components: 3,
                degree: 8,
            },
            0.3,
        ),
        (GraphFamily::RingOfCliques { clique_size: 10 }, 0.15),
    ]
}

fn instance(family: &GraphFamily, index: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(9000 + index);
    family.generate(140, &mut rng)
}

#[test]
fn well_connected_components_is_bit_identical_across_thread_counts() {
    for (fi, (family, lambda)) in families().into_iter().enumerate() {
        let g = instance(&family, fi as u64);
        for seed in SEEDS {
            let baseline =
                well_connected_components(&g, lambda, &Params::test_scale().with_threads(1), seed)
                    .expect("sequential run succeeds");
            for threads in THREADED {
                let run = well_connected_components(
                    &g,
                    lambda,
                    &Params::test_scale().with_threads(threads),
                    seed,
                )
                .expect("threaded run succeeds");
                assert_eq!(
                    baseline.components, run.components,
                    "labels diverged: family {fi}, seed {seed}, threads {threads}"
                );
                assert_eq!(
                    baseline.stats, run.stats,
                    "RoundStats diverged: family {fi}, seed {seed}, threads {threads}"
                );
                assert_eq!(
                    baseline.report.walk_length, run.report.walk_length,
                    "walk length diverged: family {fi}, seed {seed}, threads {threads}"
                );
                assert_eq!(
                    baseline.report.bfs_levels, run.report.bfs_levels,
                    "endgame depth diverged: family {fi}, seed {seed}, threads {threads}"
                );
            }
        }
    }
}

#[test]
fn adaptive_components_is_bit_identical_across_thread_counts() {
    // The adaptive loop re-runs the pipeline once per gap-guess level, so
    // keep this to the two expander families (the ring would descend many
    // levels and multiply the runtime without exercising new code paths).
    for (fi, (family, _)) in families().into_iter().take(2).enumerate() {
        let g = instance(&family, 100 + fi as u64);
        for seed in SEEDS {
            let baseline = adaptive_components(&g, &Params::test_scale().with_threads(1), seed)
                .expect("sequential run succeeds");
            for threads in THREADED {
                let run =
                    adaptive_components(&g, &Params::test_scale().with_threads(threads), seed)
                        .expect("threaded run succeeds");
                assert_eq!(
                    baseline.components, run.components,
                    "labels diverged: family {fi}, seed {seed}, threads {threads}"
                );
                assert_eq!(
                    baseline.stats, run.stats,
                    "RoundStats diverged: family {fi}, seed {seed}, threads {threads}"
                );
                assert_eq!(
                    baseline.lambda_levels, run.lambda_levels,
                    "gap-guess schedule diverged: family {fi}, seed {seed}, threads {threads}"
                );
                assert_eq!(
                    baseline.rounds_per_level, run.rounds_per_level,
                    "per-level rounds diverged: family {fi}, seed {seed}, threads {threads}"
                );
            }
        }
    }
}
