//! Cross-backend determinism: the threaded executor must be *bit-identical*
//! to the sequential one.
//!
//! This is the contract that makes the backend pluggable at all (DESIGN.md,
//! "The executor seam"): every source of randomness is a per-vertex/chunk
//! ChaCha8 stream derived from the master seed, results are reassembled in
//! index order, and statistics merge through ordered `WorkerStats` — so the
//! output labels, round counts, communication words and per-phase breakdowns
//! may not depend on the thread count in any way. Here we pin that down for
//! the two end-to-end entry points across 1/2/8 threads, three seeds and
//! three graph families.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wcc_core::pipeline::{adaptive_components, well_connected_components};
use wcc_core::Params;
use wcc_graph::generators::GraphFamily;
use wcc_graph::Graph;

const THREADED: [usize; 2] = [2, 8];
const SEEDS: [u64; 3] = [3, 11, 29];

fn families() -> Vec<(GraphFamily, f64)> {
    vec![
        (GraphFamily::Expander { degree: 8 }, 0.3),
        (
            GraphFamily::PlantedExpanders {
                num_components: 3,
                degree: 8,
            },
            0.3,
        ),
        (GraphFamily::RingOfCliques { clique_size: 10 }, 0.15),
    ]
}

fn instance(family: &GraphFamily, index: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(9000 + index);
    family.generate(140, &mut rng)
}

#[test]
fn well_connected_components_is_bit_identical_across_thread_counts() {
    for (fi, (family, lambda)) in families().into_iter().enumerate() {
        let g = instance(&family, fi as u64);
        for seed in SEEDS {
            let baseline =
                well_connected_components(&g, lambda, &Params::test_scale().with_threads(1), seed)
                    .expect("sequential run succeeds");
            for threads in THREADED {
                let run = well_connected_components(
                    &g,
                    lambda,
                    &Params::test_scale().with_threads(threads),
                    seed,
                )
                .expect("threaded run succeeds");
                assert_eq!(
                    baseline.components, run.components,
                    "labels diverged: family {fi}, seed {seed}, threads {threads}"
                );
                assert_eq!(
                    baseline.stats, run.stats,
                    "RoundStats diverged: family {fi}, seed {seed}, threads {threads}"
                );
                assert_eq!(
                    baseline.report.walk_length, run.report.walk_length,
                    "walk length diverged: family {fi}, seed {seed}, threads {threads}"
                );
                assert_eq!(
                    baseline.report.bfs_levels, run.report.bfs_levels,
                    "endgame depth diverged: family {fi}, seed {seed}, threads {threads}"
                );
            }
        }
    }
}

#[test]
fn adaptive_components_is_bit_identical_across_thread_counts() {
    // The adaptive loop re-runs the pipeline once per gap-guess level, so
    // keep this to the two expander families (the ring would descend many
    // levels and multiply the runtime without exercising new code paths).
    for (fi, (family, _)) in families().into_iter().take(2).enumerate() {
        let g = instance(&family, 100 + fi as u64);
        for seed in SEEDS {
            let baseline = adaptive_components(&g, &Params::test_scale().with_threads(1), seed)
                .expect("sequential run succeeds");
            for threads in THREADED {
                let run =
                    adaptive_components(&g, &Params::test_scale().with_threads(threads), seed)
                        .expect("threaded run succeeds");
                assert_eq!(
                    baseline.components, run.components,
                    "labels diverged: family {fi}, seed {seed}, threads {threads}"
                );
                assert_eq!(
                    baseline.stats, run.stats,
                    "RoundStats diverged: family {fi}, seed {seed}, threads {threads}"
                );
                assert_eq!(
                    baseline.lambda_levels, run.lambda_levels,
                    "gap-guess schedule diverged: family {fi}, seed {seed}, threads {threads}"
                );
                assert_eq!(
                    baseline.rounds_per_level, run.rounds_per_level,
                    "per-level rounds diverged: family {fi}, seed {seed}, threads {threads}"
                );
            }
        }
    }
}

/// The zero-materialisation walk engine (Step 2's hot path): the flat
/// endpoint arena produced by `independent_lazy_walks` against the virtual
/// `LazyView` must be bit-identical across thread counts — and bit-identical
/// to simulating the same per-vertex streams on the *materialised*
/// `with_self_loops` graph, which is the executable spec the lazy view
/// replaces.
#[test]
fn lazy_walk_engine_is_bit_identical_across_thread_counts() {
    use rand::Rng;
    use wcc_core::walks::{direct_walk_endpoint, independent_lazy_walks, WalkKernel, WalkMode};
    use wcc_mpc::{derive_stream_seed, MpcConfig, MpcContext};

    for seed in SEEDS {
        let mut graph_rng = ChaCha8Rng::seed_from_u64(seed);
        let g = wcc_graph::generators::random_regular_permutation_graph(200, 8, &mut graph_rng);
        let (t, k) = (24usize, 3usize);

        // Reference: per-vertex ChaCha8 streams on the materialised graph.
        let delta = g.max_degree();
        let lazy_materialized = g.with_self_loops(delta);
        let mut master = ChaCha8Rng::seed_from_u64(seed ^ 0x5EED);
        let base = master.gen::<u64>();
        let mut expected = Vec::with_capacity(200 * k);
        for v in 0..g.num_vertices() {
            let mut vrng = ChaCha8Rng::seed_from_u64(derive_stream_seed(base, v as u64));
            for _ in 0..k {
                expected.push(direct_walk_endpoint(&lazy_materialized, v, t, &mut vrng));
            }
        }

        let mut all_stats = Vec::new();
        for threads in [1usize, 2, 8] {
            let cfg = MpcConfig::for_input_size(4 * g.num_edges(), 0.5)
                .permissive()
                .with_threads(threads);
            let mut ctx = MpcContext::new(cfg);
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5EED);
            let endpoints = independent_lazy_walks(
                &g,
                t,
                k,
                WalkMode::Direct,
                WalkKernel::Spec,
                2,
                &mut ctx,
                &mut rng,
            )
            .expect("regular graph");
            assert_eq!(
                endpoints, expected,
                "walk endpoints diverged from the materialised reference \
                 (seed {seed}, threads {threads})"
            );
            all_stats.push(ctx.into_stats());
        }
        assert_eq!(all_stats[0], all_stats[1], "stats diverged at 2 threads");
        assert_eq!(all_stats[0], all_stats[2], "stats diverged at 8 threads");
    }
}

/// The v3 kernel (stay-run compression + 32-bit keystream draws) carries the
/// same contract as the spec engine: the batched lane-group path must be
/// bit-identical across 1/2/8 threads *and* bit-identical to replaying the
/// same per-vertex ChaCha8 streams through the scalar [`v3_walk_endpoint`]
/// reference. RoundStats are model quantities, so they must agree too.
#[test]
fn v3_walk_engine_is_bit_identical_across_thread_counts() {
    use rand::Rng;
    use wcc_core::walks::{independent_lazy_walks, v3_walk_endpoint, WalkKernel, WalkMode};
    use wcc_mpc::{derive_stream_seed, MpcConfig, MpcContext};

    for seed in SEEDS {
        let mut graph_rng = ChaCha8Rng::seed_from_u64(seed);
        let g = wcc_graph::generators::random_regular_permutation_graph(200, 8, &mut graph_rng);
        let (t, k) = (24usize, 3usize);

        // Reference: the scalar v3 kernel on the same per-vertex streams.
        let mut master = ChaCha8Rng::seed_from_u64(seed ^ 0x5EED);
        let base = master.gen::<u64>();
        let mut expected = Vec::with_capacity(200 * k);
        for v in 0..g.num_vertices() {
            let mut vrng = ChaCha8Rng::seed_from_u64(derive_stream_seed(base, v as u64));
            for _ in 0..k {
                expected.push(v3_walk_endpoint(&g, v, t, &mut vrng));
            }
        }

        let mut all_stats = Vec::new();
        for threads in [1usize, 2, 8] {
            let cfg = MpcConfig::for_input_size(4 * g.num_edges(), 0.5)
                .permissive()
                .with_threads(threads);
            let mut ctx = MpcContext::new(cfg);
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5EED);
            let endpoints = independent_lazy_walks(
                &g,
                t,
                k,
                WalkMode::Direct,
                WalkKernel::V3,
                2,
                &mut ctx,
                &mut rng,
            )
            .expect("regular graph");
            assert_eq!(
                endpoints, expected,
                "v3 walk endpoints diverged from the scalar reference \
                 (seed {seed}, threads {threads})"
            );
            all_stats.push(ctx.into_stats());
        }
        assert_eq!(all_stats[0], all_stats[1], "stats diverged at 2 threads");
        assert_eq!(all_stats[0], all_stats[2], "stats diverged at 8 threads");
    }
}

/// Streaming ingestion must be bit-identical across thread counts: replaying
/// the same batch schedule through `IncrementalComponents` at 1/2/8 worker
/// threads yields the same labels, the same cumulative `RoundStats` (model
/// quantities — wall times are excluded from equality by design), and the
/// same per-batch path/round/word decisions. The engine interleaves
/// union-find fast paths with full pipeline recomputes, so this transitively
/// pins the whole fast/slow escalation machinery onto the executor
/// determinism contract.
#[test]
fn streaming_ingestion_is_bit_identical_across_thread_counts() {
    use rand::seq::SliceRandom;
    use wcc_core::stream::{IncrementalComponents, StreamParams};

    for (fi, (family, lambda)) in families().into_iter().enumerate() {
        let g = instance(&family, 200 + fi as u64);
        for seed in SEEDS {
            // A shuffled batch schedule over the family instance, plus a
            // trailing newcomer batch so the fast path sees fresh vertices.
            let mut edges: Vec<(u64, u64)> =
                g.edge_iter().map(|(u, v)| (u as u64, v as u64)).collect();
            edges.shuffle(&mut ChaCha8Rng::seed_from_u64(seed ^ 0x57AE)); // "STRE"
            let mut schedule: Vec<Vec<(u64, u64)>> =
                edges.chunks(101).map(<[(u64, u64)]>::to_vec).collect();
            let n = g.num_vertices() as u64;
            schedule.push(vec![(n, 0), (n, 1), (n, 2)]);

            let replay = |threads: usize| {
                let params = StreamParams::test_scale()
                    .with_lambda(lambda)
                    .with_threads(threads);
                let mut engine = IncrementalComponents::new(params, seed);
                let reports = engine.apply_schedule(&schedule).expect("replay succeeds");
                // Project the per-batch reports onto their model quantities
                // (wall time is a timing observable, not part of the
                // contract).
                let decisions: Vec<_> = reports
                    .iter()
                    .map(|r| (r.path, r.rounds, r.communication_words, r.components_after))
                    .collect();
                (engine.labels(), engine.stats(), decisions)
            };

            let (labels_1, stats_1, decisions_1) = replay(1);
            for threads in THREADED {
                let (labels_t, stats_t, decisions_t) = replay(threads);
                assert_eq!(
                    labels_1, labels_t,
                    "labels diverged: family {fi}, seed {seed}, threads {threads}"
                );
                assert_eq!(
                    stats_1, stats_t,
                    "RoundStats diverged: family {fi}, seed {seed}, threads {threads}"
                );
                assert_eq!(
                    decisions_1, decisions_t,
                    "per-batch decisions diverged: family {fi}, seed {seed}, threads {threads}"
                );
            }
        }
    }
}

/// Dynamic (insert+delete) ingestion must be bit-identical across thread
/// counts too: the sketch-repair machinery — lazy sketch build, per-component
/// sketch-Borůvka certification, union-find rebuild after a split — runs on
/// top of the same executor seam, so the labels, cumulative `RoundStats` and
/// the per-batch decision tuple (now including op counts, splits and
/// recertifications) must not depend on the worker count.
#[test]
fn dynamic_ingestion_is_bit_identical_across_thread_counts() {
    use rand::seq::SliceRandom;
    use wcc_core::stream::{IncrementalComponents, StreamParams};
    use wcc_graph::io::EdgeOp;

    for (fi, (family, lambda)) in families().into_iter().enumerate() {
        let g = instance(&family, 300 + fi as u64);
        for seed in SEEDS {
            // Shuffled insert schedule, then a deletion wave over every
            // fourth edge so the sketch path runs (recertifications on the
            // expanders, real splits on the ring of cliques).
            let mut edges: Vec<(u64, u64)> =
                g.edge_iter().map(|(u, v)| (u as u64, v as u64)).collect();
            edges.shuffle(&mut ChaCha8Rng::seed_from_u64(seed ^ 0xD15C0));
            let mut ops: Vec<EdgeOp> = edges.iter().map(|&(u, v)| EdgeOp::insert(u, v)).collect();
            ops.extend(edges.iter().step_by(4).map(|&(u, v)| EdgeOp::delete(u, v)));
            let schedule: Vec<Vec<EdgeOp>> = ops.chunks(101).map(<[EdgeOp]>::to_vec).collect();

            let replay = |threads: usize| {
                let params = StreamParams::test_scale()
                    .with_lambda(lambda)
                    .with_threads(threads);
                let mut engine = IncrementalComponents::new(params, seed);
                let reports = engine
                    .apply_ops_schedule(&schedule)
                    .expect("replay succeeds");
                let decisions: Vec<_> = reports
                    .iter()
                    .map(|r| {
                        (
                            r.path,
                            r.rounds,
                            r.communication_words,
                            r.components_after,
                            r.insertions,
                            r.deletions,
                            r.splits,
                            r.sketch_recertifies,
                        )
                    })
                    .collect();
                (engine.labels(), engine.stats(), decisions)
            };

            let (labels_1, stats_1, decisions_1) = replay(1);
            for threads in THREADED {
                let (labels_t, stats_t, decisions_t) = replay(threads);
                assert_eq!(
                    labels_1, labels_t,
                    "labels diverged: family {fi}, seed {seed}, threads {threads}"
                );
                assert_eq!(
                    stats_1, stats_t,
                    "RoundStats diverged: family {fi}, seed {seed}, threads {threads}"
                );
                assert_eq!(
                    decisions_1, decisions_t,
                    "per-batch decisions diverged: family {fi}, seed {seed}, threads {threads}"
                );
            }
        }
    }
}

/// The fused supersteps (`shuffle_map_owned` / `map_shuffle_owned`) and the
/// identity-shuffle short circuit must be bit-identical across thread
/// counts: the fused scatter writes mapped tuples from concurrent workers
/// and the short circuit skips the scatter entirely, so both are new ways
/// for thread count to leak into output order — this pins them to the
/// 1-thread run, stats included.
#[test]
fn fused_supersteps_are_bit_identical_across_thread_counts() {
    use wcc_mpc::{Cluster, MpcConfig, MpcContext};

    for seed in SEEDS {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let tuples: Vec<(u64, u64)> = (0..3000u64)
            .map(|i| (rand::Rng::gen_range(&mut rng, 0..97u64), i))
            .collect();

        let run = |threads: usize| {
            let cfg = MpcConfig::with_memory(1 << 14, 256).with_threads(threads);
            let mut ctx = MpcContext::new(cfg);
            // A real (non-identity) fused shuffle-then-map...
            let grouped = Cluster::from_tuples(&cfg, tuples.clone())
                .shuffle_map_owned(&mut ctx, |t| t.0, |t| (t.0, t.1.wrapping_mul(3)))
                .unwrap();
            // ...then a fused map-then-shuffle whose routing is the identity
            // permutation (same key, tuples already grouped), taking the
            // short circuit while still applying the narrowing map. The
            // route key pre-computes the mapped key (keys are < 97, so the
            // u32 narrowing is lossless): `route_key(&t) == key(&f(t))`.
            let again = grouped
                .map_shuffle_owned(&mut ctx, |t| (t.0 as u32, t.1 as u32), |t| t.0)
                .unwrap();
            (again.offsets().to_vec(), again.gather(), ctx.into_stats())
        };

        let baseline = run(1);
        for threads in THREADED {
            let out = run(threads);
            assert_eq!(
                baseline.0, out.0,
                "offsets diverged (seed {seed}, threads {threads})"
            );
            assert_eq!(
                baseline.1, out.1,
                "tuples diverged (seed {seed}, threads {threads})"
            );
            assert_eq!(
                baseline.2, out.2,
                "stats diverged (seed {seed}, threads {threads})"
            );
        }
    }
}

/// The persistent pool vs. the retired scoped-spawn backend: the pool
/// dispatch (chunk claiming, dynamic stealing) must reproduce the old
/// one-thread-per-range backend bit for bit on the same split. The scoped
/// path survives as `*_scoped_reference` methods precisely so this
/// differential can keep running; the end-to-end cross-check against the
/// pre-pool build is `golden_dump` (label hashes pinned in golden_labels.txt
/// predate the pool and must not move).
#[test]
fn pooled_dispatch_matches_scoped_reference_backend() {
    use rand::Rng;
    use wcc_mpc::Executor;

    for seed in SEEDS {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let data: Vec<u64> = (0..5000).map(|_| rng.gen()).collect();
        for threads in [2usize, 3, 8] {
            let exec = Executor::threaded(threads);
            // Per-index work with index-derived randomness, as every
            // pipeline fan-out does it.
            let f = |i: usize| {
                let s = wcc_mpc::derive_stream_seed(data[i % data.len()], i as u64);
                s.rotate_left((i % 64) as u32) ^ data[i % data.len()]
            };
            assert_eq!(
                exec.map_indexed(5000, f),
                exec.map_indexed_scoped_reference(5000, f),
                "map_indexed diverged (seed {seed}, threads {threads})"
            );
            // Per-range accumulators, as the stats/shuffle fan-outs do it.
            let g = |r: std::ops::Range<usize>| r.map(f).fold(0u64, u64::wrapping_add);
            assert_eq!(
                exec.map_ranges(5000, g),
                exec.map_ranges_scoped_reference(5000, g),
                "map_ranges diverged (seed {seed}, threads {threads})"
            );
        }
    }
}

/// The flat-arena counting shuffle must be bit-identical across thread
/// counts *and* must reproduce the reference semantics exactly: within each
/// destination machine, tuples appear in global source order (machine-major
/// over the input). A naive single-threaded stable bucket pass is the
/// executable specification.
#[test]
fn arena_counting_shuffle_is_bit_identical_across_thread_counts() {
    use wcc_mpc::{Cluster, MpcConfig, MpcContext};

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^ (x >> 31)
    }

    for seed in SEEDS {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let tuples: Vec<(u64, u64)> = (0..3000u64)
            .map(|i| (rand::Rng::gen_range(&mut rng, 0..97u64), i))
            .collect();

        // Reference: sequential stable bucket pass over the round-robin
        // machine layout.
        let cfg1 = MpcConfig::with_memory(1 << 14, 256).with_threads(1);
        let reference_cluster = Cluster::from_tuples(&cfg1, tuples.clone());
        let m = reference_cluster.num_machines();
        let mut expected: Vec<Vec<(u64, u64)>> = vec![Vec::new(); m];
        for mi in 0..m {
            for t in reference_cluster.machine(mi) {
                expected[(splitmix64(t.0) % m as u64) as usize].push(*t);
            }
        }

        let mut all_stats = Vec::new();
        for threads in [1usize, 2, 8] {
            let cfg = MpcConfig::with_memory(1 << 14, 256).with_threads(threads);
            let mut ctx = MpcContext::new(cfg);
            let cluster = Cluster::from_tuples(&cfg, tuples.clone());
            let shuffled = cluster.shuffle_by_key(&mut ctx, |t| t.0).unwrap();
            for (mi, want) in expected.iter().enumerate() {
                assert_eq!(
                    shuffled.machine(mi),
                    &want[..],
                    "machine {mi} diverged from the reference order (seed {seed}, threads {threads})"
                );
            }
            // The consuming variant must agree tuple-for-tuple and
            // stat-for-stat.
            let mut ctx_owned = MpcContext::new(cfg);
            let owned = Cluster::from_tuples(&cfg, tuples.clone())
                .shuffle_by_key_owned(&mut ctx_owned, |t| t.0)
                .unwrap();
            assert_eq!(owned.offsets(), shuffled.offsets());
            assert_eq!(owned.gather(), shuffled.gather());
            assert_eq!(ctx_owned.stats(), ctx.stats());
            all_stats.push(ctx.into_stats());
        }
        assert_eq!(all_stats[0], all_stats[1], "stats diverged at 2 threads");
        assert_eq!(all_stats[0], all_stats[2], "stats diverged at 8 threads");
    }
}
