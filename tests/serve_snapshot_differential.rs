//! Differential harness for the epoch-snapshot query service: concurrent
//! readers during live ingestion must never observe a torn labelling, and
//! every epoch's answers must equal a from-scratch run on exactly that
//! epoch's edge set.
//!
//! Shape mirrors `streaming_differential.rs`: seeded random batch schedules
//! over the paper's graph families, checked against independent ground
//! truth. The twist is the *time* axis — a ground-truth table is built per
//! epoch (by replaying a twin engine batch by batch), and every answer a
//! snapshot or the TCP server produces is validated against the table row
//! of the **epoch stamped on that very answer**. A torn read — labels mixed
//! across two publishes — would produce an answer matching no row.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wcc_core::serve::{ComponentSnapshot, Request, Response, Server, SnapshotCell, SnapshotReader};
use wcc_core::stream::{IncrementalComponents, StreamParams};
use wcc_core::{well_connected_components, Params};
use wcc_graph::generators::GraphFamily;
use wcc_graph::{Graph, UnionFind};

const SEEDS: [u64; 2] = [5, 13];

fn families() -> Vec<(GraphFamily, f64)> {
    vec![
        (
            GraphFamily::PlantedExpanders {
                num_components: 3,
                degree: 8,
            },
            0.3,
        ),
        (GraphFamily::RingOfCliques { clique_size: 10 }, 0.15),
    ]
}

fn instance(family: &GraphFamily, index: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(9000 + index);
    family.generate(120, &mut rng)
}

fn random_schedule(g: &Graph, seed: u64, batch_edges: usize) -> Vec<Vec<(u64, u64)>> {
    let mut edges: Vec<(u64, u64)> = g.edge_iter().map(|(u, v)| (u as u64, v as u64)).collect();
    edges.shuffle(&mut ChaCha8Rng::seed_from_u64(seed ^ 0x5E7E));
    edges
        .chunks(batch_edges.max(1))
        .map(<[(u64, u64)]>::to_vec)
        .collect()
}

fn params(lambda: f64) -> StreamParams {
    StreamParams::test_scale().with_lambda(lambda)
}

/// Ground truth for one epoch: the component label of every vertex seen so
/// far, and each label's component size.
#[derive(Clone, Default)]
struct EpochTruth {
    label_of: HashMap<u64, usize>,
    size_of: HashMap<usize, u64>,
}

/// Replays a twin engine over the schedule, recording per-epoch truth
/// tables (index 0 = the empty epoch before any batch).
fn epoch_truths(schedule: &[Vec<(u64, u64)>], params: StreamParams, seed: u64) -> Vec<EpochTruth> {
    let mut engine = IncrementalComponents::new(params, seed);
    let mut truths = vec![EpochTruth::default()];
    for batch in schedule {
        engine.apply_batch(batch).unwrap();
        let labels = engine.labels();
        let mut truth = EpochTruth::default();
        for (dense, &raw) in engine.original_ids().iter().enumerate() {
            let label = labels.label(dense);
            truth.label_of.insert(raw, label);
            *truth.size_of.entry(label).or_default() += 1;
        }
        truths.push(truth);
    }
    truths
}

/// Independent sequential ground truth on one epoch's exact edge prefix:
/// union–find over interned raw ids.
fn prefix_partition(prefix: &[(u64, u64)]) -> (HashMap<u64, usize>, UnionFind) {
    let mut index: HashMap<u64, usize> = HashMap::new();
    let mut uf = UnionFind::new(0);
    for &(u, v) in prefix {
        for raw in [u, v] {
            index.entry(raw).or_insert_with(|| uf.push());
        }
        uf.union(index[&u], index[&v]);
    }
    (index, uf)
}

/// Asserts one snapshot answers exactly like the truth table for its epoch.
/// `probe_ids` must contain seen and unseen ids; every pair is checked.
fn check_snapshot(snap: &ComponentSnapshot, truth: &EpochTruth, probe_ids: &[u64], what: &str) {
    for &u in probe_ids {
        let expected_label = truth.label_of.get(&u);
        match (snap.component_of(u), expected_label) {
            (None, None) => {}
            (Some(c), Some(&label)) => {
                // The component id must itself be a member of u's component.
                assert_eq!(
                    truth.label_of.get(&c),
                    Some(&label),
                    "{what}: component id {c} of {u} is not in {u}'s component (epoch {})",
                    snap.epoch()
                );
                assert_eq!(
                    snap.component_size(u),
                    Some(truth.size_of[&label]),
                    "{what}: wrong size for {u} (epoch {})",
                    snap.epoch()
                );
            }
            (got, _) => panic!(
                "{what}: component_of({u}) = {got:?} but truth seen={} (epoch {})",
                expected_label.is_some(),
                snap.epoch()
            ),
        }
        for &v in probe_ids {
            let expected = match (truth.label_of.get(&u), truth.label_of.get(&v)) {
                (Some(lu), Some(lv)) => Some(lu == lv),
                _ => None,
            };
            assert_eq!(
                snap.same_component(u, v),
                expected,
                "{what}: same_component({u},{v}) diverged (epoch {})",
                snap.epoch()
            );
        }
    }
}

/// Every epoch's snapshot equals from-scratch ground truth on that epoch's
/// edge set — sequential BFS-style union–find for every epoch, and the full
/// Theorem-4 pipeline on a sample of epochs.
#[test]
fn every_epoch_snapshot_matches_from_scratch_on_its_prefix() {
    for (fi, (family, lambda)) in families().into_iter().enumerate() {
        let g = instance(&family, fi as u64);
        for seed in SEEDS {
            let schedule = random_schedule(&g, seed, 60);
            let truths = epoch_truths(&schedule, params(lambda), seed);
            let mut engine = IncrementalComponents::new(params(lambda), seed);
            let mut prefix: Vec<(u64, u64)> = Vec::new();
            // Unseen probes beyond the universe must miss at every epoch.
            let probe_ids: Vec<u64> = (0..g.num_vertices() as u64 + 3).collect();

            for (k, batch) in schedule.iter().enumerate() {
                engine.apply_batch(batch).unwrap();
                prefix.extend_from_slice(batch);
                let epoch = k as u64 + 1;
                let snap = engine.snapshot(epoch);
                assert_eq!(snap.epoch(), epoch);
                let truth = &truths[epoch as usize];

                // The published snapshot answers exactly like the truth
                // table of its own epoch.
                check_snapshot(&snap, truth, &probe_ids, "snapshot");
                assert_eq!(snap.num_vertices(), truth.label_of.len());
                assert_eq!(snap.num_edges(), prefix.len() as u64);

                // ...and that truth table equals an independent from-scratch
                // union–find on exactly this epoch's edge prefix.
                let (index, mut uf) = prefix_partition(&prefix);
                assert_eq!(index.len(), truth.label_of.len());
                for (&u, &du) in &index {
                    for (&v, &dv) in &index {
                        assert_eq!(
                            truth.label_of[&u] == truth.label_of[&v],
                            uf.find(du) == uf.find(dv),
                            "epoch {epoch}: truth table disagrees with \
                             from-scratch union-find on ({u},{v})"
                        );
                    }
                }
            }

            // The full pipeline, run from scratch on the final epoch's graph,
            // agrees with the final snapshot (the differential contract of
            // `streaming_differential.rs`, restated through the query API).
            let scratch =
                well_connected_components(&g, lambda, &Params::test_scale(), seed).unwrap();
            let final_truth = truths.last().unwrap();
            for u in 0..g.num_vertices() {
                for v in 0..g.num_vertices() {
                    if let (Some(lu), Some(lv)) = (
                        final_truth.label_of.get(&(u as u64)),
                        final_truth.label_of.get(&(v as u64)),
                    ) {
                        assert_eq!(
                            lu == lv,
                            scratch.components.label(u) == scratch.components.label(v),
                            "final epoch disagrees with from-scratch pipeline on ({u},{v})"
                        );
                    }
                }
            }
        }
    }
}

/// Readers hammering the cell while the engine ingests and publishes:
/// every answer must match the truth table of the epoch it was served at.
#[test]
fn concurrent_readers_never_observe_torn_labels() {
    let (family, lambda) = (
        GraphFamily::PlantedExpanders {
            num_components: 3,
            degree: 8,
        },
        0.3,
    );
    let g = instance(&family, 42);
    let seed = 11;
    let schedule = random_schedule(&g, seed, 45);
    let final_epoch = schedule.len() as u64;
    let truths = Arc::new(epoch_truths(&schedule, params(lambda), seed));
    let universe = g.num_vertices() as u64 + 4;

    let cell = Arc::new(SnapshotCell::new());
    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|r| {
            let cell = Arc::clone(&cell);
            let done = Arc::clone(&done);
            let truths = Arc::clone(&truths);
            std::thread::spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(500 + r);
                let mut reader = SnapshotReader::new(&cell);
                let mut distinct_epochs = 0u64;
                let mut last_epoch = u64::MAX;
                loop {
                    // Order matters: sample the flag *before* the snapshot,
                    // so a `true` here guarantees the final publish is
                    // already visible (publish happens-before the store).
                    let finished = done.load(Ordering::Acquire);
                    let snap = reader.current(&cell);
                    assert!(
                        last_epoch == u64::MAX || snap.epoch() >= last_epoch,
                        "epochs moved backwards"
                    );
                    if snap.epoch() != last_epoch {
                        distinct_epochs += 1;
                        last_epoch = snap.epoch();
                    }
                    let truth = &truths[snap.epoch() as usize];
                    let probes: Vec<u64> = (0..12).map(|_| rng.gen_range(0..universe)).collect();
                    check_snapshot(snap, truth, &probes, "concurrent reader");
                    if finished {
                        assert_eq!(
                            snap.epoch(),
                            final_epoch,
                            "after ingest finished a reader must land on the final epoch"
                        );
                        return distinct_epochs;
                    }
                }
            })
        })
        .collect();

    let mut engine = IncrementalComponents::new(params(lambda), seed);
    for (k, batch) in schedule.iter().enumerate() {
        engine.apply_batch(batch).unwrap();
        cell.publish(engine.snapshot(k as u64 + 1));
        // Give the readers a slice of the single core between publishes.
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    done.store(true, Ordering::Release);
    for reader in readers {
        let distinct = reader.join().unwrap();
        assert!(distinct >= 1, "reader never saw a published epoch");
    }
    assert_eq!(cell.epoch(), final_epoch);
}

/// The same torn-label check end-to-end over TCP: pipelined clients query a
/// live `Server` while the main thread ingests and publishes; every
/// response is validated against the truth table of its stamped epoch.
#[test]
fn tcp_clients_get_epoch_consistent_answers_during_ingest() {
    use std::io::{BufReader, BufWriter, Write};
    use std::net::TcpStream;
    use wcc_core::serve::read_frame;

    let (family, lambda) = (GraphFamily::RingOfCliques { clique_size: 10 }, 0.15);
    let g = instance(&family, 7);
    let seed = 29;
    let schedule = random_schedule(&g, seed, 45);
    let final_epoch = schedule.len() as u64;
    let truths = Arc::new(epoch_truths(&schedule, params(lambda), seed));
    let universe = g.num_vertices() as u64 + 4;

    let server = Server::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let clients: Vec<_> = (0..2)
        .map(|c| {
            let truths = Arc::clone(&truths);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = BufWriter::new(stream);
                let mut rng = ChaCha8Rng::seed_from_u64(900 + c);
                let mut frame = Vec::new();
                let mut out = Vec::new();
                let mut seen_final = false;
                let mut rounds = 0u64;
                while !seen_final {
                    rounds += 1;
                    assert!(rounds < 500_000, "server never reached the final epoch");
                    // A pipelined window of randomized lookups.
                    let window: Vec<Request> = (0..16)
                        .map(|_| {
                            let u = rng.gen_range(0..universe);
                            let v = rng.gen_range(0..universe);
                            match rng.gen_range(0..3u32) {
                                0 => Request::SameComponent { u, v },
                                1 => Request::ComponentOf { v },
                                _ => Request::ComponentSize { c: u },
                            }
                        })
                        .collect();
                    out.clear();
                    for request in &window {
                        request.encode(&mut out);
                    }
                    writer.write_all(&out).unwrap();
                    writer.flush().unwrap();
                    for request in &window {
                        read_frame(&mut reader, &mut frame).unwrap().unwrap();
                        let response = Response::decode(&frame).unwrap();
                        let epoch = match response {
                            Response::Same { epoch, .. }
                            | Response::Component { epoch, .. }
                            | Response::Size { epoch, .. }
                            | Response::NotFound { epoch } => epoch,
                            ref other => panic!("unexpected response {other:?}"),
                        };
                        assert!(epoch <= final_epoch);
                        seen_final |= epoch == final_epoch;
                        let truth = &truths[epoch as usize];
                        match (request, &response) {
                            (Request::SameComponent { u, v }, _) => {
                                let expected = match (truth.label_of.get(u), truth.label_of.get(v))
                                {
                                    (Some(lu), Some(lv)) => Some(lu == lv),
                                    _ => None,
                                };
                                match (expected, &response) {
                                    (Some(want), Response::Same { same, .. }) => {
                                        assert_eq!(want, *same, "same({u},{v}) at epoch {epoch}")
                                    }
                                    (None, Response::NotFound { .. }) => {}
                                    other => panic!("same({u},{v}): mismatch {other:?}"),
                                }
                            }
                            (Request::ComponentOf { v }, Response::Component { component, .. }) => {
                                assert_eq!(
                                    truth.label_of.get(component),
                                    truth.label_of.get(v),
                                    "of({v}) returned non-member {component} at epoch {epoch}"
                                );
                            }
                            (Request::ComponentOf { v }, Response::NotFound { .. }) => {
                                assert!(!truth.label_of.contains_key(v));
                            }
                            (Request::ComponentSize { c }, Response::Size { size, .. }) => {
                                let label = truth.label_of[c];
                                assert_eq!(*size, truth.size_of[&label]);
                            }
                            (Request::ComponentSize { c }, Response::NotFound { .. }) => {
                                assert!(!truth.label_of.contains_key(c));
                            }
                            other => panic!("mismatched request/response {other:?}"),
                        }
                    }
                }
            })
        })
        .collect();

    let mut engine = IncrementalComponents::new(params(lambda), seed);
    for (k, batch) in schedule.iter().enumerate() {
        engine.apply_batch(batch).unwrap();
        server.publish(engine.snapshot(k as u64 + 1));
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    for client in clients {
        client.join().unwrap();
    }

    // Control: stats reflect the final epoch; shutdown round-trips.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    let mut out = Vec::new();
    Request::Stats.encode(&mut out);
    Request::Shutdown.encode(&mut out);
    writer.write_all(&out).unwrap();
    writer.flush().unwrap();
    let mut frame = Vec::new();
    read_frame(&mut reader, &mut frame).unwrap().unwrap();
    match Response::decode(&frame).unwrap() {
        Response::Stats(stats) => {
            assert_eq!(stats.epoch, final_epoch);
            assert_eq!(stats.vertices as usize, g.num_vertices());
            assert!(stats.queries > 0);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    read_frame(&mut reader, &mut frame).unwrap().unwrap();
    assert_eq!(Response::decode(&frame).unwrap(), Response::ShuttingDown);
    assert!(server.shutdown_requested());
    server.shutdown().unwrap();
}
