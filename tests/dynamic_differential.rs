//! Differential harness for fully dynamic streaming: replaying an
//! insert+delete op schedule through `IncrementalComponents` must yield
//! labels component-equivalent to a *from-scratch* pipeline run on the
//! surviving edge multiset — for every tested graph family, seed and thread
//! count.
//!
//! This is the turnstile extension of `streaming_differential.rs`: no matter
//! how the engine interleaves union-find fast paths, sketch-Borůvka repairs
//! of deletion-touched components, and full pipeline recomputes, the end
//! state is indistinguishable from having ingested only the surviving edges
//! at once. The sequential BFS ground truth is cross-checked as a third
//! opinion, and the sketch split path is pinned by the `splits` counter so
//! the suite cannot silently degrade into recompute-everything.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wcc_core::stream::{BatchPath, IncrementalComponents, StreamParams};
use wcc_core::{well_connected_components, Params};
use wcc_graph::generators::GraphFamily;
use wcc_graph::io::EdgeOp;
use wcc_graph::{connected_components, Graph};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const SEEDS: [u64; 3] = [5, 13, 41];

fn families() -> Vec<(GraphFamily, f64)> {
    vec![
        (GraphFamily::Expander { degree: 8 }, 0.3),
        (
            GraphFamily::PlantedExpanders {
                num_components: 3,
                degree: 8,
            },
            0.3,
        ),
        (GraphFamily::RingOfCliques { clique_size: 10 }, 0.15),
    ]
}

fn instance(family: &GraphFamily, index: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(7000 + index);
    family.generate(120, &mut rng)
}

/// A dynamic op schedule over `g`: every edge is inserted (shuffled, fixed
/// batch size), then roughly a third of the edges are deleted, with a
/// delete-reinsert-delete cycle thrown in so multiset bookkeeping is
/// exercised. Returns the schedule and the surviving edge multiset.
fn dynamic_schedule(g: &Graph, seed: u64, batch_ops: usize) -> (Vec<Vec<EdgeOp>>, Vec<(u64, u64)>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD15C0);
    let mut edges: Vec<(u64, u64)> = g.edge_iter().map(|(u, v)| (u as u64, v as u64)).collect();
    edges.shuffle(&mut rng);

    let mut ops: Vec<EdgeOp> = edges.iter().map(|&(u, v)| EdgeOp::insert(u, v)).collect();
    // Delete every third inserted edge...
    let doomed: Vec<(u64, u64)> = edges.iter().copied().step_by(3).collect();
    ops.extend(doomed.iter().map(|&(u, v)| EdgeOp::delete(u, v)));
    // ...and put one of them through a delete-reinsert-delete cycle so the
    // same pair transitions live -> dead -> live -> dead.
    if let Some(&(u, v)) = doomed.first() {
        ops.push(EdgeOp::insert(u, v));
        ops.push(EdgeOp::delete(u, v));
    }

    let survivors: Vec<(u64, u64)> = edges
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 != 0)
        .map(|(_, &e)| e)
        .collect();
    let schedule = ops
        .chunks(batch_ops.max(1))
        .map(<[EdgeOp]>::to_vec)
        .collect();
    (schedule, survivors)
}

/// The surviving multiset as a `Graph` on the same vertex universe.
fn surviving_graph(g: &Graph, survivors: &[(u64, u64)]) -> Graph {
    Graph::from_edges(
        g.num_vertices(),
        survivors.iter().map(|&(u, v)| (u as usize, v as usize)),
    )
    .unwrap()
}

#[test]
fn dynamic_replay_is_component_equivalent_to_from_scratch_on_survivors() {
    for (fi, (family, lambda)) in families().into_iter().enumerate() {
        let g = instance(&family, fi as u64);
        for seed in SEEDS {
            let (schedule, survivors) = dynamic_schedule(&g, seed, 83);
            let surviving = surviving_graph(&g, &survivors);
            // From-scratch references on the surviving graph: the pipeline
            // run the dynamic engine must be indistinguishable from, plus
            // the sequential BFS ground truth as a third opinion.
            let scratch =
                well_connected_components(&surviving, lambda, &Params::test_scale(), seed).unwrap();
            let truth = connected_components(&surviving);
            assert!(
                scratch.components.same_partition(&truth),
                "from-scratch pipeline disagrees with BFS: family {fi}, seed {seed}"
            );

            for threads in THREAD_COUNTS {
                let params = StreamParams::test_scale()
                    .with_lambda(lambda)
                    .with_threads(threads);
                let mut engine = IncrementalComponents::new(params, seed);
                engine.apply_ops_schedule(&schedule).unwrap();
                assert_eq!(
                    engine.num_edges(),
                    survivors.len(),
                    "replay lost or kept the wrong edges: \
                     family {fi}, seed {seed}, threads {threads}"
                );
                let incremental = engine.labels_for_universe(g.num_vertices());
                assert!(
                    incremental.same_partition(&scratch.components),
                    "dynamic labels diverged from the from-scratch pipeline: \
                     family {fi}, seed {seed}, threads {threads}"
                );
            }
        }
    }
}

/// The engine must be insensitive to how the same op stream is batched:
/// one huge batch, medium batches, or tiny ones — same final partition and
/// same surviving edge count.
#[test]
fn op_batch_granularity_does_not_change_the_final_partition() {
    let (family, lambda) = (
        GraphFamily::PlantedExpanders {
            num_components: 2,
            degree: 8,
        },
        0.3,
    );
    let g = instance(&family, 77);
    let (_, survivors) = dynamic_schedule(&g, 99, usize::MAX);
    let truth = connected_components(&surviving_graph(&g, &survivors));
    for batch_ops in [usize::MAX, 97, 11] {
        let (schedule, s) = dynamic_schedule(&g, 99, batch_ops);
        assert_eq!(s, survivors, "schedule generation must be deterministic");
        let mut engine =
            IncrementalComponents::new(StreamParams::test_scale().with_lambda(lambda), 3);
        engine.apply_ops_schedule(&schedule).unwrap();
        assert_eq!(engine.num_edges(), survivors.len());
        assert!(
            engine
                .labels_for_universe(g.num_vertices())
                .same_partition(&truth),
            "batch size {batch_ops} diverged"
        );
    }
}

/// Fast-path-disabled replay (per-batch full recompute) is the executable
/// specification of the dynamic end state: the sketch-repair path must land
/// on the identical partition while actually splitting components instead
/// of recomputing.
#[test]
fn sketch_split_path_matches_per_batch_recompute_reference() {
    // A ring of cliques whose ring edges are then deleted: every ring-edge
    // deletion is structural, and cutting the full ring shatters the graph
    // into its cliques — all on the sketch path.
    let (family, lambda) = (GraphFamily::RingOfCliques { clique_size: 10 }, 0.15);
    let g = instance(&family, 55);
    let (schedule, survivors) = dynamic_schedule(&g, 21, 150);

    let mut sketchy =
        IncrementalComponents::new(StreamParams::test_scale().with_lambda(lambda), 17);
    sketchy.apply_ops_schedule(&schedule).unwrap();

    let mut reference = IncrementalComponents::new(
        StreamParams::test_scale()
            .with_lambda(lambda)
            .with_fast_path(false),
        17,
    );
    reference.apply_ops_schedule(&schedule).unwrap();

    assert_eq!(sketchy.num_vertices(), reference.num_vertices());
    assert_eq!(sketchy.num_edges(), reference.num_edges());
    assert_eq!(sketchy.num_edges(), survivors.len());
    assert!(sketchy.labels().same_partition(&reference.labels()));
    // The reference recomputed every batch; the sketch engine must have
    // handled at least part of the deletion load without the pipeline.
    assert!(sketchy.recomputes() < reference.recomputes());
    assert!(
        sketchy.splits() + sketchy.sketch_recertifies() > 0,
        "a structural-deletion schedule must exercise the sketch path"
    );
}

/// Dedicated split scenario: two expanders joined by one bridge, bridge
/// deleted. The engine must take the sketch-repair path and report exactly
/// one split, and the result must match BFS on the surviving graph.
#[test]
fn bridge_deletion_splits_via_the_sketch_not_the_pipeline() {
    let mut rng = ChaCha8Rng::seed_from_u64(4242);
    let g = wcc_graph::generators::planted_expander_components(&[60, 60], 8, &mut rng);
    let mut ops: Vec<EdgeOp> = g
        .edge_iter()
        .map(|(u, v)| EdgeOp::insert(u as u64, v as u64))
        .collect();
    ops.push(EdgeOp::insert(0, 60));
    for threads in THREAD_COUNTS {
        let params = StreamParams::test_scale()
            .with_lambda(0.3)
            .with_threads(threads);
        let mut engine = IncrementalComponents::new(params, 9);
        engine.apply_ops_batch(&ops).unwrap();
        assert_eq!(engine.num_components(), 1);
        let recomputes_before = engine.recomputes();
        let r = engine.apply_ops_batch(&[EdgeOp::delete(0, 60)]).unwrap();
        assert_eq!(r.path, BatchPath::SketchRepair, "threads {threads}");
        assert_eq!(r.splits, 1, "threads {threads}");
        assert_eq!(engine.recomputes(), recomputes_before);
        assert_eq!(engine.num_components(), 2);
        let truth = connected_components(&engine.current_graph());
        assert!(engine.labels().same_partition(&truth));
    }
}

/// Full-component teardown: insert a clique, delete every edge again. The
/// engine must end with only singletons, entirely on the sketch path after
/// bootstrap.
#[test]
fn full_component_teardown_reaches_singletons_without_recompute() {
    let mut ops = Vec::new();
    for i in 0u64..7 {
        for j in (i + 1)..7 {
            ops.push(EdgeOp::insert(i, j));
        }
    }
    let mut engine = IncrementalComponents::new(StreamParams::test_scale(), 11);
    engine.apply_ops_batch(&ops).unwrap();
    let recomputes_before = engine.recomputes();
    for op in &ops {
        engine
            .apply_ops_batch(&[EdgeOp::delete(op.u, op.v)])
            .unwrap();
    }
    assert_eq!(engine.recomputes(), recomputes_before);
    assert_eq!(engine.num_edges(), 0);
    assert_eq!(engine.num_components(), 7);
    assert_eq!(engine.splits(), 6, "7 singletons minted out of 1 component");
}

/// Version-1 streams must replay byte-identically through the op-aware
/// reader: decoding `data/sample_batches.wccs` with the legacy edge reader
/// and with the op reader must agree record for record, and both replays
/// must produce the same partition and stats.
#[test]
fn v1_chunk_streams_replay_identically_through_the_op_reader() {
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/data/sample_batches.wccs"
    ));
    let edge_batches = wcc_graph::io::read_edge_chunks_file(path).unwrap();
    let (version, _) = wcc_graph::io::read_op_chunk_frames(std::io::BufReader::new(
        std::fs::File::open(path).unwrap(),
    ))
    .unwrap();
    assert_eq!(version, wcc_graph::io::CHUNK_FORMAT_VERSION);
    let op_batches = wcc_graph::io::read_op_chunks_file(path).unwrap();
    let as_ops: Vec<Vec<EdgeOp>> = edge_batches
        .iter()
        .map(|b| b.iter().map(|&(u, v)| EdgeOp::insert(u, v)).collect())
        .collect();
    assert_eq!(op_batches, as_ops, "v1 records must decode identically");

    let mut legacy = IncrementalComponents::new(StreamParams::test_scale(), 7);
    let legacy_reports = legacy.apply_schedule(&edge_batches).unwrap();
    let mut dynamic = IncrementalComponents::new(StreamParams::test_scale(), 7);
    let dynamic_reports = dynamic.apply_ops_schedule(&op_batches).unwrap();

    assert_eq!(legacy_reports.len(), dynamic_reports.len());
    for (l, d) in legacy_reports.iter().zip(&dynamic_reports) {
        assert_eq!(l.path, d.path);
        assert_eq!(l.rounds, d.rounds);
        assert_eq!(l.communication_words, d.communication_words);
        assert_eq!((l.insertions, l.deletions), (d.insertions, d.deletions));
    }
    assert_eq!(legacy.num_edges(), dynamic.num_edges());
    assert!(legacy.labels().same_partition(&dynamic.labels()));
    assert!(!dynamic.sketch_active(), "an insert-only replay stays lazy");
}
