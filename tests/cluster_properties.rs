//! Cluster-property propagation: the accounting multiplier
//! (`words_per_tuple`) and the selected execution backend must survive
//! every operation — a derived cluster that silently reverted to the
//! defaults would mis-charge memory or fall back to sequential execution,
//! both invisible to correctness-only tests.

use wcc_mpc::{Cluster, MpcConfig, MpcContext};

const WORDS: usize = 5;
const THREADS: usize = 3;

fn base_cluster() -> Cluster<(u64, u64)> {
    let cfg = MpcConfig::with_memory(1 << 14, 256).with_threads(THREADS);
    Cluster::from_tuples(&cfg, (0..500u64).map(|i| (i % 29, i)).collect())
        .with_words_per_tuple(WORDS)
}

fn ctx() -> MpcContext {
    MpcContext::new(MpcConfig::with_memory(1 << 14, 256).permissive())
}

fn assert_props<T>(cluster: &Cluster<T>, op: &str) {
    assert_eq!(
        cluster.words_per_tuple(),
        WORDS,
        "{op} dropped words_per_tuple"
    );
    assert_eq!(
        cluster.executor().threads(),
        THREADS,
        "{op} dropped the executor"
    );
}

#[test]
fn words_and_executor_survive_borrowing_local_ops() {
    let c = base_cluster();
    assert_props(&c, "from_tuples + with_words_per_tuple");
    assert_props(&c.map_local(|t| (t.0, t.1 + 1)), "map_local");
    assert_props(
        &c.flat_map_local(|t| vec![*t, (t.0, t.1 * 2)]),
        "flat_map_local",
    );
    assert_props(&c.filter_local(|t| t.1 % 2 == 0), "filter_local");
}

#[test]
fn words_and_executor_survive_consuming_and_in_place_ops() {
    assert_props(
        &base_cluster().map_local_owned(|t| (t.0, t.1 + 1)),
        "map_local_owned",
    );
    assert_props(
        &base_cluster().flat_map_local_owned(|t| vec![t, (t.0, t.1 * 2)]),
        "flat_map_local_owned",
    );
    let mut c = base_cluster();
    c.map_local_in_place(|t| t.1 += 1);
    assert_props(&c, "map_local_in_place");
    c.filter_local_in_place(|t| t.1 % 2 == 0);
    assert_props(&c, "filter_local_in_place");
}

#[test]
fn words_and_executor_survive_shuffles() {
    let mut context = ctx();
    assert_props(
        &base_cluster()
            .shuffle_by_key(&mut context, |t| t.0)
            .unwrap(),
        "shuffle_by_key",
    );
    assert_props(
        &base_cluster()
            .shuffle_by_key_owned(&mut context, |t| t.0)
            .unwrap(),
        "shuffle_by_key_owned",
    );
}

#[test]
fn shuffle_charges_the_overridden_word_width() {
    // 500 tuples at 5 words each: one shuffle must move 2500 words, and the
    // recorded machine loads must use the same multiplier.
    let mut context = ctx();
    let c = base_cluster();
    let shuffled = c.shuffle_by_key(&mut context, |t| t.0).unwrap();
    let stats = context.into_stats();
    assert_eq!(stats.total_communication_words(), (500 * WORDS) as u64);
    assert_eq!(stats.max_machine_load_words(), shuffled.max_load_words());
}

#[test]
fn reduce_by_key_charges_the_overridden_word_width() {
    // Both reduce variants move one partial per (machine, key) pair at
    // words_per_tuple words each; the charge must scale with the override
    // and be identical between the borrowing and consuming variants.
    let mut ctx_borrow = ctx();
    let mut ctx_owned = ctx();
    let borrow = base_cluster()
        .reduce_by_key(
            &mut ctx_borrow,
            |t| t.0,
            |_| 0u64,
            |acc, t| *acc += t.1,
            |acc, b| *acc += b,
        )
        .unwrap();
    let owned = base_cluster()
        .reduce_by_key_owned(
            &mut ctx_owned,
            |t| t.0,
            |_| 0u64,
            |acc, t: (u64, u64)| *acc += t.1,
            |acc, b| *acc += b,
        )
        .unwrap();
    assert_eq!(borrow, owned);
    let stats_borrow = ctx_borrow.into_stats();
    let stats_owned = ctx_owned.into_stats();
    assert_eq!(stats_borrow, stats_owned);
    assert_eq!(
        stats_borrow.total_communication_words() % WORDS as u64,
        0,
        "reduce charge must be a multiple of words_per_tuple"
    );
    assert!(stats_borrow.total_communication_words() > 0);
}

#[test]
fn fused_supersteps_preserve_properties_and_match_their_unfused_specs() {
    // shuffle-then-map: the fused superstep must be output- and
    // stat-identical to the unfused executable spec.
    let mut ctx_fused = ctx();
    let mut ctx_spec = ctx();
    let fused = base_cluster()
        .shuffle_map_owned(&mut ctx_fused, |t| t.0, |t| (t.0, t.1 * 3 + 1))
        .unwrap();
    let spec = base_cluster()
        .shuffle_by_key_owned(&mut ctx_spec, |t| t.0)
        .unwrap()
        .map_local_owned(|t| (t.0, t.1 * 3 + 1));
    assert_props(&fused, "shuffle_map_owned");
    assert_eq!(fused.offsets(), spec.offsets());
    assert_eq!(fused.gather(), spec.gather());
    assert_eq!(ctx_fused.into_stats(), ctx_spec.into_stats());

    // map-then-shuffle with a legal route key: the map narrows the tuple to
    // its compact image and the route key pre-computes the mapped key, so
    // `route_key(&t) == key(&f(t))` holds for every tuple.
    let narrow = |t: (u64, u64)| (t.0 as u32, t.1 as u32);
    let mut ctx_fused = ctx();
    let mut ctx_spec = ctx();
    let fused = base_cluster()
        .map_shuffle_owned(&mut ctx_fused, narrow, |t| t.0)
        .unwrap();
    let spec = base_cluster()
        .map_local_owned(narrow)
        .shuffle_by_key_owned(&mut ctx_spec, |u| u64::from(u.0))
        .unwrap();
    assert_props(&fused, "map_shuffle_owned");
    assert_eq!(fused.offsets(), spec.offsets());
    assert_eq!(fused.gather(), spec.gather());
    assert_eq!(ctx_fused.into_stats(), ctx_spec.into_stats());
}

#[test]
fn identity_shuffles_short_circuit_without_dropping_the_charge() {
    // One real shuffle groups every key onto its owning machine.
    let mut ctx_first = ctx();
    let grouped = base_cluster()
        .shuffle_by_key_owned(&mut ctx_first, |t| t.0)
        .unwrap();
    let first = ctx_first.into_stats();
    let expected_offsets = grouped.offsets().to_vec();
    let expected_tuples = grouped.clone().gather();

    // Re-shuffling by the same key routes every tuple to the machine it
    // already lives on: the plan is the identity permutation, the arena is
    // reused verbatim — and the model cost must be charged exactly as if
    // the tuples had crossed the wire (same words, bytes, rounds, loads).
    let mut ctx_owned = ctx();
    let again = grouped
        .clone()
        .shuffle_by_key_owned(&mut ctx_owned, |t| t.0)
        .unwrap();
    assert_eq!(again.offsets(), &expected_offsets[..]);
    assert_eq!(again.gather(), expected_tuples.clone());
    assert_eq!(
        ctx_owned.into_stats(),
        first,
        "the identity short-circuit must be invisible in the stats"
    );

    // The borrowing variant takes the same short circuit (arena cloned).
    let mut ctx_borrow = ctx();
    let again = grouped.shuffle_by_key(&mut ctx_borrow, |t| t.0).unwrap();
    assert_eq!(again.offsets(), &expected_offsets[..]);
    assert_eq!(again.gather(), expected_tuples.clone());
    assert_eq!(ctx_borrow.into_stats(), first);

    // Through the fused path the relocation is skipped but the map is not.
    let mut ctx_fused = ctx();
    let mapped = grouped
        .shuffle_map_owned(&mut ctx_fused, |t| t.0, |t| (t.0, t.1 + 7))
        .unwrap();
    assert_eq!(mapped.offsets(), &expected_offsets[..]);
    let want: Vec<(u64, u64)> = expected_tuples.iter().map(|t| (t.0, t.1 + 7)).collect();
    assert_eq!(mapped.gather(), want);
}

#[test]
fn natural_width_narrows_the_charge_for_compact_tuples() {
    // A u64-packed compact edge charges 1 word under the natural width
    // where the historical default charges 2 — and the byte column follows.
    let cfg = MpcConfig::with_memory(1 << 14, 256).with_threads(THREADS);
    let packed: Vec<u64> = (0..500u64).collect();
    let mut ctx_wide = ctx();
    let mut ctx_narrow = ctx();
    Cluster::from_tuples(&cfg, packed.clone())
        .shuffle_by_key_owned(&mut ctx_wide, |t| *t)
        .unwrap();
    Cluster::from_tuples(&cfg, packed)
        .with_natural_width()
        .shuffle_by_key_owned(&mut ctx_narrow, |t| *t)
        .unwrap();
    let wide = ctx_wide.into_stats();
    let narrow = ctx_narrow.into_stats();
    assert_eq!(wide.total_communication_words(), 1000);
    assert_eq!(narrow.total_communication_words(), 500);
    // Both shuffles move the same host representation: 8 bytes per tuple.
    assert_eq!(wide.total_shuffled_bytes(), narrow.total_shuffled_bytes());
    assert_eq!(narrow.total_shuffled_bytes(), 500 * 8);
}

mod fused_matches_unfused_spec {
    //! Differential property test: the fused supersteps must be output- and
    //! stat-identical to their unfused executable specifications on
    //! arbitrary keyed workloads — including inputs whose routing
    //! degenerates to the identity permutation (pre-grouped tuples), which
    //! exercises the short-circuit against the scatter path.

    use proptest::prelude::*;
    use wcc_mpc::{Cluster, MpcConfig, MpcContext};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn fused_supersteps_are_identical_to_their_unfused_specs(
            tuples in proptest::collection::vec((0u64..5_000, 0u64..1_000_000), 0..600),
            machines in 1usize..48,
            threads in 1usize..5,
            already_grouped in proptest::bool::ANY,
        ) {
            let cfg = MpcConfig::with_memory(1 << 16, 2048)
                .permissive()
                .with_machines(machines)
                .with_threads(threads);
            // Optionally pre-group the tuples so the fused paths also run
            // through the identity-plan short circuit.
            let source = |ctx: &mut MpcContext| -> Cluster<(u64, u64)> {
                let c = Cluster::from_tuples(&cfg, tuples.clone());
                if already_grouped {
                    c.shuffle_by_key_owned(ctx, |t| t.0).unwrap()
                } else {
                    c
                }
            };

            // shuffle-then-map.
            let mut ctx_fused = MpcContext::new(cfg);
            let mut ctx_spec = MpcContext::new(cfg);
            let fused = source(&mut ctx_fused)
                .shuffle_map_owned(&mut ctx_fused, |t| t.0, |t| (t.1, t.0 ^ 1))
                .unwrap();
            let spec = source(&mut ctx_spec)
                .shuffle_by_key_owned(&mut ctx_spec, |t| t.0)
                .unwrap()
                .map_local_owned(|t| (t.1, t.0 ^ 1));
            prop_assert_eq!(fused.offsets(), spec.offsets());
            prop_assert_eq!(fused.gather(), spec.gather());
            prop_assert_eq!(ctx_fused.into_stats(), ctx_spec.into_stats());

            // map-then-shuffle: the narrowing map keeps the low 32 bits and
            // the route key pre-computes the mapped key, so the legality
            // rule `route_key(&t) == key(&f(t))` holds (keys are < 2^32).
            let narrow = |t: (u64, u64)| (t.0 as u32, t.1 as u32);
            let mut ctx_fused = MpcContext::new(cfg);
            let mut ctx_spec = MpcContext::new(cfg);
            let fused = source(&mut ctx_fused)
                .map_shuffle_owned(&mut ctx_fused, narrow, |t| t.0)
                .unwrap();
            let spec = source(&mut ctx_spec)
                .map_local_owned(narrow)
                .shuffle_by_key_owned(&mut ctx_spec, |u| u64::from(u.0))
                .unwrap();
            prop_assert_eq!(fused.offsets(), spec.offsets());
            prop_assert_eq!(fused.gather(), spec.gather());
            prop_assert_eq!(ctx_fused.into_stats(), ctx_spec.into_stats());
        }
    }
}

mod reduce_matches_hashmap_spec {
    //! Differential property test: the sort-based `reduce_by_key` must be
    //! output-identical — pairs, order and statistics — to the retained
    //! hash-based reference on arbitrary keyed workloads.

    use proptest::prelude::*;
    use wcc_mpc::{Cluster, MpcConfig, MpcContext};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn radix_reduce_is_output_identical_to_hashmap_reference(
            tuples in proptest::collection::vec((0u64..10_000, 0u64..1_000_000), 0..800),
            key_stride in 1u64..(1 << 40),
            machines in 1usize..48,
            threads in 1usize..5,
        ) {
            let cfg = MpcConfig::with_memory(1 << 16, 2048)
                .permissive()
                .with_machines(machines)
                .with_threads(threads);
            // Stretch keys across high bytes so later radix passes engage.
            let key = move |t: &(u64, u64)| t.0.wrapping_mul(key_stride);
            let mut ctx_radix = MpcContext::new(cfg);
            let mut ctx_hash = MpcContext::new(cfg);
            // A non-commutative fold/combine pair makes any ordering drift
            // visible in the values, not just the pair order.
            let radix = Cluster::from_tuples(&cfg, tuples.clone())
                .reduce_by_key(
                    &mut ctx_radix,
                    key,
                    |k| k,
                    |acc, t| *acc = acc.wrapping_mul(1_000_003).wrapping_add(t.1),
                    |acc, b| *acc = acc.wrapping_mul(31).wrapping_add(b),
                )
                .unwrap();
            let hash = Cluster::from_tuples(&cfg, tuples)
                .reduce_by_key_hashmap(
                    &mut ctx_hash,
                    key,
                    |k| k,
                    |acc, t| *acc = acc.wrapping_mul(1_000_003).wrapping_add(t.1),
                    |acc, b| *acc = acc.wrapping_mul(31).wrapping_add(b),
                )
                .unwrap();
            prop_assert_eq!(radix, hash);
            prop_assert_eq!(ctx_radix.into_stats(), ctx_hash.into_stats());
        }
    }
}

#[test]
fn gather_after_chain_preserves_tuples() {
    // End-to-end sanity: a chain across all op families loses no tuples and
    // keeps the properties throughout.
    let mut context = ctx();
    let mut c = base_cluster()
        .map_local_owned(|t| (t.0, t.1 * 2))
        .shuffle_by_key_owned(&mut context, |t| t.0)
        .unwrap();
    c.map_local_in_place(|t| t.1 += 1);
    assert_props(&c, "chained ops");
    let mut values: Vec<u64> = c.gather().into_iter().map(|t| t.1).collect();
    values.sort_unstable();
    let mut expected: Vec<u64> = (0..500u64).map(|i| i * 2 + 1).collect();
    expected.sort_unstable();
    assert_eq!(values, expected);
}
