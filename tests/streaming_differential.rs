//! Differential harness for streaming ingestion: replaying a random batch
//! schedule through `IncrementalComponents` must yield labels
//! component-equivalent to a *from-scratch* pipeline run on the final graph
//! — for every tested graph family, seed and thread count.
//!
//! This is the contract that makes the fast/slow path split trustworthy: no
//! matter how the engine interleaves union-find fast paths with pipeline
//! recomputes (and no matter where the certificate chose to escalate), the
//! end state is indistinguishable from having ingested everything at once.
//! The sequential BFS ground truth is cross-checked as a third opinion.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wcc_core::stream::{IncrementalComponents, StreamParams};
use wcc_core::{well_connected_components, Params};
use wcc_graph::generators::GraphFamily;
use wcc_graph::{connected_components, ComponentLabels, Graph};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const SEEDS: [u64; 3] = [5, 13, 41];

fn families() -> Vec<(GraphFamily, f64)> {
    vec![
        (GraphFamily::Expander { degree: 8 }, 0.3),
        (
            GraphFamily::PlantedExpanders {
                num_components: 3,
                degree: 8,
            },
            0.3,
        ),
        (GraphFamily::RingOfCliques { clique_size: 10 }, 0.15),
    ]
}

fn instance(family: &GraphFamily, index: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(7000 + index);
    family.generate(120, &mut rng)
}

/// A random batch schedule covering exactly the edges of `g`: the edge list
/// is shuffled with a seeded RNG and split into fixed-size batches.
fn random_schedule(g: &Graph, seed: u64, batch_edges: usize) -> Vec<Vec<(u64, u64)>> {
    let mut edges: Vec<(u64, u64)> = g.edge_iter().map(|(u, v)| (u as u64, v as u64)).collect();
    edges.shuffle(&mut ChaCha8Rng::seed_from_u64(seed ^ 0xBA7C4));
    edges
        .chunks(batch_edges.max(1))
        .map(<[(u64, u64)]>::to_vec)
        .collect()
}

/// Maps the engine's dense-id labelling back onto `g`'s vertex numbering
/// (vertices the schedule never touched — isolated in the final graph — get
/// fresh labels, exactly as a from-scratch run would give them).
fn labels_on(g: &Graph, engine: &IncrementalComponents) -> ComponentLabels {
    engine.labels_for_universe(g.num_vertices())
}

#[test]
fn incremental_replay_is_component_equivalent_to_from_scratch() {
    for (fi, (family, lambda)) in families().into_iter().enumerate() {
        let g = instance(&family, fi as u64);
        for seed in SEEDS {
            let schedule = random_schedule(&g, seed, 83);
            // From-scratch references on the final graph: the pipeline run
            // the incremental engine must be indistinguishable from, plus
            // the sequential BFS ground truth as a third opinion.
            let scratch =
                well_connected_components(&g, lambda, &Params::test_scale(), seed).unwrap();
            let truth = connected_components(&g);
            assert!(
                scratch.components.same_partition(&truth),
                "from-scratch pipeline disagrees with BFS: family {fi}, seed {seed}"
            );

            for threads in THREAD_COUNTS {
                let params = StreamParams::test_scale()
                    .with_lambda(lambda)
                    .with_threads(threads);
                let mut engine = IncrementalComponents::new(params, seed);
                let reports = engine.apply_schedule(&schedule).unwrap();
                assert_eq!(
                    engine.num_edges(),
                    g.num_edges(),
                    "replay lost edges: family {fi}, seed {seed}, threads {threads}"
                );
                assert!(
                    reports.iter().any(|r| !r.path.is_fast()),
                    "a merging schedule must escalate at least once: \
                     family {fi}, seed {seed}, threads {threads}"
                );
                let incremental = labels_on(&g, &engine);
                assert!(
                    incremental.same_partition(&scratch.components),
                    "incremental labels diverged from the from-scratch pipeline: \
                     family {fi}, seed {seed}, threads {threads}"
                );
            }
        }
    }
}

/// The engine must be insensitive to how the same edge stream is batched:
/// one huge batch, tiny batches, or everything one-by-one-ish — same final
/// partition.
#[test]
fn batch_granularity_does_not_change_the_final_partition() {
    let (family, lambda) = (
        GraphFamily::PlantedExpanders {
            num_components: 2,
            degree: 8,
        },
        0.3,
    );
    let g = instance(&family, 77);
    let truth = connected_components(&g);
    for batch_edges in [usize::MAX, 97, 11] {
        let schedule = random_schedule(&g, 99, batch_edges.min(g.num_edges()));
        let mut engine =
            IncrementalComponents::new(StreamParams::test_scale().with_lambda(lambda), 3);
        engine.apply_schedule(&schedule).unwrap();
        assert!(
            labels_on(&g, &engine).same_partition(&truth),
            "batch size {batch_edges} diverged"
        );
    }
}

/// Fast-path-disabled replay (per-batch full recompute) is the executable
/// specification of the engine's end state: the fast path must land on the
/// identical partition.
#[test]
fn fast_path_matches_per_batch_recompute_reference() {
    let (family, lambda) = (GraphFamily::Expander { degree: 8 }, 0.3);
    let g = instance(&family, 55);
    // Append well-attached newcomers so the fast path has real work that the
    // reference recomputes from scratch.
    let mut schedule = random_schedule(&g, 21, 200);
    let n = g.num_vertices() as u64;
    schedule.push(vec![
        (n, 0),
        (n, 1),
        (n, 2),
        (n + 1, 3),
        (n + 1, 4),
        (n + 1, 5),
    ]);

    let mut fast = IncrementalComponents::new(StreamParams::test_scale().with_lambda(lambda), 17);
    fast.apply_schedule(&schedule).unwrap();

    let mut reference = IncrementalComponents::new(
        StreamParams::test_scale()
            .with_lambda(lambda)
            .with_fast_path(false),
        17,
    );
    reference.apply_schedule(&schedule).unwrap();

    assert_eq!(fast.num_vertices(), reference.num_vertices());
    assert_eq!(fast.num_edges(), reference.num_edges());
    assert!(fast.labels().same_partition(&reference.labels()));
    // The reference recomputed every batch; the fast engine must not have.
    assert!(fast.recomputes() < reference.recomputes());
}
