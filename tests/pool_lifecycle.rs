//! Lifecycle of the persistent worker pool behind the threaded executor:
//! workers spawn once, survive panicking closures, and are joined when the
//! last owning executor is dropped.
//!
//! Every test here builds its executor with [`Executor::with_private_pool`]
//! so it observes one pool exclusively — the production constructors share
//! pools process-wide by thread count, which would let concurrently running
//! tests pollute each other's counters.

use wcc_mpc::Executor;

/// One fan-out after another must reuse the same parked workers: after 10^4
/// dispatches, the pool has still only ever spawned `threads` OS threads.
/// (This is the whole point of the pool — the scoped backend it replaced
/// spawned `threads` fresh threads per fan-out, i.e. 4*10^4 here.)
#[test]
fn ten_thousand_fanouts_spawn_threads_once() {
    let threads = 4;
    let exec = Executor::with_private_pool(threads);
    let mut acc = 0u64;
    for round in 0..10_000u64 {
        let parts = exec.map_ranges(256, |r| r.map(|i| i as u64 + round).sum::<u64>());
        acc = acc.wrapping_add(parts.into_iter().sum::<u64>());
    }
    let telemetry = exec.pool_telemetry().expect("pool was used");
    assert_eq!(
        telemetry.spawned_threads, threads as u64,
        "fan-outs must reuse the persistent workers, not spawn new ones"
    );
    assert_eq!(telemetry.live_workers, threads as u64);
    assert_eq!(telemetry.dispatches, 10_000);
    // 256 coarse units split into 4 chunks/worker * 4 workers per dispatch.
    assert_eq!(telemetry.chunks_dispatched, 10_000 * 16);
    assert_ne!(acc, 0);
}

/// A panicking closure must propagate to the dispatching thread — no
/// deadlock, no abort — and the pool must remain fully usable afterwards.
#[test]
fn worker_panic_propagates_and_pool_survives() {
    let exec = Executor::with_private_pool(3);
    // Warm the pool up first so the panic exercises parked workers, not the
    // spawn path.
    let warm = exec.map_indexed(1000, |i| i * 2);
    assert_eq!(warm[999], 1998);

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        exec.map_indexed(1000, |i| {
            assert!(i != 700, "injected failure at index 700");
            i
        })
    }));
    let err = result.expect_err("the panic must reach the dispatcher");
    let msg = err
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| err.downcast_ref::<String>().map(String::as_str))
        .unwrap_or_default();
    assert!(
        msg.contains("injected failure"),
        "the original panic payload must survive: got {msg:?}"
    );

    // The pool is not poisoned: same executor, fresh dispatches, correct
    // results, and no replacement threads were spawned.
    for _ in 0..50 {
        let again = exec.map_indexed(1000, |i| i + 1);
        assert_eq!(again[0], 1);
        assert_eq!(again[999], 1000);
    }
    let telemetry = exec.pool_telemetry().expect("pool was used");
    assert_eq!(telemetry.spawned_threads, 3);
    assert_eq!(telemetry.live_workers, 3);
}

/// Dropping the last executor that owns a pool joins all its workers: the
/// probe (which deliberately does not keep the pool alive) sees
/// `live_workers` fall to zero, synchronously, because the pool's drop joins
/// the OS threads before returning.
#[test]
fn dropping_the_executor_joins_all_workers() {
    let exec = Executor::with_private_pool(5);
    let probe = exec.pool_telemetry_probe();
    let out = exec.map_ranges(64, |r| r.len());
    assert_eq!(out.iter().sum::<usize>(), 64);
    assert_eq!(probe.snapshot().live_workers, 5);

    // Clones share the pool; dropping one of two must NOT tear it down.
    let clone = exec.clone();
    drop(exec);
    assert_eq!(probe.snapshot().live_workers, 5);
    assert_eq!(clone.map_indexed(128, |i| i).len(), 128);

    drop(clone);
    assert_eq!(
        probe.snapshot().live_workers,
        0,
        "drop must join every worker, not leak parked threads"
    );
    let final_telemetry = probe.snapshot();
    assert_eq!(final_telemetry.spawned_threads, 5);
}

/// A sequential executor never creates a pool at all, no matter how much
/// work flows through it.
#[test]
fn sequential_executor_never_spawns() {
    let exec = Executor::sequential();
    let out = exec.map_indexed(10_000, |i| i);
    assert_eq!(out.len(), 10_000);
    assert!(exec.pool_telemetry().is_none(), "no pool for threads=1");
}
