//! Finding communities in a social-network-like graph whose spectral gaps are
//! *unknown* — the setting of Corollary 7.1.
//!
//! Social networks are sparse and their communities tend to expand well (the
//! paper cites Gkantsidis et al. and Malliaros–Megalooikonomou for empirical
//! evidence), but nobody hands you a spectral-gap promise. The adaptive
//! algorithm guesses λ' = 1/2, finalises every community that already comes
//! back whole, and retries the rest with smaller and smaller guesses.
//!
//! Run with:
//! ```text
//! cargo run --release --example social_communities
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wcc_core::prelude::*;
use wcc_graph::prelude::*;

fn main() -> Result<(), CoreError> {
    let mut rng = ChaCha8Rng::seed_from_u64(2024);

    // A synthetic "social network": a few thousand users split into
    // communities of very different character —
    //   * tight friend groups (random regular expanders: large gap),
    //   * an interest forum with hub users (preferential attachment: moderate gap),
    //   * a long chain of acquaintances (a path: terrible gap).
    let friend_groups: Vec<Graph> = [1200usize, 800, 500]
        .iter()
        .map(|&n| generators::random_regular_permutation_graph(n, 8, &mut rng))
        .collect();
    let forum = generators::preferential_attachment(900, 3, &mut rng);
    let chain = generators::path(400);
    let mut parts = friend_groups;
    parts.push(forum);
    parts.push(chain);
    let (network, _) = generators::disjoint_union_of(&parts);
    println!(
        "social network: {} users, {} ties, {} true communities",
        network.num_vertices(),
        network.num_edges(),
        connected_components(&network).num_components()
    );

    // No gap promise: run the adaptive algorithm of Corollary 7.1.
    let result = adaptive_components(&network, &Params::laptop_scale(), 99)?;
    println!(
        "adaptive algorithm found {} communities in {} simulated MPC rounds",
        result.components.num_components(),
        result.stats.total_rounds()
    );
    for (i, lambda) in result.lambda_levels.iter().enumerate() {
        println!(
            "  level {}: gap guess λ' = {:.4}, {} users still active, {} rounds",
            i + 1,
            lambda,
            result.active_vertices_per_level[i],
            result.rounds_per_level[i]
        );
    }

    let sizes = {
        let mut s = result.components.component_sizes();
        s.sort_unstable_by(|a, b| b.cmp(a));
        s
    };
    println!(
        "community sizes (largest first): {:?}",
        &sizes[..sizes.len().min(8)]
    );

    assert!(result
        .components
        .same_partition(&connected_components(&network)));
    println!("matches the sequential ground truth ✓");
    Ok(())
}
