//! Theorem 2 in action: connectivity of an *arbitrary* sparse graph — no
//! spectral-gap assumption at all — on machines whose memory is mildly
//! sublinear in `n`, in `O(log log n + log(n/s))` rounds.
//!
//! The example sweeps the per-machine memory `s` and prints how the round
//! count, the densification degree `d ≈ n·log n/s` and the contracted graph
//! size react — the trade-off Theorem 2 describes.
//!
//! Run with:
//! ```text
//! cargo run --release --example sublinear_memory
//! ```

use wcc_core::sublinear::{sublinear_components, SublinearParams};
use wcc_graph::prelude::*;

fn main() -> Result<(), wcc_core::CoreError> {
    // A 64x64 grid plus a complete binary tree: very sparse, terrible
    // expansion, no usable spectral gap — exactly the inputs Theorem 1 does
    // not cover but Theorem 2 does.
    let grid = generators::grid(64, 64);
    let tree = generators::binary_tree(2047);
    let (g, _) = generators::disjoint_union_of(&[grid, tree]);
    let truth = connected_components(&g);
    println!(
        "input: {} vertices, {} edges, {} components (a grid and a tree)",
        g.num_vertices(),
        g.num_edges(),
        truth.num_components()
    );
    println!();
    println!(
        "{:>10} {:>10} {:>12} {:>14} {:>8}",
        "memory s", "degree d", "walk length", "super-vertices", "rounds"
    );

    for s in [64usize, 128, 256, 512, 1024, 2048, 4096] {
        let result = sublinear_components(&g, s, &SublinearParams::laptop_scale(), 5)?;
        assert!(result.components.same_partition(&truth));
        println!(
            "{:>10} {:>10} {:>12} {:>14} {:>8}",
            s,
            result.report.target_degree,
            result.report.walk_length,
            result.report.contracted_vertices,
            result.stats.total_rounds()
        );
    }
    println!();
    println!("every row matches the sequential ground truth ✓");
    println!("(rounds shrink as memory grows — the log(n/s) term of Theorem 2)");
    Ok(())
}
