//! Quickstart: find the well-connected components of a sparse graph in
//! `O(log log n + log 1/λ)` simulated MPC rounds.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wcc_core::prelude::*;
use wcc_graph::prelude::*;

fn main() -> Result<(), CoreError> {
    // Build a sparse graph whose connected components are 8-regular random
    // expanders — the paper's flagship "well-connected" instance. Constant
    // spectral gap, O(n) edges. `WCC_EXAMPLE_SCALE` divides the instance
    // sizes so the examples smoke test can run this quickly unoptimized.
    let scale: usize = std::env::var("WCC_EXAMPLE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(1);
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let g = generators::planted_expander_components(
        &[
            (4000 / scale).max(16),
            (2500 / scale).max(16),
            (1500 / scale).max(16),
        ],
        8,
        &mut rng,
    );
    println!(
        "input: {} vertices, {} edges, {} true components",
        g.num_vertices(),
        g.num_edges(),
        connected_components(&g).num_components()
    );

    // The components are expanders, so a constant lower bound on the spectral
    // gap is a valid promise. (Use `adaptive_components` when you do not know
    // the gap — see the social_communities example.)
    let lambda = 0.3;
    let result = well_connected_components(&g, lambda, &Params::laptop_scale(), 7)?;

    println!(
        "found {} components in {} simulated MPC rounds",
        result.components.num_components(),
        result.stats.total_rounds()
    );
    println!(
        "  walk length T = {}, {} fresh random batches, BFS endgame depth = {}",
        result.report.walk_length, result.report.num_batches, result.report.bfs_levels
    );
    for phase in &result.report.grow_phases {
        println!(
            "  growth phase {}: {} parts -> {} parts (median part size {}, max {})",
            phase.phase,
            phase.parts_before,
            phase.parts_after,
            phase.median_part_size,
            phase.max_part_size
        );
    }
    println!("resource usage: {}", result.stats.summary());

    // Sanity check against the sequential ground truth.
    let truth = connected_components(&g);
    assert!(result.components.same_partition(&truth));
    println!("matches the sequential union-find ground truth ✓");
    Ok(())
}
