//! Head-to-head round comparison: the paper's algorithm versus the classical
//! `Θ(log n)`-round MPC baselines, on increasingly large expander instances.
//!
//! This is the headline claim of the paper in one screenful: as `n` grows,
//! the baselines' round counts climb with `log n` while the pipeline's stay
//! essentially flat (`log log n`).
//!
//! Run with:
//! ```text
//! cargo run --release --example round_comparison
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wcc_baselines::run_baseline;
use wcc_core::prelude::*;
use wcc_graph::prelude::*;
use wcc_mpc::{MpcConfig, MpcContext};

fn main() -> Result<(), CoreError> {
    let params = Params::laptop_scale();
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>14} {:>18}",
        "n", "edges", "wcc rounds", "hash-to-min", "random-mate", "shiloach-vishkin"
    );
    for exp in [10u32, 11, 12, 13, 14] {
        let n = 1usize << exp;
        let mut rng = ChaCha8Rng::seed_from_u64(exp as u64);
        // Two planted expander communities of n/2 vertices each.
        let g = generators::planted_expander_components(&[n / 2, n / 2], 8, &mut rng);
        let truth = connected_components(&g);

        let ours = well_connected_components(&g, 0.3, &params, exp as u64)?;
        assert!(ours.components.same_partition(&truth));

        let mut baseline_rounds = Vec::new();
        for name in ["hash-to-min", "random-mate", "shiloach-vishkin"] {
            let mut ctx = MpcContext::new(
                MpcConfig::for_input_size(2 * g.num_edges() + g.num_vertices(), params.delta)
                    .permissive(),
            );
            let res = run_baseline(name, &g, &mut ctx, 3);
            assert!(res.labels.same_partition(&truth));
            baseline_rounds.push(res.rounds);
        }
        println!(
            "{:>8} {:>12} {:>12} {:>14} {:>14} {:>18}",
            n,
            g.num_edges(),
            ours.stats.total_rounds(),
            baseline_rounds[0],
            baseline_rounds[1],
            baseline_rounds[2]
        );
    }
    println!();
    println!("the wcc column stays flat while the baselines track log n — Theorem 1's speedup");
    Ok(())
}
