//! Streaming ingestion: maintain the component decomposition under batched
//! edge arrivals instead of recomputing from scratch per batch.
//!
//! The workload: an initial pair of expander components is bootstrapped with
//! one full pipeline run, then a stream of merge-free "traffic" batches
//! (intra-component densification plus well-attached newcomers) rides the
//! union-find fast path, and finally a bridge batch merges two standing
//! components — which escalates to a full pipeline recompute. The batch
//! schedule round-trips through the binary chunk format (`WCCS`) and the
//! executor-driven parallel decode, exactly like `wcc stream` does.
//!
//! Run with:
//! ```text
//! cargo run --release --example stream_ingest
//! ```

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wcc_core::prelude::*;
use wcc_graph::prelude::*;
use wcc_mpc::Executor;

fn main() -> Result<(), CoreError> {
    // `WCC_EXAMPLE_SCALE` divides the instance sizes so the examples smoke
    // test can run this quickly unoptimized.
    let scale: usize = std::env::var("WCC_EXAMPLE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(1);
    let n1 = (2000 / scale).max(24);
    let n2 = (1200 / scale).max(24);
    let mut rng = ChaCha8Rng::seed_from_u64(42);

    // Batch 0 bootstraps two expander components in one shot.
    let a = generators::random_regular_permutation_graph(n1, 8, &mut rng);
    let b = generators::random_regular_permutation_graph(n2, 8, &mut rng);
    let mut batches: Vec<Vec<(u64, u64)>> = Vec::new();
    let mut bootstrap: Vec<(u64, u64)> = a.edge_iter().map(|(u, v)| (u as u64, v as u64)).collect();
    bootstrap.extend(
        b.edge_iter()
            .map(|(u, v)| ((u + n1) as u64, (v + n1) as u64)),
    );
    batches.push(bootstrap);

    // Merge-free traffic: random intra-component edges within component A.
    for _ in 0..6 {
        let batch: Vec<(u64, u64)> = (0..200 / scale.clamp(1, 8))
            .map(|_| (rng.gen_range(0..n1 as u64), rng.gen_range(0..n1 as u64)))
            .collect();
        batches.push(batch);
    }

    // A bridge between the two standing components: structural change.
    batches.push(vec![(0, n1 as u64)]);

    // Round-trip the schedule through the binary chunk format, decoding in
    // parallel through the executor (this is `wcc stream`'s ingestion path).
    let path = std::env::temp_dir().join(format!("wcc_stream_ingest_{}.wccs", std::process::id()));
    write_edge_chunks_file(&batches, &path).expect("write chunk file");
    let exec = Executor::resolve(0);
    let decoded = wcc_mpc::stream::read_edge_chunks_file_parallel(&path, &exec)
        .expect("read chunk file back");
    std::fs::remove_file(&path).ok();
    assert_eq!(decoded, batches, "chunk round-trip must be lossless");
    println!(
        "schedule: {} batches, {} edges (round-tripped through the WCCS chunk format \
         with {} decode threads)",
        decoded.len(),
        decoded.iter().map(Vec::len).sum::<usize>(),
        exec.threads()
    );

    // Replay the schedule through the incremental engine.
    let mut engine = IncrementalComponents::new(StreamParams::laptop_scale().with_lambda(0.3), 7);
    for batch in &decoded {
        let report = engine.apply_batch(batch)?;
        println!(
            "batch {}: {:>6} edges -> {:<32} ({} components, {} rounds, {:.1} ms)",
            report.batch_index,
            report.edges_in_batch,
            report.path.label(),
            report.components_after,
            report.rounds,
            report.wall_time_ms
        );
    }
    println!(
        "replayed {} batches with {} slow-path recomputes; {}",
        engine.batches_applied(),
        engine.recomputes(),
        engine.stats().summary()
    );

    // Sanity check against the sequential ground truth on the final graph.
    let truth = connected_components(&engine.current_graph());
    assert!(engine.labels().same_partition(&truth));
    println!("matches the sequential union-find ground truth ✓");
    Ok(())
}
