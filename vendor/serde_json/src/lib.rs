//! Offline shim of the `serde_json` API surface this workspace uses:
//! [`to_string`] / [`to_string_pretty`] over the vendored `serde` [`Value`]
//! tree. Output is real JSON (RFC 8259): string escapes, `null` for
//! non-finite floats, two-space pretty indentation like upstream.

use serde::Serialize;
pub use serde::Value;

/// Serialization error. The shim's value tree can always be rendered, so this
/// is never constructed today; it exists so call sites keep the upstream
/// `Result` shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Match serde_json: integral floats keep a trailing `.0`.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, depth, ('[', ']'), write_value),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            depth,
            ('{', '}'),
            |o, (k, val), ind, d| {
                write_json_string(o, k);
                o.push(':');
                if ind.is_some() {
                    o.push(' ');
                }
                write_value(o, val, ind, d);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    indent: Option<&str>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<&str>, usize),
) {
    out.push(open);
    let mut any = false;
    for (i, item) in items.enumerate() {
        any = true;
        if i > 0 {
            out.push(',');
        }
        if let Some(ind) = indent {
            out.push('\n');
            out.push_str(&ind.repeat(depth + 1));
        }
        write_item(out, item, indent, depth + 1);
    }
    if any {
        if let Some(ind) = indent {
            out.push('\n');
            out.push_str(&ind.repeat(depth));
        }
    }
    out.push(close);
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_pretty_json() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("E1".into())),
            (
                "rows".into(),
                Value::Array(vec![Value::U64(1), Value::F64(0.5)]),
            ),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(
            pretty,
            "{\n  \"name\": \"E1\",\n  \"rows\": [\n    1,\n    0.5\n  ]\n}"
        );
    }

    #[test]
    fn escapes_strings() {
        let v = Value::String("a\"b\\c\nd".into());
        assert_eq!(to_string(&v).unwrap(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn integral_floats_keep_point_zero() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&3.25f64).unwrap(), "3.25");
    }
}
