//! Offline shim of `rand_chacha`: [`ChaCha8Rng`] and [`ChaCha20Rng`] backed
//! by a genuine ChaCha keystream (Bernstein's cipher run as a PRNG), exposed
//! through the vendored `rand` traits. Deterministic per seed; not
//! bit-compatible with upstream `rand_chacha` (nothing here requires that).

use rand::{RngCore, SeedableRng};

/// ChaCha quarter round.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha keystream generator with a configurable number of double rounds.
#[derive(Debug, Clone)]
struct ChaChaCore<const DOUBLE_ROUNDS: usize> {
    /// The 16-word ChaCha input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next word index within `block`; 16 means "exhausted".
    index: usize,
}

impl<const DOUBLE_ROUNDS: usize> ChaChaCore<DOUBLE_ROUNDS> {
    fn new(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // words 12..13: 64-bit block counter; 14..15: nonce (zero).
        Self {
            state,
            block: [0u32; 16],
            index: 16,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(*s);
        }
        // Increment the 64-bit counter in words 12/13.
        let counter = ((self.state[13] as u64) << 32 | self.state[12] as u64).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

macro_rules! chacha_rng {
    ($name:ident, $double_rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            core: ChaChaCore<$double_rounds>,
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                Self {
                    core: ChaChaCore::new(seed),
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.core.next_word()
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.core.next_word() as u64;
                let hi = self.core.next_word() as u64;
                hi << 32 | lo
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 4, "ChaCha with 8 rounds (4 double rounds): the fast variant used throughout this repo's experiments.");
chacha_rng!(ChaCha12Rng, 6, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 10, "ChaCha with 20 rounds (the full cipher).");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits={hits}");
    }

    #[test]
    fn chacha20_known_answer_rfc7539_block1() {
        // RFC 7539 §2.3.2 test vector: key 00..1f, nonce 0, counter... our
        // construction uses a zero nonce and starts the counter at 0, which
        // matches the RFC vector with counter=0 only in layout, not values —
        // so instead just sanity-check the keystream is stable.
        let mut rng = ChaCha20Rng::from_seed(core::array::from_fn(|i| i as u8));
        let first = rng.next_u32();
        let mut again = ChaCha20Rng::from_seed(core::array::from_fn(|i| i as u8));
        assert_eq!(first, again.next_u32());
    }
}
