//! Offline shim of `rand_chacha`: [`ChaCha8Rng`] and [`ChaCha20Rng`] backed
//! by a genuine ChaCha keystream (Bernstein's cipher run as a PRNG), exposed
//! through the vendored `rand` traits. Deterministic per seed; not
//! bit-compatible with upstream `rand_chacha` (nothing here requires that).

use rand::{RngCore, SeedableRng};

/// ChaCha quarter round.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha keystream generator with a configurable number of double rounds.
#[derive(Debug, Clone)]
struct ChaChaCore<const DOUBLE_ROUNDS: usize> {
    /// The 16-word ChaCha input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next word index within `block`; 16 means "exhausted".
    index: usize,
}

impl<const DOUBLE_ROUNDS: usize> ChaChaCore<DOUBLE_ROUNDS> {
    fn new(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // words 12..13: 64-bit block counter; 14..15: nonce (zero).
        Self {
            state,
            block: [0u32; 16],
            index: 16,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(*s);
        }
        // Increment the 64-bit counter in words 12/13.
        let counter = ((self.state[13] as u64) << 32 | self.state[12] as u64).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

macro_rules! chacha_rng {
    ($name:ident, $double_rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            core: ChaChaCore<$double_rounds>,
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                Self {
                    core: ChaChaCore::new(seed),
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.core.next_word()
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.core.next_word() as u64;
                let hi = self.core.next_word() as u64;
                hi << 32 | lo
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 4, "ChaCha with 8 rounds (4 double rounds): the fast variant used throughout this repo's experiments.");
chacha_rng!(ChaCha12Rng, 6, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 10, "ChaCha with 20 rounds (the full cipher).");

/// `L` independent ChaCha keystreams advanced in lockstep.
///
/// Lane `l`'s word sequence is bit-identical to a single-stream generator
/// seeded with `seeds[l]` via [`SeedableRng::seed_from_u64`] (e.g.
/// [`ChaCha8Rng`] for `DOUBLE_ROUNDS = 4`): batching changes how many blocks
/// are computed per call, never which words come out. The states are stored
/// lane-transposed (`state[word][lane]`) so the rounds vectorise across
/// lanes; [`ChaChaBatch::refill`] fills one 16-word block per lane in the
/// same transposed layout.
///
/// Consumers that draw whole `u64`s in lockstep across lanes (two words per
/// draw, no per-lane divergence) can batch their draws through this type and
/// reproduce the exact single-stream sequences.
#[derive(Debug, Clone)]
pub struct ChaChaBatch<const DOUBLE_ROUNDS: usize, const L: usize> {
    /// Lane-transposed ChaCha input blocks: `state[w][l]` is word `w` of
    /// lane `l`'s state (constants, key, 64-bit counter in words 12/13,
    /// zero nonce — exactly as in [`ChaChaCore`]).
    state: [[u32; L]; 16],
    use_avx512: bool,
    use_avx2: bool,
}

/// Lockstep ChaCha8 lanes (the batch counterpart of [`ChaCha8Rng`]).
pub type ChaCha8Batch<const L: usize> = ChaChaBatch<4, L>;

impl<const DOUBLE_ROUNDS: usize, const L: usize> ChaChaBatch<DOUBLE_ROUNDS, L> {
    /// Seeds every lane the way [`SeedableRng::seed_from_u64`] would seed a
    /// single-stream generator: SplitMix64 expansion of `seeds[l]` into the
    /// 32-byte key, counter and nonce zero.
    pub fn seed_from_u64s(seeds: &[u64; L]) -> Self {
        let mut state = [[0u32; L]; 16];
        for (l, &seed) in seeds.iter().enumerate() {
            state[0][l] = 0x6170_7865;
            state[1][l] = 0x3320_646e;
            state[2][l] = 0x7962_2d32;
            state[3][l] = 0x6b20_6574;
            let mut s = seed;
            for j in 0..4 {
                s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                state[4 + 2 * j][l] = z as u32;
                state[5 + 2 * j][l] = (z >> 32) as u32;
            }
        }
        #[cfg(target_arch = "x86_64")]
        let (use_avx512, use_avx2) = (
            std::is_x86_feature_detected!("avx512f"),
            std::is_x86_feature_detected!("avx2"),
        );
        #[cfg(not(target_arch = "x86_64"))]
        let (use_avx512, use_avx2) = (false, false);
        Self {
            state,
            use_avx512,
            use_avx2,
        }
    }

    /// One ChaCha quarter round on four state rows, lane-parallel. Operates
    /// on copies so the borrows stay simple; with `inline(always)` the rows
    /// live in vector registers.
    #[inline(always)]
    fn quarter_rows(w: &mut [[u32; L]; 16], ai: usize, bi: usize, ci: usize, di: usize) {
        let (mut a, mut b, mut c, mut d) = (w[ai], w[bi], w[ci], w[di]);
        for l in 0..L {
            a[l] = a[l].wrapping_add(b[l]);
            d[l] = (d[l] ^ a[l]).rotate_left(16);
        }
        for l in 0..L {
            c[l] = c[l].wrapping_add(d[l]);
            b[l] = (b[l] ^ c[l]).rotate_left(12);
        }
        for l in 0..L {
            a[l] = a[l].wrapping_add(b[l]);
            d[l] = (d[l] ^ a[l]).rotate_left(8);
        }
        for l in 0..L {
            c[l] = c[l].wrapping_add(d[l]);
            b[l] = (b[l] ^ c[l]).rotate_left(7);
        }
        w[ai] = a;
        w[bi] = b;
        w[ci] = c;
        w[di] = d;
    }

    #[inline(always)]
    fn refill_rounds(state: &[[u32; L]; 16], out: &mut [[u32; L]; 16]) {
        *out = *state;
        for _ in 0..DOUBLE_ROUNDS {
            Self::quarter_rows(out, 0, 4, 8, 12);
            Self::quarter_rows(out, 1, 5, 9, 13);
            Self::quarter_rows(out, 2, 6, 10, 14);
            Self::quarter_rows(out, 3, 7, 11, 15);
            Self::quarter_rows(out, 0, 5, 10, 15);
            Self::quarter_rows(out, 1, 6, 11, 12);
            Self::quarter_rows(out, 2, 7, 8, 13);
            Self::quarter_rows(out, 3, 4, 9, 14);
        }
        for w in 0..16 {
            for l in 0..L {
                out[w][l] = out[w][l].wrapping_add(state[w][l]);
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn refill_rounds_avx2(state: &[[u32; L]; 16], out: &mut [[u32; L]; 16]) {
        Self::refill_rounds(state, out);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn refill_rounds_avx512(state: &[[u32; L]; 16], out: &mut [[u32; L]; 16]) {
        Self::refill_rounds(state, out);
    }

    #[inline(always)]
    fn advance_counters_masked(&mut self, keep: &[bool; L]) {
        for (l, &keep_lane) in keep.iter().enumerate() {
            if keep_lane {
                let counter =
                    ((self.state[13][l] as u64) << 32 | self.state[12][l] as u64).wrapping_add(1);
                self.state[12][l] = counter as u32;
                self.state[13][l] = (counter >> 32) as u32;
            }
        }
    }

    /// Produces the next 16-word block of every lane into `out` (same
    /// transposed layout as the states) and advances each lane's 64-bit
    /// block counter, exactly as `DOUBLE_ROUNDS` double rounds of the
    /// single-stream [`ChaChaCore::refill`] would.
    pub fn refill(&mut self, out: &mut [[u32; L]; 16]) {
        self.refill_masked(out, &[true; L]);
    }

    /// Like [`refill`](Self::refill), but only lanes with `keep[l] == true`
    /// advance their block counter; the other lanes' columns of `out` hold
    /// the block they *will* produce next (same counter — the caller must
    /// discard them), and a later refill regenerates those blocks verbatim.
    /// This lets a buffering consumer skip lanes whose FIFO is full without
    /// skewing any lane's word sequence: generation stays lockstep SIMD
    /// either way, only the counter bookkeeping is per-lane.
    pub fn refill_masked(&mut self, out: &mut [[u32; L]; 16], keep: &[bool; L]) {
        #[cfg(target_arch = "x86_64")]
        {
            // SAFETY: gated on runtime CPUID detection done at construction.
            if self.use_avx512 {
                unsafe { Self::refill_rounds_avx512(&self.state, out) };
            } else if self.use_avx2 {
                unsafe { Self::refill_rounds_avx2(&self.state, out) };
            } else {
                Self::refill_rounds(&self.state, out);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        Self::refill_rounds(&self.state, out);
        self.advance_counters_masked(keep);
    }
}

/// `L` independent per-lane ChaCha word streams over one lockstep
/// [`ChaChaBatch`], with a small FIFO buffer per lane.
///
/// [`ChaChaBatch`] alone serves consumers whose lanes draw in perfect
/// lockstep. This type serves the harder case: lanes that consume *different
/// numbers* of words (e.g. rejection redraws, or variable-length runs), while
/// still paying for keystream generation in vectorised 16-blocks-at-once
/// refills. Each [`ChaChaLanes::next_u32`] pops the next word of one lane's
/// own stream; when a lane's buffer runs dry, one batched refill appends 16
/// fresh words to every lane's ring that has room for a block — lanes
/// running ahead keep their counter and catch up on a later refill
/// ([`ChaChaBatch::refill_masked`]) — so divergence between lanes is
/// absorbed by buffering, never by skewing any lane's sequence.
///
/// Lane `l`'s word sequence is bit-identical to a single-stream generator
/// seeded with `seeds[l]` via [`SeedableRng::seed_from_u64`] — the same
/// guarantee [`ChaChaBatch`] gives, extended to arbitrary per-lane
/// consumption interleavings. The rings are fixed arrays (no heap): the
/// pop path is two masked indexed reads and a decrement, cheap enough to
/// sit inside a walk kernel's innermost loop.
#[derive(Debug, Clone)]
pub struct ChaChaLanes<const DOUBLE_ROUNDS: usize, const L: usize> {
    batch: ChaChaBatch<DOUBLE_ROUNDS, L>,
    /// Lane-major ring buffers of not-yet-consumed keystream words.
    buf: [[u32; LANE_BUF]; L],
    /// Per-lane logical read cursor (wraps mod 2³²; masked into `buf`).
    head: [u32; L],
    /// Per-lane count of buffered words.
    len: [u32; L],
    refills: u64,
}

/// Ring capacity of each lane's FIFO, in words: two blocks, so a refill
/// (16 words) fits exactly when a lane holds at most one block.
const LANE_BUF: usize = 32;

/// Per-lane buffered ChaCha8 streams (the divergence-tolerant counterpart of
/// [`ChaCha8Batch`]).
pub type ChaCha8Lanes<const L: usize> = ChaChaLanes<4, L>;

impl<const DOUBLE_ROUNDS: usize, const L: usize> ChaChaLanes<DOUBLE_ROUNDS, L> {
    /// Seeds every lane the way [`SeedableRng::seed_from_u64`] would seed a
    /// single-stream generator (see [`ChaChaBatch::seed_from_u64s`]).
    pub fn seed_from_u64s(seeds: &[u64; L]) -> Self {
        Self {
            batch: ChaChaBatch::seed_from_u64s(seeds),
            buf: [[0; LANE_BUF]; L],
            head: [0; L],
            len: [0; L],
            refills: 0,
        }
    }

    /// Re-seeds in place, discarding any buffered words — so one
    /// `ChaChaLanes` can serve many lane groups back to back.
    pub fn reseed_from_u64s(&mut self, seeds: &[u64; L]) {
        self.batch = ChaChaBatch::seed_from_u64s(seeds);
        self.head = [0; L];
        self.len = [0; L];
    }

    /// Batched refills performed since construction (`reseed_from_u64s` does
    /// not reset the counter; each refill produces `16 × L` words).
    pub fn refills(&self) -> u64 {
        self.refills
    }

    #[cold]
    fn refill(&mut self) {
        let mut block = [[0u32; L]; 16];
        let keep: [bool; L] = core::array::from_fn(|l| self.len[l] as usize + 16 <= LANE_BUF);
        self.batch.refill_masked(&mut block, &keep);
        self.refills += 1;
        for l in 0..L {
            if keep[l] {
                let tail = self.head[l].wrapping_add(self.len[l]) as usize;
                for (w, row) in block.iter().enumerate() {
                    self.buf[l][(tail + w) % LANE_BUF] = row[l];
                }
                self.len[l] += 16;
            }
        }
    }

    /// The next word of lane `lane`'s stream.
    #[inline(always)]
    pub fn next_u32(&mut self, lane: usize) -> u32 {
        if self.len[lane] == 0 {
            self.refill();
        }
        let h = self.head[lane];
        self.head[lane] = h.wrapping_add(1);
        self.len[lane] -= 1;
        self.buf[lane][h as usize % LANE_BUF]
    }

    /// Pops the next `out.len()` words of lane `lane`'s stream in one go —
    /// exactly equivalent to that many [`next_u32`](Self::next_u32) calls,
    /// but the ring bookkeeping is paid per contiguous segment instead of
    /// per word (at most two segment copies per buffered block). Lets a
    /// consumer that knows a batch's draw count up front stage the words
    /// into flat local storage.
    #[inline]
    pub fn fill(&mut self, lane: usize, out: &mut [u32]) {
        let mut off = 0;
        while off < out.len() {
            if self.len[lane] == 0 {
                self.refill();
            }
            let h = self.head[lane] as usize % LANE_BUF;
            let take = (out.len() - off)
                .min(self.len[lane] as usize)
                .min(LANE_BUF - h);
            out[off..off + take].copy_from_slice(&self.buf[lane][h..h + take]);
            self.head[lane] = self.head[lane].wrapping_add(take as u32);
            self.len[lane] -= take as u32;
            off += take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits={hits}");
    }

    #[test]
    fn batch_lanes_match_single_stream_word_for_word() {
        // Every lane of a ChaCha8Batch must replay the exact word sequence
        // of a ChaCha8Rng seeded the same way — across several refills so
        // the counter bookkeeping is exercised too.
        const L: usize = 16;
        let seeds: [u64; L] = core::array::from_fn(|l| 0x1234_5678u64.wrapping_mul(l as u64 + 1));
        let mut batch = ChaCha8Batch::<L>::seed_from_u64s(&seeds);
        let mut singles: Vec<ChaCha8Rng> = seeds
            .iter()
            .map(|&s| ChaCha8Rng::seed_from_u64(s))
            .collect();
        let mut block = [[0u32; L]; 16];
        for refill in 0..5 {
            batch.refill(&mut block);
            for l in 0..L {
                for (w, row) in block.iter().enumerate() {
                    assert_eq!(
                        row[l],
                        singles[l].next_u32(),
                        "lane {l}, refill {refill}, word {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn lane_streams_match_single_streams_under_skewed_interleavings() {
        // The buffered lanes must replay each lane's exact single-stream
        // word sequence even when lanes are drained at wildly different
        // rates and in scrambled orders — the property the v3 walk kernel
        // leans on (per-lane consumption diverges with every stay run and
        // rejection redraw).
        const L: usize = 8;
        let seeds: [u64; L] = core::array::from_fn(|l| 0xDEAD_BEEFu64.wrapping_mul(l as u64 + 3));
        let mut lanes = ChaCha8Lanes::<L>::seed_from_u64s(&seeds);
        let mut singles: Vec<ChaCha8Rng> = seeds
            .iter()
            .map(|&s| ChaCha8Rng::seed_from_u64(s))
            .collect();
        // Deterministic but skewed schedule: lane l draws (l + 1) words per
        // sweep, sweeps visit lanes in a rotating order.
        for sweep in 0..40usize {
            for i in 0..L {
                let l = (i + sweep) % L;
                for _ in 0..=l {
                    assert_eq!(
                        lanes.next_u32(l),
                        singles[l].next_u32(),
                        "lane {l} diverged in sweep {sweep}"
                    );
                }
            }
        }
        assert!(lanes.refills() > 0);
    }

    #[test]
    fn lane_streams_reseed_replays_from_the_start() {
        const L: usize = 4;
        let seeds = [21u64, 22, 23, 24];
        let mut lanes = ChaCha8Lanes::<L>::seed_from_u64s(&seeds);
        // Drain lanes unevenly, then reseed with fresh seeds: every lane
        // must restart at word 0 of its new stream, buffers notwithstanding.
        for l in 0..L {
            for _ in 0..(5 * l + 1) {
                lanes.next_u32(l);
            }
        }
        let seeds2 = [31u64, 32, 33, 34];
        lanes.reseed_from_u64s(&seeds2);
        for (l, &s) in seeds2.iter().enumerate() {
            let mut single = ChaCha8Rng::seed_from_u64(s);
            for w in 0..20 {
                assert_eq!(lanes.next_u32(l), single.next_u32(), "lane {l} word {w}");
            }
        }
    }

    #[test]
    fn batch_supports_other_round_counts_and_lane_widths() {
        let seeds = [7u64, 9, 11, 13];
        let mut batch = ChaChaBatch::<10, 4>::seed_from_u64s(&seeds);
        let mut block = [[0u32; 4]; 16];
        batch.refill(&mut block);
        let mut single = ChaCha20Rng::seed_from_u64(11);
        for row in &block {
            assert_eq!(row[2], single.next_u32());
        }
    }

    #[test]
    fn chacha20_known_answer_rfc7539_block1() {
        // RFC 7539 §2.3.2 test vector: key 00..1f, nonce 0, counter... our
        // construction uses a zero nonce and starts the counter at 0, which
        // matches the RFC vector with counter=0 only in layout, not values —
        // so instead just sanity-check the keystream is stable.
        let mut rng = ChaCha20Rng::from_seed(core::array::from_fn(|i| i as u8));
        let first = rng.next_u32();
        let mut again = ChaCha20Rng::from_seed(core::array::from_fn(|i| i as u8));
        assert_eq!(first, again.next_u32());
    }
}
