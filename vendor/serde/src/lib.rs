//! Offline shim of the `serde` API surface this workspace uses.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides [`Serialize`]/[`Deserialize`] traits plus `#[derive(Serialize,
//! Deserialize)]` with the semantics the repo relies on: serialization into a
//! JSON-style [`Value`] tree that `serde_json` renders. `Deserialize` is
//! derived throughout the tree but never exercised, so here it is a marker
//! trait; a future PR can widen it if JSON input is ever needed.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// A JSON-style document tree — the target of [`Serialize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Build the [`Value`] representation of `self`.
    fn to_value(&self) -> Value;
}

/// Marker for deserializable types. The workspace derives this everywhere but
/// never feeds JSON back in, so no decoding machinery is required yet.
pub trait Deserialize: Sized {}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        // JSON numbers cap at 64 bits here; stringify to stay lossless.
        Value::String(self.to_string())
    }
}
impl Deserialize for i128 {}

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for u128 {}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}
impl<K, V> Deserialize for BTreeMap<K, V> {}

macro_rules! impl_serialize_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {}
    };
}

impl_serialize_tuple!(A: 0);
impl_serialize_tuple!(A: 0, B: 1);
impl_serialize_tuple!(A: 0, B: 1, C: 2);
impl_serialize_tuple!(A: 0, B: 1, C: 2, D: 3);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
