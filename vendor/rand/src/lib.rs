//! Offline shim of the `rand` 0.8 API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible subset of `rand`: the [`RngCore`] / [`Rng`] /
//! [`SeedableRng`] traits, uniform range sampling (`gen_range`), Bernoulli
//! sampling (`gen_bool`), `Standard`-style `gen::<T>()`, and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic given a seed but
//! are NOT bit-compatible with upstream `rand`; nothing in this repository
//! depends on upstream's exact streams.

/// Low-level uniform word generation, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Next uniformly random 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniformly random 64-bit word.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let take = (dest.len() - i).min(8);
            dest[i..i + take].copy_from_slice(&word[..take]);
            i += take;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Deterministic seeding, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type (e.g. `[u8; 32]` for ChaCha).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 — every distinct
    /// `u64` yields an unrelated full seed.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types sampleable uniformly from a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                // Lemire's widening-multiply method with rejection: unbiased.
                loop {
                    let x = rng.next_u64() as u128;
                    let m = x * span;
                    let lo = m as u64;
                    if (lo as u128) < span {
                        let threshold = (u64::MAX as u128 + 1 - span) % span;
                        if (lo as u128) < threshold {
                            continue;
                        }
                    }
                    return ((low as i128) + (m >> 64) as i128) as $t;
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample empty range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        low + unit * (high - low)
    }
}

/// Range argument accepted by [`Rng::gen_range`], mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = self.into_inner();
                assert!(low <= high, "cannot sample empty range");
                if low == <$t>::MIN && high == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                if high == <$t>::MAX {
                    // `high + 1` would overflow; shift the range down instead
                    // (`low > MIN` here, or the branch above would have hit).
                    return <$t>::sample_half_open(rng, low - 1, high) + 1;
                }
                <$t>::sample_half_open(rng, low, high + 1)
            }
        }
    )*};
}

impl_sample_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types producible by [`Rng::gen`] (the `Standard` distribution upstream).
pub trait StandardSample {
    /// Draw one standard sample.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_sample_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        // Compare 53 uniform bits against p scaled to the same grid.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// Standard sample of type `T` (uniform over the type's natural domain;
    /// `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related extensions (`SliceRandom`).

    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices, mirroring
    /// `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! Convenience re-exports mirroring `rand::prelude`.
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
