//! Offline shim of the `criterion` API surface this workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], the
//! [`criterion_group!`] / [`criterion_main!`] macros and [`black_box`].
//!
//! Statistics are deliberately simple — per benchmark it warms up once, runs
//! up to `sample_size` timed samples bounded by `measurement_time`, and
//! prints min/mean/max — enough to track the simulator's practical cost
//! release over release without upstream's analysis machinery.
//!
//! Mirroring upstream, positional command-line arguments are substring
//! filters on the full `group/id` benchmark path: `cargo bench --bench
//! bench_pipeline -- pipeline_adaptive_e2e` runs only that group and skips
//! everything else without printing a row. No filters means run everything.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, id, 10, Duration::from_secs(3), f);
        self
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim's single warm-up iteration
    /// ignores the duration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Upper bound on total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let id = id.to_string();
        let path = format!("{}/{id}", self.name);
        run_benchmark(&path, &id, self.sample_size, self.measurement_time, f);
        self
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.to_string();
        let path = format!("{}/{id}", self.name);
        run_benchmark(&path, &id, self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// A `function_name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Passed to the benchmarked closure; its [`iter`][Bencher::iter] runs and
/// times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Time `routine`, collecting up to `sample_size` samples. In test mode
    /// (`cargo bench -- --test`, mirroring upstream) the routine runs exactly
    /// once, untimed — just enough to prove the bench still works.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, also catches panics before timing
        if test_mode() {
            return;
        }
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

/// `true` when the harness was invoked with `--test` (upstream criterion's
/// smoke mode: run every benchmark once, skip measurement). `cargo bench
/// --workspace -- --test` uses this in CI to keep benches compiling and
/// running without paying for real measurements.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Positional (non-flag) arguments act as substring filters on the full
/// `group/id` path, as upstream criterion does. Cargo may inject flags of
/// its own (e.g. `--bench`), so anything starting with `-` is ignored.
fn matches_filters(path: &str) -> bool {
    let mut any_filter = false;
    for arg in std::env::args().skip(1) {
        if arg.starts_with('-') {
            continue;
        }
        any_filter = true;
        if path.contains(&arg) {
            return true;
        }
    }
    !any_filter
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    path: &str,
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    if !matches_filters(path) {
        return;
    }
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        measurement_time,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        if test_mode() {
            println!("  {id:<40} ok (test mode: ran once, not measured)");
        } else {
            println!("  {id:<40} (no samples collected)");
        }
        return;
    }
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "  {id:<40} [{min:>12.3?} {mean:>12.3?} {max:>12.3?}]  ({} samples)",
        bencher.samples.len()
    );
}

/// Collect benchmark functions into one runner, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
