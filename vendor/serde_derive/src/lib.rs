//! Offline shim of `serde_derive`.
//!
//! `syn`/`quote` are unavailable (no crates.io access), so this crate parses
//! the derive input with a small hand-rolled walker over
//! [`proc_macro::TokenTree`]s and emits the impl as a source string. It
//! supports exactly the shapes this workspace uses: non-generic structs
//! (named, tuple, unit) and non-generic enums with unit, tuple, or
//! struct-like variants. `#[serde(...)]` attributes are accepted and
//! ignored (the workspace uses `#[serde(default)]` to document
//! forward-compatibility of on-disk records; the shim's serializer always
//! writes every field and its deserializer is a marker trait, so ignoring
//! the attribute is behaviour-preserving).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

impl Item {
    fn name(&self) -> &str {
        match self {
            Item::NamedStruct { name, .. }
            | Item::TupleStruct { name, .. }
            | Item::UnitStruct { name }
            | Item::Enum { name, .. } => name,
        }
    }
}

/// Skip any `#[...]` attribute at position `i`; returns the next position.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a `pub` / `pub(...)` visibility marker at position `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advance past a type (or expression) until a comma at angle-bracket depth 0.
/// Returns the index of the comma (or `tokens.len()`).
fn skip_until_top_level_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parse `name: Type, ...` named fields from the tokens of a brace group.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(tokens, skip_attrs(tokens, i));
        let TokenTree::Ident(field) = &tokens[i] else {
            panic!(
                "serde_derive shim: expected field name, got {:?}",
                tokens[i]
            );
        };
        fields.push(field.to_string());
        i += 1; // field name
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected ':', got {other:?}"),
        }
        i = skip_until_top_level_comma(tokens, i);
        i += 1; // the comma (or one past the end)
    }
    fields
}

/// Count the fields of a tuple struct / tuple variant from its paren group.
fn tuple_arity(tokens: &[TokenTree]) -> usize {
    let mut arity = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(tokens, skip_attrs(tokens, i));
        if i >= tokens.len() {
            break;
        }
        arity += 1;
        i = skip_until_top_level_comma(tokens, i) + 1;
    }
    arity
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "serde_derive shim: expected variant name, got {:?}",
                tokens[i]
            );
        };
        let name = name.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(tuple_arity(&g.stream().into_iter().collect::<Vec<_>>()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        i = skip_until_top_level_comma(tokens, i) + 1;
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let TokenTree::Ident(kw) = &tokens[i] else {
        panic!(
            "serde_derive shim: expected struct/enum keyword, got {:?}",
            tokens[i]
        );
    };
    let kw = kw.to_string();
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde_derive shim: expected item name, got {:?}", tokens[i]);
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!(
                "serde_derive shim: generic type `{name}` is not supported; \
                 widen vendor/serde_derive if the workspace ever needs this"
            );
        }
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: tuple_arity(&g.stream().into_iter().collect::<Vec<_>>()),
                }
            }
            _ => Item::UnitStruct { name },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(&g.stream().into_iter().collect::<Vec<_>>()),
            },
            other => panic!("serde_derive shim: malformed enum body: {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

fn object_literal(entries: &[(String, String)]) -> String {
    let pairs: Vec<String> = entries
        .iter()
        .map(|(k, v)| format!("(::std::string::String::from(\"{k}\"), {v})"))
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = item.name().to_string();
    let body = match &item {
        Item::UnitStruct { .. } => "::serde::Value::Null".to_string(),
        Item::NamedStruct { fields, .. } => object_literal(
            &fields
                .iter()
                .map(|f| {
                    (
                        f.clone(),
                        format!("::serde::Serialize::to_value(&self.{f})"),
                    )
                })
                .collect::<Vec<_>>(),
        ),
        Item::TupleStruct { arity, .. } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            if *arity == 1 {
                items.into_iter().next().unwrap()
            } else {
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            }
        }
        Item::Enum { variants, .. } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binders: Vec<String> =
                                (0..*arity).map(|i| format!("f{i}")).collect();
                            let values: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            let payload = if *arity == 1 {
                                values[0].clone()
                            } else {
                                format!("::serde::Value::Array(::std::vec![{}])", values.join(", "))
                            };
                            let tagged = object_literal(&[(vname.clone(), payload)]);
                            format!("{name}::{vname}({}) => {tagged},", binders.join(", "))
                        }
                        VariantKind::Named(fields) => {
                            let payload = object_literal(
                                &fields
                                    .iter()
                                    .map(|f| {
                                        (f.clone(), format!("::serde::Serialize::to_value({f})"))
                                    })
                                    .collect::<Vec<_>>(),
                            );
                            let tagged = object_literal(&[(vname.clone(), payload)]);
                            format!("{name}::{vname} {{ {} }} => {tagged},", fields.join(", "))
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = item.name();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{}}"
    )
    .parse()
    .expect("serde_derive shim: generated impl must parse")
}
