//! Offline shim of the `proptest` API surface this workspace uses.
//!
//! Real proptest shrinks failing inputs; this shim only *generates* (from a
//! deterministic ChaCha stream seeded per test name), which preserves the
//! property-testing value — many random cases per invariant, reproducible
//! across runs — without the shrinking machinery. Supported surface:
//! [`Strategy`] for integer ranges and tuples, [`prop_map`][Strategy::prop_map]
//! / [`prop_flat_map`][Strategy::prop_flat_map], [`collection::vec`],
//! [`bool::ANY`] and the full-range [`num`] strategies, the
//! [`proptest!`] macro with `#![proptest_config(...)]`, and the
//! `prop_assert*` macros.

use rand_chacha::ChaCha8Rng;

pub use rand::Rng as __Rng;
pub use rand::SeedableRng as __SeedableRng;

/// The RNG handed to strategies by the shim's runner.
pub type TestRng = ChaCha8Rng;

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);

/// A strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn from
    /// `len` uniformly.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `Vec` strategy: lengths drawn uniformly from `len`, elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies (`proptest::bool::ANY`).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform boolean strategy (see [`ANY`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }
}

pub mod num {
    //! Full-range numeric strategies (`proptest::num::u32::ANY`), uniform
    //! over the type's whole value range — unlike `Range` strategies, these
    //! include the type's maximum value.

    macro_rules! full_range_module {
        ($($m:ident),*) => {$(
            pub mod $m {
                use crate::{Strategy, TestRng};
                use rand::Rng;

                /// Full-range strategy (see [`ANY`]).
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                /// The type's whole value range, uniform.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $m;

                    fn generate(&self, rng: &mut TestRng) -> $m {
                        rng.gen()
                    }
                }
            }
        )*};
    }

    full_range_module!(u32, u64);
}

/// Runner configuration; only `cases` is meaningful in the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Derive a per-test seed from the test's name so every property gets an
/// independent, stable stream.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Assert inside a property (shim: plain `assert!` with case context added by
/// the runner's panic message).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The property-test macro: each `#[test] fn name(arg in strategy, ...)`
/// becomes a standard test running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng: $crate::TestRng = $crate::__SeedableRng::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut rng);
                    )*
                    let run = || { $body };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest shim: property `{}` failed on case {}/{} (deterministic per-name seed)",
                            stringify!($name), case + 1, config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

pub mod prelude {
    //! Convenience re-exports mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}
