//! Random-mate contraction: the classical leader-election baseline with
//! constant-factor growth per round.
//!
//! This is the algorithm the paper's Section 3 describes as the "typical
//! leader-election algorithm": sample each vertex as a leader with
//! probability 1/2, let every non-leader that has a leader neighbour join
//! one, contract, repeat. Each round shrinks the number of remaining
//! super-vertices by an expected constant factor only, so `Θ(log n)` rounds
//! are needed — precisely the barrier the paper's quadratic-growth algorithm
//! (Section 6) breaks on random graphs.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wcc_graph::{ComponentLabels, Graph, UnionFind};
use wcc_mpc::{derive_stream_seed, MpcContext};

/// Random-mate contraction. Returns the exact connected components; charges
/// two MPC rounds per contraction phase (one to pick leaders and exchange
/// adjacency, one to contract).
pub fn random_mate_contraction(g: &Graph, ctx: &mut MpcContext, seed: u64) -> ComponentLabels {
    let n = g.num_vertices();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    ctx.begin_phase("random-mate");
    let mut uf = UnionFind::new(n);
    // Current contracted edge list between component representatives.
    let mut edges: Vec<(usize, usize)> = g.edge_iter().filter(|&(u, v)| u != v).collect();
    // Safety bound: random mate halves the vertex count in expectation, so
    // 4 log n + 16 rounds suffice with overwhelming probability; the loop also
    // exits as soon as no contractible edge remains.
    let max_phases = 4 * (usize::BITS - n.max(2).leading_zeros()) as usize + 16;
    for _ in 0..max_phases {
        if edges.is_empty() {
            break;
        }
        ctx.charge_shuffle(2 * edges.len());
        let _ = ctx.record_balanced_load(2 * edges.len());
        // Coin flip per current representative, one derived ChaCha8 stream
        // per vertex so the flips parallelise deterministically.
        let phase_base = rng.gen::<u64>();
        let roots: Vec<usize> = (0..n).map(|v| uf.find(v)).collect();
        let is_leader: Vec<bool> = ctx.executor().map_indexed(n, |v| {
            roots[v] == v
                && ChaCha8Rng::seed_from_u64(derive_stream_seed(phase_base, v as u64)).gen_bool(0.5)
        });
        // Every non-leader representative joins an arbitrary leader neighbour.
        let mut join: Vec<Option<usize>> = vec![None; n];
        for &(u, v) in &edges {
            let (ru, rv) = (uf.find(u), uf.find(v));
            if ru == rv {
                continue;
            }
            if !is_leader[ru] && is_leader[rv] && join[ru].is_none() {
                join[ru] = Some(rv);
            }
            if !is_leader[rv] && is_leader[ru] && join[rv].is_none() {
                join[rv] = Some(ru);
            }
        }
        ctx.charge_shuffle(2 * edges.len());
        for (v, target) in join.iter().enumerate() {
            if let Some(t) = target {
                uf.union(v, *t);
            }
        }
        // Re-contract the edge list and drop internal edges. The relabelling
        // is a pure per-edge map over a post-union root snapshot, so it fans
        // out over contiguous edge chunks on the backend into one flat list.
        let new_roots: Vec<usize> = (0..n).map(|v| uf.find(v)).collect();
        edges = ctx.executor().flat_map_ranges(edges.len(), |range| {
            edges[range]
                .iter()
                .map(|&(u, v)| (new_roots[u], new_roots[v]))
                .filter(|&(u, v)| u != v)
                .collect()
        });
        edges.sort_unstable();
        edges.dedup();
    }
    ctx.end_phase();
    uf.into_labels()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wcc_graph::prelude::*;
    use wcc_mpc::MpcConfig;

    fn ctx_for(g: &Graph) -> MpcContext {
        MpcContext::new(MpcConfig::for_input_size(2 * g.num_edges() + 10, 0.5).permissive())
    }

    #[test]
    fn matches_ground_truth_on_various_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let graphs = [
            generators::cycle(100),
            generators::star(50),
            generators::erdos_renyi(200, 0.01, &mut rng),
            generators::planted_expander_components(&[40, 40, 40], 8, &mut rng),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let truth = connected_components(g);
            let mut ctx = ctx_for(g);
            let labels = random_mate_contraction(g, &mut ctx, 100 + i as u64);
            assert!(labels.same_partition(&truth), "graph {i} mismatched");
        }
    }

    #[test]
    fn round_count_grows_logarithmically_on_cycles() {
        // Rounds should grow slowly (logarithmically) with n, but must be > 1.
        let mut rounds = Vec::new();
        for &n in &[64usize, 4096] {
            let g = generators::cycle(n);
            let mut ctx = ctx_for(&g);
            random_mate_contraction(&g, &mut ctx, 5);
            rounds.push(ctx.stats().total_rounds());
        }
        assert!(rounds[0] >= 4);
        assert!(rounds[1] > rounds[0]);
        // 64x more vertices should cost far less than 64x more rounds.
        assert!(rounds[1] < rounds[0] * 8);
    }

    #[test]
    fn single_vertex_and_empty_edge_cases() {
        let g = Graph::empty(3);
        let mut ctx = ctx_for(&g);
        let labels = random_mate_contraction(&g, &mut ctx, 0);
        assert_eq!(labels.num_components(), 3);
    }
}
