//! Classical MPC / PRAM connectivity baselines.
//!
//! The paper's headline claim is an *exponential* round improvement over the
//! `O(log n)`-round algorithms that were previously the state of the art for
//! sparse connectivity with strictly sublinear memory per machine
//! ([36, 37, 48] in the paper's bibliography, and the three-decade-old PRAM
//! algorithms). To reproduce the comparison (experiment E10) we implement
//! those baselines on the same simulator and round-accounting layer:
//!
//! * [`min_label_propagation`] — the folklore "propagate the minimum label"
//!   algorithm; one MPC round per iteration, `Θ(diameter)` iterations.
//! * [`hash_to_min`] — Rastogi et al. (ICDE 2013) Hash-to-Min, `O(log n)`
//!   rounds on typical inputs.
//! * [`random_mate_contraction`] — leader election with *constant-factor*
//!   component growth per round (the classical contrast to the paper's
//!   quadratic growth), `Θ(log n)` rounds.
//! * [`shiloach_vishkin`] — the classic PRAM hook-and-jump algorithm,
//!   `Θ(log n)` pointer-jumping rounds.
//! * [`sequential_components`] — single-machine union–find reference (what
//!   you would run if the graph fit on one machine).
//!
//! All algorithms return the exact connected components (they are
//! deterministic or Las-Vegas); what differs — and what the experiments
//! measure — is the number of MPC rounds charged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contraction;
pub mod label_propagation;
pub mod pram;

pub use crate::contraction::random_mate_contraction;
pub use crate::label_propagation::{hash_to_min, min_label_propagation};
pub use crate::pram::shiloach_vishkin;

use wcc_graph::{components, ComponentLabels, Graph};
use wcc_mpc::MpcContext;

/// Single-machine union–find baseline. Charges zero MPC rounds (it is the
/// "fits on one machine" regime the MPC model explicitly excludes) — it
/// exists so experiments can report the sequential wall-clock reference.
pub fn sequential_components(g: &Graph) -> ComponentLabels {
    components::connected_components_union_find(g)
}

/// Outcome of a baseline run: the labels it computed and the rounds it spent.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Component labels computed by the baseline.
    pub labels: ComponentLabels,
    /// MPC rounds charged while computing them.
    pub rounds: u64,
}

/// Runs a baseline by name; convenience for the experiment harness.
///
/// Supported names: `"min-label"`, `"hash-to-min"`, `"random-mate"`,
/// `"shiloach-vishkin"`.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn run_baseline(name: &str, g: &Graph, ctx: &mut MpcContext, seed: u64) -> BaselineResult {
    let before = ctx.stats().total_rounds();
    let labels = match name {
        "min-label" => min_label_propagation(g, ctx),
        "hash-to-min" => hash_to_min(g, ctx),
        "random-mate" => random_mate_contraction(g, ctx, seed),
        "shiloach-vishkin" => shiloach_vishkin(g, ctx),
        other => panic!("unknown baseline {other:?}"),
    };
    BaselineResult {
        labels,
        rounds: ctx.stats().total_rounds() - before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wcc_graph::prelude::*;
    use wcc_mpc::MpcConfig;

    #[test]
    fn all_baselines_agree_with_ground_truth_on_mixed_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let graphs = [
            generators::cycle(64),
            generators::planted_expander_components(&[30, 50, 20], 8, &mut rng),
            generators::erdos_renyi(150, 0.015, &mut rng),
            generators::star(40),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let truth = connected_components(g);
            for name in [
                "min-label",
                "hash-to-min",
                "random-mate",
                "shiloach-vishkin",
            ] {
                let mut ctx = MpcContext::new(
                    MpcConfig::for_input_size(2 * g.num_edges() + 10, 0.5).permissive(),
                );
                let result = run_baseline(name, g, &mut ctx, 17);
                assert!(
                    result.labels.same_partition(&truth),
                    "baseline {name} wrong on graph {i}"
                );
                assert!(result.rounds >= 1, "baseline {name} charged no rounds");
            }
        }
    }

    #[test]
    fn sequential_baseline_matches_bfs() {
        let g = generators::ring_of_cliques(5, 6);
        assert!(sequential_components(&g).same_partition(&connected_components(&g)));
    }

    #[test]
    #[should_panic(expected = "unknown baseline")]
    fn unknown_baseline_panics() {
        let g = generators::cycle(5);
        let mut ctx = MpcContext::new(MpcConfig::default());
        let _ = run_baseline("nope", &g, &mut ctx, 0);
    }
}
