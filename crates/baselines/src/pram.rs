//! A Shiloach–Vishkin-style PRAM connectivity algorithm.
//!
//! The classic CRCW PRAM algorithm (Shiloach & Vishkin 1982, reference [57]
//! of the paper) maintains a forest of rooted stars via two operations per
//! round: *hooking* (the root of one tree attaches to a neighbouring tree)
//! and *pointer jumping* (`parent[v] ← parent[parent[v]]`). It terminates in
//! `O(log n)` rounds. Simulating it in MPC costs `O(1)` MPC rounds per PRAM
//! round (each hook/jump is one shuffle), so it is another member of the
//! `Θ(log n)`-round baseline family.

use wcc_graph::{ComponentLabels, Graph};
use wcc_mpc::MpcContext;

/// Shiloach–Vishkin connectivity. Returns exact components and charges two
/// MPC rounds (hook + jump) per PRAM iteration.
pub fn shiloach_vishkin(g: &Graph, ctx: &mut MpcContext) -> ComponentLabels {
    let n = g.num_vertices();
    ctx.begin_phase("shiloach-vishkin");
    let mut parent: Vec<usize> = (0..n).collect();
    let edges: Vec<(usize, usize)> = g.edge_iter().filter(|&(u, v)| u != v).collect();
    // O(log n) iterations suffice; add a generous safety margin and a
    // convergence check.
    let max_iters = 2 * (usize::BITS - n.max(2).leading_zeros()) as usize + 8;
    for _ in 0..max_iters {
        let mut changed = false;

        // Hooking: for every edge (u, v), try to hook the root of the larger
        // endpoint onto the smaller one (deterministic variant: hook onto the
        // smaller root, only roots of stars hook).
        ctx.charge_shuffle(2 * edges.len());
        let _ = ctx.record_balanced_load(2 * edges.len());
        let snapshot = parent.clone();
        for &(u, v) in &edges {
            let (pu, pv) = (snapshot[u], snapshot[v]);
            if pu == pv {
                continue;
            }
            // Only roots may be re-parented, and always towards the smaller id
            // to avoid cycles.
            if pu < pv && snapshot[pv] == pv {
                if parent[pv] > pu {
                    parent[pv] = pu;
                    changed = true;
                }
            } else if pv < pu && snapshot[pu] == pu && parent[pu] > pv {
                parent[pu] = pv;
                changed = true;
            }
        }

        // Pointer jumping.
        ctx.charge_shuffle(n);
        for v in 0..n {
            let pp = parent[parent[v]];
            if pp != parent[v] {
                parent[v] = pp;
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }
    // Final flattening to roots (local, free).
    for v in 0..n {
        let mut r = v;
        while parent[r] != r {
            r = parent[r];
        }
        parent[v] = r;
    }
    ctx.end_phase();
    ComponentLabels::from_raw_labels(&parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wcc_graph::prelude::*;
    use wcc_mpc::MpcConfig;

    fn ctx_for(g: &Graph) -> MpcContext {
        MpcContext::new(MpcConfig::for_input_size(2 * g.num_edges() + 10, 0.5).permissive())
    }

    #[test]
    fn matches_ground_truth() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let graphs = [
            generators::path(200),
            generators::cycle(111),
            generators::binary_tree(127),
            generators::erdos_renyi(250, 0.012, &mut rng),
            generators::planted_expander_components(&[60, 60], 8, &mut rng),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let truth = connected_components(g);
            let mut ctx = ctx_for(g);
            let labels = shiloach_vishkin(g, &mut ctx);
            assert!(labels.same_partition(&truth), "graph {i} mismatched");
        }
    }

    #[test]
    fn rounds_grow_sublinearly_with_path_length() {
        let small = generators::path(64);
        let large = generators::path(4096);
        let mut ctx_s = ctx_for(&small);
        let mut ctx_l = ctx_for(&large);
        shiloach_vishkin(&small, &mut ctx_s);
        shiloach_vishkin(&large, &mut ctx_l);
        let (rs, rl) = (ctx_s.stats().total_rounds(), ctx_l.stats().total_rounds());
        // 64x longer path should cost only a constant number of extra iterations.
        assert!(rl <= rs + 30, "rounds went from {rs} to {rl}");
    }

    #[test]
    fn handles_graphs_with_self_loops_and_multi_edges() {
        let g = Graph::from_edges_unchecked(4, vec![(0, 0), (0, 1), (0, 1), (2, 3)]);
        let mut ctx = ctx_for(&g);
        let labels = shiloach_vishkin(&g, &mut ctx);
        assert_eq!(labels.num_components(), 2);
    }
}
