//! Label-propagation connectivity baselines.

use wcc_graph::{ComponentLabels, Graph};
use wcc_mpc::MpcContext;

/// Folklore minimum-label propagation.
///
/// Every vertex starts with its own id as its label; in each round every
/// vertex adopts the minimum label among itself and its neighbours. One
/// iteration is one MPC round (each vertex exchanges one word with each
/// neighbour, which the shuffle layer of `wcc-mpc` moves in a single
/// superstep). The algorithm stabilises after `diameter + 1` iterations —
/// `Θ(n)` rounds on a path, `Θ(log n)` on an expander — and is the simplest
/// of the `Ω(log n)`-round baselines the paper improves on.
pub fn min_label_propagation(g: &Graph, ctx: &mut MpcContext) -> ComponentLabels {
    let n = g.num_vertices();
    let executor = ctx.executor();
    ctx.begin_phase("min-label-propagation");
    let mut labels: Vec<usize> = (0..n).collect();
    loop {
        // One communication round: every vertex sends its label across each
        // incident edge. The per-vertex min is a pure function of the
        // previous round's snapshot, so it fans out over the backend with
        // identical results on every thread count.
        ctx.charge_shuffle(2 * g.num_edges());
        let _ = ctx.record_balanced_load(2 * g.num_edges());
        let next: Vec<usize> = executor.map_indexed(n, |v| {
            let mut best = labels[v];
            for &w in g.neighbors(v) {
                best = best.min(labels[w as usize]);
            }
            best
        });
        let changed = next != labels;
        labels = next;
        if !changed {
            break;
        }
    }
    ctx.end_phase();
    ComponentLabels::from_raw_labels(&labels)
}

/// Hash-to-Min (Rastogi, Machanavajjhala, Chitnis, Das Sarma — ICDE 2013,
/// reference [48] of the paper).
///
/// Every vertex `v` maintains a cluster `C_v`, initially `{v} ∪ N(v)`. In
/// each round `v` sends `C_v` to the minimum member of `C_v` and sends that
/// minimum to every other member; clusters are replaced by the union of the
/// received messages. The process stabilises in `O(log n)` rounds with the
/// minimum vertex of each component holding the whole component.
pub fn hash_to_min(g: &Graph, ctx: &mut MpcContext) -> ComponentLabels {
    use std::collections::BTreeSet;
    let n = g.num_vertices();
    ctx.begin_phase("hash-to-min");
    let mut clusters: Vec<BTreeSet<usize>> = (0..n)
        .map(|v| {
            let mut c: BTreeSet<usize> = g.neighbors(v).iter().map(|&w| w as usize).collect();
            c.insert(v);
            c
        })
        .collect();
    loop {
        let message_words: usize = clusters.iter().map(|c| c.len() + 1).sum();
        ctx.charge_shuffle(message_words);
        let _ = ctx.record_balanced_load(message_words);
        let mut inbox: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for cluster in &clusters {
            let m = *cluster.iter().next().expect("cluster always contains v");
            // Send the full cluster to the minimum member...
            inbox[m].extend(cluster.iter().copied());
            // ...and the minimum to every other member.
            for &u in cluster {
                inbox[u].insert(m);
            }
        }
        let mut changed = false;
        for v in 0..n {
            if inbox[v] != clusters[v] {
                changed = true;
            }
            clusters[v] = std::mem::take(&mut inbox[v]);
        }
        if !changed {
            break;
        }
    }
    ctx.end_phase();
    // At convergence every vertex's cluster minimum is its component minimum.
    let labels: Vec<usize> = clusters
        .iter()
        .map(|c| *c.iter().next().expect("cluster non-empty"))
        .collect();
    ComponentLabels::from_raw_labels(&labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wcc_graph::prelude::*;
    use wcc_mpc::MpcConfig;

    fn ctx_for(g: &Graph) -> MpcContext {
        MpcContext::new(MpcConfig::for_input_size(2 * g.num_edges() + 10, 0.5).permissive())
    }

    #[test]
    fn min_label_matches_truth_and_uses_diameter_rounds() {
        let g = generators::path(40);
        let truth = connected_components(&g);
        let mut ctx = ctx_for(&g);
        let labels = min_label_propagation(&g, &mut ctx);
        assert!(labels.same_partition(&truth));
        // A path of 40 vertices has diameter 39: label 0 needs 39 hops to reach the end.
        assert!(ctx.stats().total_rounds() >= 39);
    }

    #[test]
    fn min_label_on_disconnected_graph() {
        let (g, _) = generators::disjoint_union_of(&[generators::cycle(10), generators::cycle(12)]);
        let mut ctx = ctx_for(&g);
        let labels = min_label_propagation(&g, &mut ctx);
        assert_eq!(labels.num_components(), 2);
    }

    #[test]
    fn hash_to_min_matches_truth_in_logarithmic_rounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = generators::random_out_degree_graph(300, 12, &mut rng);
        let truth = connected_components(&g);
        let mut ctx = ctx_for(&g);
        let labels = hash_to_min(&g, &mut ctx);
        assert!(labels.same_partition(&truth));
        let rounds = ctx.stats().total_rounds();
        assert!(
            rounds <= 20,
            "hash-to-min took {rounds} rounds on a 300-vertex random graph"
        );
    }

    #[test]
    fn hash_to_min_handles_isolated_vertices() {
        let g = Graph::from_edges_unchecked(5, vec![(0, 1)]);
        let mut ctx = ctx_for(&g);
        let labels = hash_to_min(&g, &mut ctx);
        assert_eq!(labels.num_components(), 4);
    }

    #[test]
    fn label_propagation_needs_more_rounds_on_path_than_expander() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let expander = generators::random_regular_permutation_graph(128, 8, &mut rng);
        let path = generators::path(128);
        let mut ctx_e = ctx_for(&expander);
        let mut ctx_p = ctx_for(&path);
        min_label_propagation(&expander, &mut ctx_e);
        min_label_propagation(&path, &mut ctx_p);
        assert!(ctx_e.stats().total_rounds() * 4 < ctx_p.stats().total_rounds());
    }
}
