//! Virtual adjacency views — graphs that exist only arithmetically.
//!
//! The lazification step of Section 5.2 turns a `Δ`-regular graph into a
//! `2Δ`-regular one by adding `Δ` self-loops to every vertex, so that a
//! uniform neighbour step stays put with probability `1/2`. Materialising
//! that graph ([`Graph::with_self_loops`]) rebuilds the whole CSR structure
//! with twice the adjacency — pure overhead, because the added loops are
//! fully described by one integer. [`LazyView`] simulates them instead: a
//! view over a borrowed [`Graph`] whose virtual degree is
//! `deg(v) + loops`, where neighbour indices `>= deg(v)` mean "stay at `v`".
//!
//! Everything that takes random-walk steps is generic over the
//! [`AdjacencyView`] trait, so the same walk code runs against a real
//! [`Graph`] or a [`LazyView`] — and, crucially, **bit-identically**: the
//! CSR built by [`Graph::with_self_loops`] lists every vertex's original
//! neighbours first (in original order) followed by the appended loops, which
//! is exactly the index mapping [`LazyView::nth_neighbor`] computes. A walk
//! drawing `gen_range(0..degree(v))` therefore consumes the same randomness
//! and lands on the same vertices whether the loops are materialised or
//! virtual (pinned by `lazy_view_walks_match_materialized_self_loops` in
//! `wcc-core`).

use crate::graph::Graph;

/// Read-only adjacency access, the interface random walks actually need.
///
/// Implemented by [`Graph`] (delegating to its CSR) and by [`LazyView`]
/// (arithmetic self-loops). The *i*-th neighbour of `v` must be a fixed,
/// stable function of `(v, i)` so that walk code drawing uniform indices is
/// deterministic given its RNG stream.
pub trait AdjacencyView {
    /// Number of vertices of the viewed graph.
    fn num_vertices(&self) -> usize;

    /// Degree of `v` under this view (self-loops count once; parallel edges
    /// with multiplicity).
    fn degree(&self, v: usize) -> usize;

    /// The `i`-th neighbour of `v` (0-indexed) under this view, if it
    /// exists.
    fn nth_neighbor(&self, v: usize, i: usize) -> Option<usize>;
}

impl AdjacencyView for Graph {
    fn num_vertices(&self) -> usize {
        Graph::num_vertices(self)
    }

    fn degree(&self, v: usize) -> usize {
        Graph::degree(self, v)
    }

    fn nth_neighbor(&self, v: usize, i: usize) -> Option<usize> {
        Graph::nth_neighbor(self, v, i)
    }
}

impl<V: AdjacencyView + ?Sized> AdjacencyView for &V {
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    fn degree(&self, v: usize) -> usize {
        (**self).degree(v)
    }

    fn nth_neighbor(&self, v: usize, i: usize) -> Option<usize> {
        (**self).nth_neighbor(v, i)
    }
}

/// A zero-allocation stand-in for [`Graph::with_self_loops`]: the borrowed
/// graph plus `loops` virtual self-loops per vertex, simulated arithmetically
/// instead of materialised into a rebuilt CSR.
///
/// Neighbour indexing follows the materialised layout exactly: indices
/// `0..deg(v)` are `v`'s real neighbours in CSR order, indices
/// `deg(v)..deg(v) + loops` are the virtual loops (all equal to `v`).
#[derive(Debug, Clone, Copy)]
pub struct LazyView<'g> {
    graph: &'g Graph,
    loops: usize,
}

impl<'g> LazyView<'g> {
    /// Views `graph` with `loops` extra self-loops per vertex.
    pub fn new(graph: &'g Graph, loops: usize) -> Self {
        LazyView { graph, loops }
    }

    /// The underlying graph.
    pub fn base(&self) -> &'g Graph {
        self.graph
    }

    /// Number of virtual self-loops added per vertex.
    pub fn loops(&self) -> usize {
        self.loops
    }
}

impl AdjacencyView for LazyView<'_> {
    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn degree(&self, v: usize) -> usize {
        self.graph.degree(v) + self.loops
    }

    fn nth_neighbor(&self, v: usize, i: usize) -> Option<usize> {
        let real = self.graph.degree(v);
        if i < real {
            self.graph.nth_neighbor(v, i)
        } else if i < real + self.loops {
            Some(v)
        } else {
            None
        }
    }
}

impl Graph {
    /// A [`LazyView`] of this graph with `count` virtual self-loops per
    /// vertex — the allocation-free replacement for
    /// [`Graph::with_self_loops`] on walk hot paths.
    pub fn lazy_view(&self, count: usize) -> LazyView<'_> {
        LazyView::new(self, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_view_indexing_matches_materialized_adjacency_exactly() {
        // Mix of plain edges, a parallel edge and a pre-existing self-loop:
        // the view must reproduce the rebuilt CSR index-for-index.
        let g = Graph::from_edges_unchecked(5, vec![(0, 1), (1, 2), (2, 2), (0, 1), (3, 4)]);
        for loops in [0usize, 1, 3] {
            let materialized = g.with_self_loops(loops);
            let view = g.lazy_view(loops);
            assert_eq!(view.num_vertices(), materialized.num_vertices());
            for v in 0..g.num_vertices() {
                assert_eq!(view.degree(v), materialized.degree(v), "degree of {v}");
                for i in 0..view.degree(v) + 1 {
                    assert_eq!(
                        view.nth_neighbor(v, i),
                        materialized.nth_neighbor(v, i),
                        "neighbour {i} of {v} with {loops} loops"
                    );
                }
            }
        }
    }

    #[test]
    fn lazy_view_makes_regular_graphs_twice_as_regular() {
        let g = Graph::from_edges_unchecked(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let view = g.lazy_view(2);
        for v in 0..4 {
            assert_eq!(view.degree(v), 4);
        }
        assert_eq!(view.loops(), 2);
        assert_eq!(view.base().num_vertices(), 4);
    }

    #[test]
    fn adjacency_view_works_through_references() {
        fn total_degree<V: AdjacencyView>(v: &V) -> usize {
            (0..v.num_vertices()).map(|u| v.degree(u)).sum()
        }
        let g = Graph::from_edges_unchecked(3, vec![(0, 1), (1, 2)]);
        assert_eq!(total_degree(&g), 4);
        assert_eq!(total_degree(&&g), 4);
        assert_eq!(total_degree(&g.lazy_view(1)), 7);
    }
}
