//! Graph generators: the random-graph families of the paper plus the
//! structured families used by the experiment harness.
//!
//! Two random families come straight from the paper:
//!
//! * [`random_out_degree_graph`] — the distribution `G(n, d)` of Section 2.3:
//!   every vertex picks `⌊d/2⌋` out-neighbours uniformly at random with
//!   replacement, then edge directions are dropped. This is the distribution
//!   the randomization step (Section 5) produces and the leader-election
//!   analysis (Section 6) consumes.
//! * [`random_regular_permutation_graph`] — the distribution `G_{n,d}` of
//!   Section 4, Eq. (1): the union of `d/2` uniformly random permutations,
//!   which is `d`-regular (with self-loops and parallel edges) and an
//!   expander with high probability (Friedman's theorem, Proposition 4.3).
//!
//! The structured families (cycles, paths, trees, grids, rings of cliques,
//! two expanders joined by a bridge, …) realise different spectral gaps and
//! are used to sweep `λ` in the experiments.

use crate::components::connected_components;
use crate::graph::{Graph, GraphBuilder};
use crate::spectral;

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The paper's random graph distribution `G(n, d)` (Section 2.3).
///
/// Every vertex picks `⌊d/2⌋` out-neighbours uniformly at random *with
/// replacement* from the whole vertex set; directions are then dropped. The
/// result has `n·⌊d/2⌋` (multi-)edges, is `(1 ± ε)d`-almost-regular for
/// `d ≥ 4 ln n / ε²` (Proposition 2.3) and is connected w.h.p. for
/// `d ≥ c·log n` (Proposition 2.4).
pub fn random_out_degree_graph<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    let half = d / 2;
    let mut builder = GraphBuilder::with_capacity(n, n * half);
    for u in 0..n {
        for _ in 0..half {
            let v = rng.gen_range(0..n);
            builder
                .add_edge(u, v)
                .expect("generator produces in-range vertices");
        }
    }
    builder.build()
}

/// The permutation-based random `d`-regular graph `G_{n,d}` of Section 4,
/// Eq. (1): the union of `d/2` uniformly random permutations of `[n]`.
///
/// Permutations are resampled until they are fixed-point free so the result
/// is *exactly* `d`-regular under this crate's "self-loops count once"
/// degree convention (the paper allows fixed points because it implicitly
/// counts a loop twice; conditioning on no fixed point changes each
/// permutation's distribution by `O(1)` total variation and preserves
/// Friedman's spectral-gap bound, Proposition 4.3).
///
/// # Panics
///
/// Panics if `d` is odd (the construction needs `d/2` whole permutations) or
/// if `n < 2`.
pub fn random_regular_permutation_graph<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!(
        d.is_multiple_of(2),
        "permutation model requires even degree, got {d}"
    );
    assert!(n >= 2, "permutation model requires at least 2 vertices");
    let mut builder = GraphBuilder::with_capacity(n, n * d / 2);
    let mut perm: Vec<usize> = (0..n).collect();
    for _ in 0..d / 2 {
        // Rejection-sample a fixed-point-free permutation (success probability
        // tends to 1/e, so this terminates after a handful of attempts).
        loop {
            perm.shuffle(rng);
            if perm.iter().enumerate().all(|(i, &pi)| i != pi) {
                break;
            }
        }
        for (i, &pi) in perm.iter().enumerate() {
            builder
                .add_edge(i, pi)
                .expect("generator produces in-range vertices");
        }
    }
    builder.build()
}

/// A `d`-regular expander on `n` vertices with normalized-Laplacian spectral
/// gap at least `min_gap`, produced by rejection sampling from
/// [`random_regular_permutation_graph`].
///
/// This mirrors step 1 of `RegularGraphConstruction` in Section 4 (sample,
/// check `λ₂ ≥ 4/5`, retry). The gap is estimated by power iteration with
/// `power_iters` iterations.
///
/// # Panics
///
/// Panics if no sample reaches `min_gap` within `max_attempts` attempts —
/// with the paper's parameters (`d = 100`, `min_gap = 4/5`) this happens with
/// probability `O(n^{-5})` per attempt, so a panic indicates a caller bug
/// (e.g. asking a 2-regular graph for a constant gap).
pub fn random_regular_expander<R: Rng + ?Sized>(
    n: usize,
    d: usize,
    min_gap: f64,
    power_iters: usize,
    max_attempts: usize,
    rng: &mut R,
) -> Graph {
    assert!(n >= 1);
    if n == 1 {
        // A single vertex with d/2 self-loops; trivially "connected".
        return Graph::from_edges_unchecked(1, (0..d / 2).map(|_| (0, 0)));
    }
    if n == 2 {
        // Two vertices joined by d parallel edges: the complete multigraph.
        return Graph::from_edges_unchecked(2, (0..d / 2).map(|_| (0, 1)));
    }
    for _ in 0..max_attempts {
        let g = random_regular_permutation_graph(n, d, rng);
        if connected_components(&g).num_components() == 1
            && spectral::spectral_gap(&g, power_iters) >= min_gap
        {
            return g;
        }
    }
    panic!(
        "failed to sample a {d}-regular expander on {n} vertices with gap >= {min_gap} \
         in {max_attempts} attempts"
    )
}

/// Erdős–Rényi graph `G(n, p)` using geometric gap-skipping so that the cost
/// is proportional to the number of edges rather than `n²`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    let mut builder = GraphBuilder::new(n);
    if p == 0.0 || n < 2 {
        return builder.build();
    }
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                builder.add_edge(u, v).unwrap();
            }
        }
        return builder.build();
    }
    // Enumerate pairs (u, v), u < v, in lexicographic order and skip ahead by
    // geometric jumps.
    let log_q = (1.0 - p).ln();
    let mut u = 0usize;
    let mut v = 0usize; // current column within row u (v > u required)
    loop {
        let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (r.ln() / log_q).floor() as usize + 1;
        v += skip;
        while u < n && v >= n {
            v = v - n + u + 2; // wrap to the next row, first valid column is u+2 there
            u += 1;
        }
        if u >= n - 1 {
            break;
        }
        builder.add_edge(u, v).unwrap();
    }
    builder.build()
}

/// Cycle on `n ≥ 3` vertices (`λ₂ = Θ(1/n²)` — the canonical "badly
/// connected" sparse graph).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle requires at least 3 vertices");
    Graph::from_edges_unchecked(n, (0..n).map(|i| (i, (i + 1) % n)))
}

/// Path on `n ≥ 2` vertices.
pub fn path(n: usize) -> Graph {
    assert!(n >= 2, "path requires at least 2 vertices");
    Graph::from_edges_unchecked(n, (0..n - 1).map(|i| (i, i + 1)))
}

/// Star with centre `0` and `n - 1` leaves — the canonical "hub" graph on
/// which naive random-walk stitching fails to produce independent walks
/// (Section 3, Step 2 discussion).
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star requires at least 2 vertices");
    Graph::from_edges_unchecked(n, (1..n).map(|i| (0, i)))
}

/// Complete graph on `n` vertices.
pub fn complete(n: usize) -> Graph {
    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            builder.add_edge(u, v).unwrap();
        }
    }
    builder.build()
}

/// Complete binary tree on `n` vertices (vertex `i` has children `2i+1`,
/// `2i+2`).
pub fn binary_tree(n: usize) -> Graph {
    let mut builder = GraphBuilder::new(n);
    for i in 1..n {
        builder.add_edge(i, (i - 1) / 2).unwrap();
    }
    builder.build()
}

/// `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let idx = |r: usize, c: usize| r * cols + c;
    let mut builder = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                builder.add_edge(idx(r, c), idx(r, c + 1)).unwrap();
            }
            if r + 1 < rows {
                builder.add_edge(idx(r, c), idx(r + 1, c)).unwrap();
            }
        }
    }
    builder.build()
}

/// A ring of `k` cliques of size `s`, consecutive cliques joined by a single
/// edge. Spectral gap shrinks as `k` grows while each clique stays perfectly
/// connected — a family interpolating between expander-like and cycle-like.
pub fn ring_of_cliques(num_cliques: usize, clique_size: usize) -> Graph {
    assert!(num_cliques >= 3 && clique_size >= 1);
    let n = num_cliques * clique_size;
    let mut builder = GraphBuilder::new(n);
    for c in 0..num_cliques {
        let base = c * clique_size;
        for i in 0..clique_size {
            for j in (i + 1)..clique_size {
                builder.add_edge(base + i, base + j).unwrap();
            }
        }
        let next_base = ((c + 1) % num_cliques) * clique_size;
        builder.add_edge(base, next_base).unwrap();
    }
    builder.build()
}

/// Two `d`-regular expanders on `n_each` vertices joined by a single bridge
/// edge. This is the instance the paper contrasts with Andoni et al. [6]
/// (Section 1.3): the diameter is small but the spectral gap is `O(1/n)`.
pub fn two_expanders_bridge<R: Rng + ?Sized>(n_each: usize, d: usize, rng: &mut R) -> Graph {
    let a = random_regular_permutation_graph(n_each, d, rng);
    let b = random_regular_permutation_graph(n_each, d, rng);
    let mut union = a.disjoint_union(&b);
    let mut edges: Vec<(usize, usize)> = union.edge_iter().collect();
    edges.push((0, n_each));
    union = Graph::from_edges_unchecked(2 * n_each, edges);
    union
}

/// Barabási–Albert-style preferential attachment with `m` edges per new
/// vertex. Produces the heavy-tailed degree distribution that motivates the
/// regularization step (a few huge-degree hubs).
pub fn preferential_attachment<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(n >= 2 && m >= 1);
    let mut builder = GraphBuilder::new(n);
    // Degree-proportional sampling via a repeated-endpoint list.
    let mut endpoints: Vec<usize> = vec![0, 1];
    builder.add_edge(0, 1).unwrap();
    for v in 2..n {
        let targets = m.min(v);
        for _ in 0..targets {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            builder.add_edge(v, t).unwrap();
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    builder.build()
}

/// Disjoint union of the given graphs, relabelling vertices consecutively.
/// Returns the union and, for each input graph, the offset of its vertex ids.
pub fn disjoint_union_of(graphs: &[Graph]) -> (Graph, Vec<usize>) {
    let total: usize = graphs.iter().map(|g| g.num_vertices()).sum();
    let mut builder = GraphBuilder::new(total);
    let mut offsets = Vec::with_capacity(graphs.len());
    let mut offset = 0usize;
    for g in graphs {
        offsets.push(offset);
        for (u, v) in g.edge_iter() {
            builder.add_edge(u + offset, v + offset).unwrap();
        }
        offset += g.num_vertices();
    }
    (builder.build(), offsets)
}

/// A union of planted `d`-regular expander components with the given sizes.
/// Each component is sampled independently; the whole graph therefore has one
/// connected component per planted size (w.h.p.), each with constant spectral
/// gap — the paper's flagship "well-connected components" instance.
pub fn planted_expander_components<R: Rng + ?Sized>(
    sizes: &[usize],
    d: usize,
    rng: &mut R,
) -> Graph {
    let parts: Vec<Graph> = sizes
        .iter()
        .map(|&s| {
            if s == 1 {
                Graph::empty(1)
            } else if s == 2 {
                Graph::from_edges_unchecked(2, vec![(0, 1)])
            } else {
                random_regular_permutation_graph(s, d, rng)
            }
        })
        .collect();
    disjoint_union_of(&parts).0
}

/// Randomly permutes vertex labels. Useful for destroying accidental locality
/// in structured generators before handing graphs to the MPC simulator (the
/// MPC model assumes an adversarial initial distribution of the input).
pub fn relabel_random<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Graph {
    let n = g.num_vertices();
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(rng);
    Graph::from_edges_unchecked(n, g.edge_iter().map(|(u, v)| (perm[u], perm[v])))
}

/// A named graph family, used by the experiment harness to sweep instance
/// types uniformly. Each family is parameterised only by the target number of
/// vertices; the actual vertex count may differ slightly (e.g. grids round to
/// a rectangle).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GraphFamily {
    /// Single `d`-regular expander (permutation model).
    Expander {
        /// Degree of the expander (must be even).
        degree: usize,
    },
    /// The paper's `G(n, d)` out-degree model.
    PaperRandom {
        /// Average degree `d` (each vertex picks `d/2` out-neighbours).
        degree: usize,
    },
    /// Union of equally sized planted expander components.
    PlantedExpanders {
        /// Number of planted components.
        num_components: usize,
        /// Degree of each component (must be even).
        degree: usize,
    },
    /// Cycle graph — spectral gap `Θ(1/n²)`.
    Cycle,
    /// Path graph — spectral gap `Θ(1/n²)`.
    Path,
    /// Complete binary tree — spectral gap `Θ(1/n)`.
    BinaryTree,
    /// Square-ish grid — spectral gap `Θ(1/n)`.
    Grid,
    /// Ring of cliques of the given size — gap `Θ(clique³/n²)` territory.
    RingOfCliques {
        /// Size of each clique.
        clique_size: usize,
    },
    /// Two expanders joined by one bridge edge — small diameter, tiny gap.
    TwoExpandersBridge {
        /// Degree of each expander half (must be even).
        degree: usize,
    },
    /// Star graph — the hub stress-test.
    Star,
    /// Preferential attachment — heavy-tailed degrees.
    PreferentialAttachment {
        /// Edges added per new vertex.
        edges_per_vertex: usize,
    },
}

impl GraphFamily {
    /// A short machine-readable name for reports.
    pub fn name(&self) -> String {
        match self {
            GraphFamily::Expander { degree } => format!("expander_d{degree}"),
            GraphFamily::PaperRandom { degree } => format!("paper_random_d{degree}"),
            GraphFamily::PlantedExpanders {
                num_components,
                degree,
            } => format!("planted_{num_components}x_d{degree}"),
            GraphFamily::Cycle => "cycle".to_string(),
            GraphFamily::Path => "path".to_string(),
            GraphFamily::BinaryTree => "binary_tree".to_string(),
            GraphFamily::Grid => "grid".to_string(),
            GraphFamily::RingOfCliques { clique_size } => {
                format!("ring_of_cliques_{clique_size}")
            }
            GraphFamily::TwoExpandersBridge { degree } => {
                format!("two_expanders_bridge_d{degree}")
            }
            GraphFamily::Star => "star".to_string(),
            GraphFamily::PreferentialAttachment { edges_per_vertex } => {
                format!("pref_attach_m{edges_per_vertex}")
            }
        }
    }

    /// Generates an instance with roughly `n` vertices.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Graph {
        match self {
            GraphFamily::Expander { degree } => {
                random_regular_permutation_graph(n.max(3), *degree, rng)
            }
            GraphFamily::PaperRandom { degree } => random_out_degree_graph(n.max(2), *degree, rng),
            GraphFamily::PlantedExpanders {
                num_components,
                degree,
            } => {
                let size = (n / num_components).max(3);
                let sizes = vec![size; *num_components];
                planted_expander_components(&sizes, *degree, rng)
            }
            GraphFamily::Cycle => cycle(n.max(3)),
            GraphFamily::Path => path(n.max(2)),
            GraphFamily::BinaryTree => binary_tree(n.max(2)),
            GraphFamily::Grid => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                grid(side, side)
            }
            GraphFamily::RingOfCliques { clique_size } => {
                let k = (n / clique_size).max(3);
                ring_of_cliques(k, *clique_size)
            }
            GraphFamily::TwoExpandersBridge { degree } => {
                two_expanders_bridge((n / 2).max(3), *degree, rng)
            }
            GraphFamily::Star => star(n.max(2)),
            GraphFamily::PreferentialAttachment { edges_per_vertex } => {
                preferential_attachment(n.max(2), *edges_per_vertex, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn paper_random_graph_has_expected_edge_count_and_connectivity() {
        let mut r = rng(1);
        let n = 400;
        let d = 4 * ((n as f64).ln().ceil() as usize); // comfortably above c log n
        let g = random_out_degree_graph(n, d, &mut r);
        assert_eq!(g.num_edges(), n * (d / 2));
        assert_eq!(connected_components(&g).num_components(), 1);
    }

    #[test]
    fn paper_random_graph_is_almost_regular_for_large_d() {
        // Proposition 2.3 with eps = 0.5: d >= 4 ln n / eps^2.
        let mut r = rng(2);
        let n = 300;
        let eps = 0.5;
        let d = ((4.0 * (n as f64).ln() / (eps * eps)).ceil() as usize).next_multiple_of(2);
        let g = random_out_degree_graph(n, d, &mut r);
        assert!(g.is_almost_regular(d as f64, eps));
    }

    #[test]
    fn permutation_graph_is_exactly_regular() {
        let mut r = rng(3);
        let g = random_regular_permutation_graph(200, 10, &mut r);
        assert!(
            g.is_regular(10),
            "degrees: {:?}",
            (0..5).map(|v| g.degree(v)).collect::<Vec<_>>()
        );
        assert_eq!(g.num_edges(), 200 * 5);
    }

    #[test]
    #[should_panic(expected = "even degree")]
    fn permutation_graph_rejects_odd_degree() {
        let mut r = rng(4);
        let _ = random_regular_permutation_graph(10, 3, &mut r);
    }

    #[test]
    fn expander_sampler_reaches_requested_gap() {
        let mut r = rng(5);
        let g = random_regular_expander(128, 10, 0.3, 200, 20, &mut r);
        assert!(g.is_regular(10));
        assert!(spectral::spectral_gap(&g, 300) >= 0.3);
    }

    #[test]
    fn erdos_renyi_edge_count_is_close_to_expectation() {
        let mut r = rng(6);
        let n = 500;
        let p = 0.02;
        let g = erdos_renyi(n, p, &mut r);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 0.25 * expected,
            "expected about {expected}, got {got}"
        );
        // No duplicate pairs and no self loops in ER.
        assert!(!g.has_self_loops());
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut r = rng(7);
        assert_eq!(erdos_renyi(50, 0.0, &mut r).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut r).num_edges(), 45);
    }

    #[test]
    fn structured_families_have_expected_shape() {
        assert!(cycle(10).is_regular(2));
        assert_eq!(path(10).num_edges(), 9);
        assert_eq!(star(10).degree(0), 9);
        assert_eq!(complete(6).num_edges(), 15);
        assert_eq!(binary_tree(7).num_edges(), 6);
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 4 * 2);
        let rc = ring_of_cliques(4, 5);
        assert_eq!(rc.num_vertices(), 20);
        assert_eq!(connected_components(&rc).num_components(), 1);
    }

    #[test]
    fn two_expanders_bridge_is_connected_with_tiny_gap() {
        let mut r = rng(8);
        let g = two_expanders_bridge(100, 8, &mut r);
        assert_eq!(g.num_vertices(), 200);
        assert_eq!(connected_components(&g).num_components(), 1);
        let gap = spectral::spectral_gap(&g, 400);
        assert!(
            gap < 0.05,
            "bridge graph should have a small gap, got {gap}"
        );
    }

    #[test]
    fn planted_components_match_sizes() {
        let mut r = rng(9);
        let g = planted_expander_components(&[50, 30, 20], 8, &mut r);
        let cc = connected_components(&g);
        assert_eq!(cc.num_components(), 3);
        let mut sizes = cc.component_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![20, 30, 50]);
    }

    #[test]
    fn preferential_attachment_has_heavy_hub() {
        let mut r = rng(10);
        let g = preferential_attachment(500, 2, &mut r);
        assert_eq!(connected_components(&g).num_components(), 1);
        assert!(
            g.max_degree() > 10,
            "expected a hub, max degree {}",
            g.max_degree()
        );
    }

    #[test]
    fn relabel_preserves_structure() {
        let mut r = rng(11);
        let g = ring_of_cliques(5, 4);
        let h = relabel_random(&g, &mut r);
        assert_eq!(g.num_vertices(), h.num_vertices());
        assert_eq!(g.num_edges(), h.num_edges());
        assert_eq!(
            connected_components(&g).num_components(),
            connected_components(&h).num_components()
        );
        let mut gd: Vec<_> = (0..g.num_vertices()).map(|v| g.degree(v)).collect();
        let mut hd: Vec<_> = (0..h.num_vertices()).map(|v| h.degree(v)).collect();
        gd.sort_unstable();
        hd.sort_unstable();
        assert_eq!(gd, hd);
    }

    #[test]
    fn families_generate_and_name() {
        let mut r = rng(12);
        let fams = [
            GraphFamily::Expander { degree: 8 },
            GraphFamily::PaperRandom { degree: 16 },
            GraphFamily::PlantedExpanders {
                num_components: 4,
                degree: 8,
            },
            GraphFamily::Cycle,
            GraphFamily::Path,
            GraphFamily::BinaryTree,
            GraphFamily::Grid,
            GraphFamily::RingOfCliques { clique_size: 5 },
            GraphFamily::TwoExpandersBridge { degree: 8 },
            GraphFamily::Star,
            GraphFamily::PreferentialAttachment {
                edges_per_vertex: 2,
            },
        ];
        for f in fams {
            let g = f.generate(120, &mut r);
            assert!(g.num_vertices() >= 2, "{} too small", f.name());
            assert!(!f.name().is_empty());
        }
    }
}
