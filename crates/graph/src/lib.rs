//! Graph substrate for the well-connected-components MPC reproduction.
//!
//! This crate provides everything the MPC algorithms of Assadi–Sun–Weinstein
//! (PODC 2019) assume about their *input*: a sparse undirected (multi)graph
//! representation, the random-graph families used throughout the paper,
//! spectral machinery (normalized-Laplacian spectral gap, lazy-random-walk
//! mixing time), and exact sequential connectivity used as ground truth by the
//! test-suite and experiment harness.
//!
//! # Quick example
//!
//! ```
//! use wcc_graph::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! // The paper's random-graph family G(n, d): every vertex picks d/2 random
//! // out-neighbours, then directions are dropped (Section 2.3).
//! let g = generators::random_out_degree_graph(500, 20, &mut rng);
//! let cc = components::connected_components(&g);
//! assert_eq!(cc.num_components(), 1);
//! let gap = spectral::spectral_gap(&g, 200);
//! assert!(gap > 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod generators;
pub mod graph;
pub mod io;
pub mod partition;
pub mod spectral;
pub mod view;

pub use crate::components::{connected_components, ComponentLabels, UnionFind};
pub use crate::graph::{Graph, GraphBuilder, GraphError};
pub use crate::io::{
    decode_edge_chunk, decode_op_chunk, pack_edge_list, pack_op_list, read_chunk_frames,
    read_edge_chunks, read_edge_chunks_file, read_edge_list, read_edge_list_file,
    read_edge_list_sized, read_op_chunk_frames, read_op_chunks, read_op_chunks_file,
    write_edge_chunks, write_edge_chunks_file, write_edge_list, write_op_chunks,
    write_op_chunks_file, ChunkWriter, EdgeOp, IoError, LoadedGraph, OpChunkWriter, OpKind,
    PackSummary,
};
pub use crate::partition::Partition;
pub use crate::view::{AdjacencyView, LazyView};

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::components::{self, connected_components, ComponentLabels, UnionFind};
    pub use crate::generators;
    pub use crate::graph::{Graph, GraphBuilder, GraphError};
    pub use crate::io::{
        decode_edge_chunk, decode_op_chunk, pack_edge_list, pack_op_list, read_chunk_frames,
        read_edge_chunks, read_edge_chunks_file, read_edge_list, read_edge_list_file,
        read_edge_list_sized, read_op_chunk_frames, read_op_chunks, read_op_chunks_file,
        write_edge_chunks, write_edge_chunks_file, write_edge_list, write_op_chunks,
        write_op_chunks_file, ChunkWriter, EdgeOp, IoError, LoadedGraph, OpChunkWriter, OpKind,
        PackSummary,
    };
    pub use crate::partition::Partition;
    pub use crate::spectral;
    pub use crate::view::{AdjacencyView, LazyView};
}
