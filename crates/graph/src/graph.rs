//! Sparse undirected multigraph representation.
//!
//! The paper works with undirected graphs that may contain parallel edges and
//! self-loops (both show up naturally: parallel edges in the permutation-based
//! regular random graphs of Section 4, self-loops when lazifying random walks
//! in Section 5.2). We therefore represent a graph as an explicit undirected
//! edge list plus a compressed-sparse-row (CSR) adjacency structure derived
//! from it.
//!
//! ## Degree convention
//!
//! A self-loop `(v, v)` contributes **one** entry to `v`'s adjacency list and
//! therefore **one** to `deg(v)`. This is exactly the convention required by
//! the lazification trick of Section 5.2: adding `Δ` self-loops to every
//! vertex of a `Δ`-regular graph yields a `2Δ`-regular graph in which a
//! uniformly random neighbour step stays put with probability `1/2`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Errors returned by graph constructors and accessors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphError {
    /// An edge endpoint was at least the declared number of vertices.
    VertexOutOfRange {
        /// The offending endpoint.
        vertex: usize,
        /// The number of vertices of the graph being built.
        num_vertices: usize,
    },
    /// An operation that requires a non-empty graph was called on an empty one.
    EmptyGraph,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected sparse multigraph with CSR adjacency.
///
/// Vertices are `0..num_vertices()`. Parallel edges and self-loops are
/// allowed and preserved; see the module documentation for the degree
/// convention of self-loops.
#[derive(Clone, Serialize, Deserialize)]
pub struct Graph {
    num_vertices: usize,
    /// Undirected edge list; each undirected edge appears exactly once,
    /// normalised so that `u <= v`.
    edges: Vec<(u32, u32)>,
    /// CSR offsets: `offsets[v]..offsets[v + 1]` indexes into `adjacency`.
    offsets: Vec<usize>,
    /// Flattened adjacency lists. A self-loop appears once in its vertex's
    /// list; every other edge appears once in each endpoint's list.
    adjacency: Vec<u32>,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("num_vertices", &self.num_vertices)
            .field("num_edges", &self.edges.len())
            .field("max_degree", &self.max_degree())
            .finish()
    }
}

impl Graph {
    /// Creates a graph with `num_vertices` vertices and no edges.
    pub fn empty(num_vertices: usize) -> Self {
        Graph {
            num_vertices,
            edges: Vec::new(),
            offsets: vec![0; num_vertices + 1],
            adjacency: Vec::new(),
        }
    }

    /// Builds a graph from an undirected edge list.
    ///
    /// Edges may be listed in either orientation; parallel edges and
    /// self-loops are kept.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= num_vertices`.
    pub fn from_edges<I>(num_vertices: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut builder = GraphBuilder::new(num_vertices);
        for (u, v) in edges {
            builder.add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// Builds a graph from an undirected edge list, panicking on bad input.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= num_vertices`. Intended for tests and
    /// internal generators where the input is known to be valid.
    pub fn from_edges_unchecked<I>(num_vertices: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        Self::from_edges(num_vertices, edges).expect("edge endpoint out of range")
    }

    /// Builds the graph of the **distinct** edges of an unsorted multiset
    /// of packed keys `(u << 32) | v` with `u <= v` (the compact data
    /// plane's layout): one histogram + scatter buckets every key into
    /// both endpoints' CSR rows, then each (cache-resident) row is sorted
    /// and deduplicated in place. That replaces the global radix sort a
    /// sort-and-dedup pipeline would pay — grouping by vertex *is* the
    /// leading sort column — and the result is bit-identical to building
    /// from the globally sorted, deduplicated edge list: within a row
    /// every neighbour `< v` comes from an earlier edge-list row, so the
    /// sorted row reproduces the append order of
    /// [`from_edges_unchecked`], and the emitted edge list (row-major,
    /// `w >= v` entries) is exactly the sorted distinct list.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= num_vertices` or a key has `u > v`.
    /// Intended for internal data planes whose keys were packed from
    /// in-range normalised edges.
    pub fn from_packed_edge_multiset(num_vertices: usize, packed: &[u64]) -> Self {
        let mut degree = vec![0usize; num_vertices];
        for &key in packed {
            let (a, b) = ((key >> 32) as usize, (key & u64::from(u32::MAX)) as usize);
            assert!(a <= b && b < num_vertices, "bad packed edge key");
            degree[a] += 1;
            if a != b {
                degree[b] += 1;
            }
        }
        let mut offsets = vec![0usize; num_vertices + 1];
        for v in 0..num_vertices {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets.clone();
        let mut rows = vec![0u32; offsets[num_vertices]];
        for &key in packed {
            let (a, b) = ((key >> 32) as usize, (key & u64::from(u32::MAX)) as usize);
            rows[cursor[a]] = b as u32;
            cursor[a] += 1;
            if a != b {
                rows[cursor[b]] = a as u32;
                cursor[b] += 1;
            }
        }
        // Sort + dedup each row, compacting into the final CSR and edge
        // list in one row-major pass.
        let mut adjacency = Vec::with_capacity(rows.len());
        let mut edges = Vec::with_capacity(packed.len());
        let mut final_offsets = vec![0usize; num_vertices + 1];
        for v in 0..num_vertices {
            let row = &mut rows[offsets[v]..offsets[v + 1]];
            row.sort_unstable();
            let mut prev = u64::MAX;
            for &w in row.iter() {
                if u64::from(w) != prev {
                    adjacency.push(w);
                    if w as usize >= v {
                        edges.push((v as u32, w));
                    }
                    prev = u64::from(w);
                }
            }
            final_offsets[v + 1] = adjacency.len();
        }
        Graph {
            num_vertices,
            edges,
            offsets: final_offsets,
            adjacency,
        }
    }

    fn rebuild_csr(num_vertices: usize, edges: &[(u32, u32)]) -> (Vec<usize>, Vec<u32>) {
        let mut degree = vec![0usize; num_vertices];
        for &(u, v) in edges {
            degree[u as usize] += 1;
            if u != v {
                degree[v as usize] += 1;
            }
        }
        let mut offsets = vec![0usize; num_vertices + 1];
        for v in 0..num_vertices {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets.clone();
        let mut adjacency = vec![0u32; offsets[num_vertices]];
        for &(u, v) in edges {
            adjacency[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            if u != v {
                adjacency[cursor[v as usize]] = u;
                cursor[v as usize] += 1;
            }
        }
        (offsets, adjacency)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of undirected edges (parallel edges counted with multiplicity,
    /// self-loops counted once).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over vertices `0..num_vertices()`.
    pub fn vertices(&self) -> std::ops::Range<usize> {
        0..self.num_vertices
    }

    /// The undirected edge list (normalised so `u <= v`).
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Iterator over edges as `(usize, usize)` pairs.
    pub fn edge_iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().map(|&(u, v)| (u as usize, v as usize))
    }

    /// Degree of `v` (self-loops count once; parallel edges with multiplicity).
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices()`.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The neighbours of `v` in a fixed (arbitrary but stable) order, with
    /// multiplicity. The *i*-th element is "the *i*-th neighbour of `v`" in
    /// the sense used by the replacement product of Section 4.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices()`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adjacency[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The `i`-th neighbour of `v` (0-indexed), if it exists.
    pub fn nth_neighbor(&self, v: usize, i: usize) -> Option<usize> {
        self.neighbors(v).get(i).map(|&u| u as usize)
    }

    /// The CSR offset array: `csr_offsets()[v]..csr_offsets()[v + 1]` indexes
    /// [`csr_adjacency`](Self::csr_adjacency) with `v`'s neighbour list. On a
    /// `d`-regular graph `csr_offsets()[v] == v * d`, which lets flat kernels
    /// address adjacency closed-form.
    pub fn csr_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The flattened adjacency array backing [`neighbors`](Self::neighbors):
    /// entry order within each vertex's slice is exactly the `neighbors`
    /// order (the one `nth_neighbor` indexes).
    pub fn csr_adjacency(&self) -> &[u32] {
        &self.adjacency
    }

    /// Maximum degree over all vertices (`0` for an empty vertex set).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree over all vertices (`0` for an empty vertex set).
    pub fn min_degree(&self) -> usize {
        (0..self.num_vertices)
            .map(|v| self.degree(v))
            .min()
            .unwrap_or(0)
    }

    /// Sum of all degrees; equals `2 * #non-loop edges + #loops`.
    pub fn degree_sum(&self) -> usize {
        self.adjacency.len()
    }

    /// Returns `true` if every vertex has degree exactly `d`.
    pub fn is_regular(&self, d: usize) -> bool {
        (0..self.num_vertices).all(|v| self.degree(v) == d)
    }

    /// Returns `true` if the graph is `[(1 - eps) * d, (1 + eps) * d]`-almost
    /// regular in the sense of Section 2 of the paper.
    pub fn is_almost_regular(&self, d: f64, eps: f64) -> bool {
        let lo = (1.0 - eps) * d;
        let hi = (1.0 + eps) * d;
        (0..self.num_vertices).all(|v| {
            let deg = self.degree(v) as f64;
            deg >= lo && deg <= hi
        })
    }

    /// Returns `true` if the graph has at least one vertex with a self-loop.
    pub fn has_self_loops(&self) -> bool {
        self.edges.iter().any(|&(u, v)| u == v)
    }

    /// Returns `true` if `u` and `v` are joined by at least one edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).iter().any(|&w| w as usize == b)
    }

    /// Number of vertices with no incident edges.
    pub fn num_isolated_vertices(&self) -> usize {
        (0..self.num_vertices)
            .filter(|&v| self.degree(v) == 0)
            .count()
    }

    /// Adds `count` self-loops to every vertex, returning a new graph.
    ///
    /// This is the lazification step of Section 5.2: applied to a
    /// `Δ`-regular graph with `count = Δ` it yields a `2Δ`-regular graph on
    /// which uniform neighbour steps simulate a lazy random walk.
    pub fn with_self_loops(&self, count: usize) -> Graph {
        let mut edges = self.edges.clone();
        edges.reserve(self.num_vertices * count);
        for v in 0..self.num_vertices as u32 {
            for _ in 0..count {
                edges.push((v, v));
            }
        }
        let (offsets, adjacency) = Self::rebuild_csr(self.num_vertices, &edges);
        Graph {
            num_vertices: self.num_vertices,
            edges,
            offsets,
            adjacency,
        }
    }

    /// Returns the subgraph induced on `vertices`, together with the mapping
    /// from new vertex ids to the original ids (`mapping[new] = old`).
    ///
    /// Vertices listed more than once are deduplicated; ordering of the
    /// returned mapping follows the first occurrence.
    pub fn induced_subgraph(&self, vertices: &[usize]) -> (Graph, Vec<usize>) {
        let mut old_to_new = vec![usize::MAX; self.num_vertices];
        let mut mapping = Vec::with_capacity(vertices.len());
        for &v in vertices {
            if old_to_new[v] == usize::MAX {
                old_to_new[v] = mapping.len();
                mapping.push(v);
            }
        }
        let mut edges = Vec::new();
        for &(u, v) in &self.edges {
            let (u, v) = (u as usize, v as usize);
            let (nu, nv) = (old_to_new[u], old_to_new[v]);
            if nu != usize::MAX && nv != usize::MAX {
                edges.push((nu, nv));
            }
        }
        (Graph::from_edges_unchecked(mapping.len(), edges), mapping)
    }

    /// Disjoint union of `self` and `other`; vertices of `other` are shifted
    /// by `self.num_vertices()`.
    pub fn disjoint_union(&self, other: &Graph) -> Graph {
        let shift = self.num_vertices;
        let edges = self
            .edge_iter()
            .chain(other.edge_iter().map(|(u, v)| (u + shift, v + shift)));
        Graph::from_edges_unchecked(self.num_vertices + other.num_vertices, edges)
    }

    /// Stationary distribution `π(v) = deg(v) / Σ deg` of the random walk.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`] if the graph has no edges.
    pub fn stationary_distribution(&self) -> Result<Vec<f64>, GraphError> {
        let total = self.degree_sum();
        if total == 0 {
            return Err(GraphError::EmptyGraph);
        }
        Ok((0..self.num_vertices)
            .map(|v| self.degree(v) as f64 / total as f64)
            .collect())
    }

    /// Total memory footprint of the edge representation in machine words,
    /// used by the MPC accounting layer (`wcc-mpc`).
    pub fn size_in_words(&self) -> usize {
        // One word per endpoint of every stored edge.
        2 * self.edges.len()
    }
}

/// Incremental builder for [`Graph`].
///
/// ```
/// use wcc_graph::{Graph, GraphBuilder};
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1).unwrap();
/// b.add_edge(1, 2).unwrap();
/// b.add_edge(2, 3).unwrap();
/// let g: Graph = b.build();
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with pre-allocated capacity for `num_edges` edges.
    pub fn with_capacity(num_vertices: usize, num_edges: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::with_capacity(num_edges),
        }
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge `{u, v}` (self-loops and parallel edges allowed).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        if u >= self.num_vertices {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                num_vertices: self.num_vertices,
            });
        }
        if v >= self.num_vertices {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                num_vertices: self.num_vertices,
            });
        }
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        self.edges.push((a as u32, b as u32));
        Ok(())
    }

    /// Adds a batch of undirected edges in one call. This is the fan-in path
    /// of the parallel walk builders: workers produce per-vertex edge lists
    /// and the calling thread appends them in vertex order.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] on the first out-of-range
    /// endpoint; edges before it have been added, edges after it have not.
    pub fn add_edges(
        &mut self,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<(), GraphError> {
        let iter = edges.into_iter();
        let (lower, _) = iter.size_hint();
        self.edges.reserve(lower);
        for (u, v) in iter {
            self.add_edge(u, v)?;
        }
        Ok(())
    }

    /// Finishes the builder and produces the CSR-backed [`Graph`].
    pub fn build(self) -> Graph {
        let (offsets, adjacency) = Graph::rebuild_csr(self.num_vertices, &self.edges);
        Graph {
            num_vertices: self.num_vertices,
            edges: self.edges,
            offsets,
            adjacency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edges_batches_match_single_adds() {
        let mut one = GraphBuilder::new(5);
        one.add_edge(0, 1).unwrap();
        one.add_edge(3, 2).unwrap();
        let mut batch = GraphBuilder::new(5);
        batch.add_edges([(0, 1), (3, 2)]).unwrap();
        assert_eq!(one.build().edges(), batch.build().edges());
        let mut bad = GraphBuilder::new(5);
        assert!(bad.add_edges([(0, 1), (9, 2)]).is_err());
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.num_isolated_vertices(), 5);
    }

    #[test]
    fn triangle_degrees() {
        let g = Graph::from_edges_unchecked(3, vec![(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.num_edges(), 3);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.is_regular(2));
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn self_loop_counts_once_in_degree() {
        let g = Graph::from_edges_unchecked(2, vec![(0, 0), (0, 1)]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 1);
        assert!(g.has_self_loops());
        assert!(g.has_edge(0, 0));
    }

    #[test]
    fn parallel_edges_preserved() {
        let g = Graph::from_edges_unchecked(2, vec![(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 3);
    }

    #[test]
    fn out_of_range_edge_is_an_error() {
        let mut b = GraphBuilder::new(3);
        let err = b.add_edge(0, 3).unwrap_err();
        assert_eq!(
            err,
            GraphError::VertexOutOfRange {
                vertex: 3,
                num_vertices: 3
            }
        );
    }

    #[test]
    fn with_self_loops_makes_regular_graph_lazier() {
        // A 4-cycle is 2-regular; adding 2 self-loops per vertex makes it 4-regular.
        let g = Graph::from_edges_unchecked(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let lazy = g.with_self_loops(2);
        assert!(lazy.is_regular(4));
        assert_eq!(lazy.num_edges(), 4 + 4 * 2);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = Graph::from_edges_unchecked(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (sub, mapping) = g.induced_subgraph(&[0, 1, 2]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(mapping, vec![0, 1, 2]);
    }

    #[test]
    fn disjoint_union_shifts_labels() {
        let a = Graph::from_edges_unchecked(2, vec![(0, 1)]);
        let b = Graph::from_edges_unchecked(3, vec![(0, 1), (1, 2)]);
        let u = a.disjoint_union(&b);
        assert_eq!(u.num_vertices(), 5);
        assert_eq!(u.num_edges(), 3);
        assert!(u.has_edge(2, 3));
        assert!(!u.has_edge(1, 2));
    }

    #[test]
    fn stationary_distribution_sums_to_one() {
        let g = Graph::from_edges_unchecked(4, vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let pi = g.stationary_distribution().unwrap();
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Vertex 0 has degree 3, total degree 10.
        assert!((pi[0] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn stationary_distribution_empty_graph_errors() {
        let g = Graph::empty(3);
        assert_eq!(
            g.stationary_distribution().unwrap_err(),
            GraphError::EmptyGraph
        );
    }

    #[test]
    fn nth_neighbor_is_stable_and_in_bounds() {
        let g = Graph::from_edges_unchecked(4, vec![(0, 1), (0, 2), (0, 3)]);
        let all: Vec<_> = (0..g.degree(0))
            .map(|i| g.nth_neighbor(0, i).unwrap())
            .collect();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3]);
        assert_eq!(g.nth_neighbor(0, 3), None);
    }
}
