//! Spectral machinery: normalized-Laplacian spectral gap, lazy-random-walk
//! distributions, mixing times, conductance.
//!
//! The paper parameterises its round complexity by `λ = λ₂(L)`, the second
//! smallest eigenvalue of the normalized Laplacian `L = I − D^{-1/2} A
//! D^{-1/2}` of each connected component (Section 2.1), and relates it to the
//! `γ`-mixing time of the lazy random walk through Proposition 2.2
//! (`T_γ = O(log(n/γ)/λ₂)`). This module computes/estimates these quantities
//! so experiments can sweep the gap and the pipeline can derive the walk
//! length `T` it needs.

use crate::components::connected_components;
use crate::graph::Graph;

use rand::Rng;

/// Estimates the spectral gap `λ₂(L)` of a *connected* graph by power
/// iteration with deflation.
///
/// The iteration runs on `M = (I + N)/2` where `N = D^{-1/2} A D^{-1/2}`;
/// `M` is positive semi-definite with top eigenvector `D^{1/2}·1`, so after
/// projecting that direction out, power iteration converges to the second
/// largest eigenvalue `μ₂(M)` and `λ₂(L) = 2·(1 − μ₂(M))`.
///
/// For a disconnected graph this returns (an estimate of) `0`; use
/// [`component_spectral_gaps`] for per-component gaps. Isolated vertices are
/// ignored. `iterations` around `100·log n` gives two to three significant
/// digits on the families used in this workspace.
pub fn spectral_gap(g: &Graph, iterations: usize) -> f64 {
    let n = g.num_vertices();
    if n <= 1 || g.num_edges() == 0 {
        return 0.0;
    }
    // Top eigenvector of M: proportional to sqrt(deg).
    let deg: Vec<f64> = (0..n).map(|v| g.degree(v) as f64).collect();
    let mut top: Vec<f64> = deg.iter().map(|d| d.sqrt()).collect();
    normalize(&mut top);

    // Start from a deterministic-but-generic vector orthogonal to `top`.
    let mut x: Vec<f64> = (0..n)
        .map(|v| {
            if deg[v] > 0.0 {
                ((v % 7) as f64) - 3.0 + 0.1
            } else {
                0.0
            }
        })
        .collect();
    orthogonalize(&mut x, &top);
    if norm(&x) < 1e-12 {
        // Fall back to an alternating vector.
        for (v, xv) in x.iter_mut().enumerate() {
            *xv = if v % 2 == 0 { 1.0 } else { -1.0 };
        }
        orthogonalize(&mut x, &top);
    }
    normalize(&mut x);

    let mut mu = 0.0f64;
    let mut y = vec![0.0f64; n];
    for _ in 0..iterations.max(1) {
        multiply_lazy_normalized(g, &deg, &x, &mut y);
        orthogonalize(&mut y, &top);
        let ny = norm(&y);
        if ny < 1e-300 {
            // x was (numerically) in the top eigenspace only: gap is maximal.
            return 1.0;
        }
        mu = dot(&x, &y); // Rayleigh quotient since ||x|| = 1.
        for (xi, yi) in x.iter_mut().zip(y.iter()) {
            *xi = yi / ny;
        }
    }
    (2.0 * (1.0 - mu)).clamp(0.0, 2.0)
}

/// Spectral gap of every connected component (indexed by component id of
/// [`connected_components`]). Singleton components report gap `0`.
pub fn component_spectral_gaps(g: &Graph, iterations: usize) -> Vec<f64> {
    let cc = connected_components(g);
    let members = cc.component_members();
    members
        .iter()
        .map(|verts| {
            if verts.len() <= 1 {
                0.0
            } else {
                let (sub, _) = g.induced_subgraph(verts);
                spectral_gap(&sub, iterations)
            }
        })
        .collect()
}

/// The minimum spectral gap over all non-singleton connected components —
/// the `λ` that Theorem 1 takes as its promise parameter. Returns `None` if
/// the graph has no non-singleton component.
pub fn min_component_spectral_gap(g: &Graph, iterations: usize) -> Option<f64> {
    let cc = connected_components(g);
    let members = cc.component_members();
    let mut min_gap: Option<f64> = None;
    for verts in &members {
        if verts.len() <= 1 {
            continue;
        }
        let (sub, _) = g.induced_subgraph(verts);
        let gap = spectral_gap(&sub, iterations);
        min_gap = Some(match min_gap {
            None => gap,
            Some(m) => m.min(gap),
        });
    }
    min_gap
}

/// Applies `y ← M x` where `M = (I + N)/2` and `N = D^{-1/2} A D^{-1/2}`.
fn multiply_lazy_normalized(g: &Graph, deg: &[f64], x: &[f64], y: &mut [f64]) {
    for yv in y.iter_mut() {
        *yv = 0.0;
    }
    for v in g.vertices() {
        if deg[v] == 0.0 {
            continue;
        }
        let xs = x[v] / deg[v].sqrt();
        for &w in g.neighbors(v) {
            let w = w as usize;
            y[w] += xs / deg[w].sqrt();
        }
    }
    for v in g.vertices() {
        y[v] = 0.5 * (x[v] + y[v]);
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

fn normalize(a: &mut [f64]) {
    let n = norm(a);
    if n > 0.0 {
        for x in a.iter_mut() {
            *x /= n;
        }
    }
}

fn orthogonalize(a: &mut [f64], unit: &[f64]) {
    let proj = dot(a, unit);
    for (x, u) in a.iter_mut().zip(unit) {
        *x -= proj * u;
    }
}

/// Total variation distance `½ Σ |p_i − q_i|` between two distributions on
/// the same support.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn total_variation_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must share a support");
    0.5 * p
        .iter()
        .zip(q.iter())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
}

/// Exact distribution of a lazy random walk of length `t` starting from
/// `start`: `t` applications of `W̄ = (I + D^{-1}A)/2` to the indicator
/// vector of `start` (Section 2.2).
pub fn lazy_walk_distribution(g: &Graph, start: usize, t: usize) -> Vec<f64> {
    let n = g.num_vertices();
    let mut p = vec![0.0f64; n];
    p[start] = 1.0;
    let mut q = vec![0.0f64; n];
    for _ in 0..t {
        for qv in q.iter_mut() {
            *qv = 0.0;
        }
        for v in 0..n {
            if p[v] == 0.0 {
                continue;
            }
            let dv = g.degree(v);
            if dv == 0 {
                q[v] += p[v];
                continue;
            }
            q[v] += 0.5 * p[v];
            let share = 0.5 * p[v] / dv as f64;
            for &w in g.neighbors(v) {
                q[w as usize] += share;
            }
        }
        std::mem::swap(&mut p, &mut q);
    }
    p
}

/// Estimates the `γ`-mixing time `T_γ(G)` of a **connected** graph by
/// simulating the exact lazy-walk distribution from `sample_starts` random
/// start vertices and doubling `t` until all sampled starts are `γ`-close to
/// stationarity in total variation distance. Returns `None` if `max_t` is
/// reached first (e.g. the graph is disconnected and can never mix).
pub fn estimate_mixing_time<R: Rng + ?Sized>(
    g: &Graph,
    gamma: f64,
    max_t: usize,
    sample_starts: usize,
    rng: &mut R,
) -> Option<usize> {
    let n = g.num_vertices();
    if n == 0 {
        return None;
    }
    let pi = g.stationary_distribution().ok()?;
    let starts: Vec<usize> = (0..sample_starts.max(1))
        .map(|_| loop {
            let v = rng.gen_range(0..n);
            if g.degree(v) > 0 {
                break v;
            }
        })
        .collect();
    // Exponential search on t, then binary refinement.
    let mixed = |t: usize| -> bool {
        starts.iter().all(|&s| {
            let p = lazy_walk_distribution(g, s, t);
            total_variation_distance(&p, &pi) <= gamma
        })
    };
    let mut hi = 1usize;
    while hi <= max_t && !mixed(hi) {
        hi *= 2;
    }
    if hi > max_t {
        return None;
    }
    let mut lo = hi / 2; // known unmixed (or 0)
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if mixed(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// The mixing-time upper bound of Proposition 2.2:
/// `T_γ(G) ≤ c · log(n/γ) / λ₂`, with explicit constant `c`.
///
/// The paper's pipeline uses this bound (rather than a measured mixing time)
/// to choose the walk length `T` from the promised gap `λ`.
pub fn mixing_time_bound(lambda2: f64, n: usize, gamma: f64, constant: f64) -> usize {
    assert!(lambda2 > 0.0, "mixing time bound requires a positive gap");
    assert!(gamma > 0.0 && gamma < 1.0, "gamma must be in (0,1)");
    let t = constant * ((n.max(2) as f64) / gamma).ln() / lambda2;
    t.ceil().max(1.0) as usize
}

/// Conductance `φ(S) = |∂S| / min(vol S, vol V∖S)` of a vertex set.
///
/// Returns `None` when either side has zero volume.
pub fn conductance(g: &Graph, set: &[usize]) -> Option<f64> {
    let n = g.num_vertices();
    let mut in_set = vec![false; n];
    for &v in set {
        in_set[v] = true;
    }
    let mut cut = 0usize;
    let mut vol_s = 0usize;
    let mut vol_rest = 0usize;
    for (v, &inside) in in_set.iter().enumerate() {
        let d = g.degree(v);
        if inside {
            vol_s += d;
        } else {
            vol_rest += d;
        }
    }
    for (u, v) in g.edge_iter() {
        if in_set[u] != in_set[v] {
            cut += 1;
        }
    }
    let denom = vol_s.min(vol_rest);
    if denom == 0 {
        None
    } else {
        Some(cut as f64 / denom as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn complete_graph_gap_is_large() {
        // λ₂ of K_n's normalized Laplacian is n/(n-1) ≈ 1.
        let g = generators::complete(20);
        let gap = spectral_gap(&g, 300);
        assert!((gap - 20.0 / 19.0).abs() < 0.02, "gap = {gap}");
    }

    #[test]
    fn cycle_gap_matches_closed_form() {
        // λ₂ of the n-cycle is 1 - cos(2π/n).
        let n = 40;
        let g = generators::cycle(n);
        let expected = 1.0 - (2.0 * std::f64::consts::PI / n as f64).cos();
        let gap = spectral_gap(&g, 4000);
        assert!(
            (gap - expected).abs() < 0.2 * expected + 1e-3,
            "gap = {gap}, expected = {expected}"
        );
    }

    #[test]
    fn expander_gap_is_constant_and_path_gap_is_tiny() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let exp = generators::random_regular_permutation_graph(256, 12, &mut rng);
        let path = generators::path(256);
        let ge = spectral_gap(&exp, 300);
        let gp = spectral_gap(&path, 300);
        assert!(ge > 0.2, "expander gap {ge}");
        assert!(gp < 0.01, "path gap {gp}");
        assert!(ge > 20.0 * gp);
    }

    #[test]
    fn disconnected_graph_gap_is_zero() {
        let g = generators::disjoint_union_of(&[generators::cycle(10), generators::cycle(10)]).0;
        let gap = spectral_gap(&g, 500);
        assert!(gap < 1e-3, "gap = {gap}");
    }

    #[test]
    fn per_component_gaps_of_planted_expanders_are_constant() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = generators::planted_expander_components(&[100, 100, 100], 12, &mut rng);
        let gaps = component_spectral_gaps(&g, 300);
        assert_eq!(gaps.len(), 3);
        for gap in &gaps {
            assert!(*gap > 0.2, "component gap {gap}");
        }
        let min = min_component_spectral_gap(&g, 300).unwrap();
        assert!(min > 0.2);
    }

    #[test]
    fn tvd_basic_properties() {
        let p = vec![0.5, 0.5, 0.0];
        let q = vec![0.0, 0.5, 0.5];
        assert!((total_variation_distance(&p, &p)).abs() < 1e-15);
        assert!((total_variation_distance(&p, &q) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn lazy_walk_distribution_is_a_distribution_and_converges() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::random_regular_permutation_graph(64, 8, &mut rng);
        let pi = g.stationary_distribution().unwrap();
        let p = lazy_walk_distribution(&g, 0, 50);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(total_variation_distance(&p, &pi) < 0.01);
    }

    #[test]
    fn lazy_walk_on_bipartite_graph_still_mixes() {
        // A plain (non-lazy) walk on an even cycle never mixes; the lazy walk does.
        let g = generators::cycle(8);
        let pi = g.stationary_distribution().unwrap();
        let p = lazy_walk_distribution(&g, 0, 200);
        assert!(total_variation_distance(&p, &pi) < 0.01);
    }

    #[test]
    fn estimated_mixing_time_orders_families_correctly() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let exp = generators::random_regular_permutation_graph(128, 10, &mut rng);
        let cyc = generators::cycle(128);
        let te = estimate_mixing_time(&exp, 0.1, 1 << 14, 3, &mut rng).unwrap();
        let tc = estimate_mixing_time(&cyc, 0.1, 1 << 14, 3, &mut rng).unwrap();
        assert!(te < tc, "expander mixes in {te}, cycle in {tc}");
    }

    #[test]
    fn mixing_time_of_disconnected_graph_is_none() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::disjoint_union_of(&[generators::cycle(8), generators::cycle(8)]).0;
        assert_eq!(estimate_mixing_time(&g, 0.1, 1 << 10, 2, &mut rng), None);
    }

    #[test]
    fn mixing_time_bound_scales_inverse_with_gap() {
        let a = mixing_time_bound(0.5, 1000, 1e-10, 1.0);
        let b = mixing_time_bound(0.05, 1000, 1e-10, 1.0);
        assert!(b >= 9 * a);
    }

    #[test]
    #[should_panic(expected = "positive gap")]
    fn mixing_time_bound_rejects_zero_gap() {
        let _ = mixing_time_bound(0.0, 10, 0.1, 1.0);
    }

    #[test]
    fn conductance_of_clique_half_is_high_and_bridge_cut_is_low() {
        let g = generators::complete(10);
        let phi = conductance(&g, &[0, 1, 2, 3, 4]).unwrap();
        assert!(phi > 0.4);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let bridge = generators::two_expanders_bridge(50, 8, &mut rng);
        let left: Vec<usize> = (0..50).collect();
        let phi_bridge = conductance(&bridge, &left).unwrap();
        assert!(phi_bridge < 0.02, "bridge conductance {phi_bridge}");
    }

    #[test]
    fn conductance_of_empty_or_full_set_is_none() {
        let g = generators::cycle(6);
        assert_eq!(conductance(&g, &[]), None);
        let all: Vec<usize> = (0..6).collect();
        assert_eq!(conductance(&g, &all), None);
    }
}
