//! Plain-text edge-list serialization.
//!
//! A tiny, dependency-free interchange format so real graphs (SNAP-style
//! edge lists, exports from other tools) can be fed to the algorithms and so
//! experiment inputs can be checked into a repository:
//!
//! * one edge per line: two whitespace-separated vertex ids;
//! * lines starting with `#` or `%` are comments;
//! * vertex ids need not be contiguous — they are remapped to `0..n` on load
//!   (the mapping is returned).

use std::io::{BufRead, BufWriter, Write};

use crate::graph::{Graph, GraphBuilder};

/// Errors returned by the edge-list reader.
#[derive(Debug)]
pub enum IoError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A line that is neither a comment nor two integers.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "could not parse edge on line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// The result of loading an edge list: the graph plus the mapping from new
/// vertex ids (`0..n`) back to the ids that appeared in the file.
#[derive(Debug, Clone)]
pub struct LoadedGraph {
    /// The loaded graph on contiguous vertex ids.
    pub graph: Graph,
    /// `original_ids[v]` is the id vertex `v` had in the input.
    pub original_ids: Vec<u64>,
}

/// Reads an edge list from any [`BufRead`] source.
///
/// # Errors
///
/// Returns [`IoError::Parse`] on a malformed line and [`IoError::Io`] on read
/// failures.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<LoadedGraph, IoError> {
    read_edge_list_sized(reader, 0)
}

/// Like [`read_edge_list`] but with a size hint (the input's length in
/// bytes, if known) used to pre-size the interner and the edge list: a data
/// line is at least ~8 bytes ("`u v\n`" with multi-digit ids), so the hint
/// bounds the allocation growth without overshooting much. A hint of `0`
/// means "unknown".
///
/// # Errors
///
/// See [`read_edge_list`].
pub fn read_edge_list_sized<R: BufRead>(
    mut reader: R,
    size_hint_bytes: u64,
) -> Result<LoadedGraph, IoError> {
    // One reusable line buffer: `BufRead::lines()` would allocate a fresh
    // `String` per line, which dominates ingestion on large edge lists.
    let approx_edges = (size_hint_bytes / 8) as usize;
    // Vertex-side structures get a much smaller hint: real edge lists have
    // far fewer distinct vertices than edges, and `original_ids` survives
    // inside the returned `LoadedGraph`, so overshooting there would pin
    // unused capacity for the graph's whole lifetime.
    let approx_vertices = approx_edges / 8;
    let mut id_map: std::collections::HashMap<u64, usize> =
        std::collections::HashMap::with_capacity(approx_vertices.min(1 << 22));
    let mut original_ids: Vec<u64> = Vec::with_capacity(approx_vertices.min(1 << 22));
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(approx_edges.min(1 << 24));
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |s: Option<&str>| -> Option<u64> { s.and_then(|x| x.parse().ok()) };
        match (parse(parts.next()), parse(parts.next())) {
            (Some(a), Some(b)) => {
                let mut intern = |raw: u64| -> usize {
                    *id_map.entry(raw).or_insert_with(|| {
                        original_ids.push(raw);
                        original_ids.len() - 1
                    })
                };
                let u = intern(a);
                let v = intern(b);
                edges.push((u, v));
            }
            _ => {
                return Err(IoError::Parse {
                    line: lineno,
                    content: trimmed.to_string(),
                })
            }
        }
    }
    let mut builder = GraphBuilder::with_capacity(original_ids.len(), edges.len());
    builder.add_edges(edges).expect("interned ids are in range");
    Ok(LoadedGraph {
        graph: builder.build(),
        original_ids,
    })
}

/// Reads an edge list from a file path, pre-sizing buffers from the file's
/// length.
///
/// # Errors
///
/// See [`read_edge_list`].
pub fn read_edge_list_file(path: &std::path::Path) -> Result<LoadedGraph, IoError> {
    let file = std::fs::File::open(path)?;
    let size = file.metadata().map(|m| m.len()).unwrap_or(0);
    read_edge_list_sized(std::io::BufReader::new(file), size)
}

/// Writes a graph as an edge list (one `u v` pair per line, with a comment
/// header).
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> std::io::Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(
        out,
        "# undirected multigraph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edge_iter() {
        writeln!(out, "{u} {v}")?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;
    use crate::generators;

    #[test]
    fn round_trip_preserves_structure() {
        let g = generators::ring_of_cliques(4, 5);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(loaded.graph.num_vertices(), g.num_vertices());
        assert_eq!(loaded.graph.num_edges(), g.num_edges());
        assert_eq!(
            connected_components(&loaded.graph).num_components(),
            connected_components(&g).num_components()
        );
    }

    #[test]
    fn comments_blank_lines_and_sparse_ids_are_handled() {
        let text = "# a comment\n\n% another comment\n10 20\n20 30\n  40\t10 \n";
        let loaded = read_edge_list(std::io::Cursor::new(text)).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 4);
        assert_eq!(loaded.graph.num_edges(), 3);
        assert_eq!(loaded.original_ids, vec![10, 20, 30, 40]);
        assert_eq!(connected_components(&loaded.graph).num_components(), 1);
    }

    #[test]
    fn sized_reader_matches_unsized_reader() {
        let g = generators::ring_of_cliques(3, 4);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let plain = read_edge_list(std::io::Cursor::new(buf.clone())).unwrap();
        let sized =
            read_edge_list_sized(std::io::Cursor::new(buf.clone()), buf.len() as u64).unwrap();
        assert_eq!(plain.original_ids, sized.original_ids);
        assert_eq!(plain.graph.num_vertices(), sized.graph.num_vertices());
        assert_eq!(plain.graph.num_edges(), sized.graph.num_edges());
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let text = "1 2\nnot an edge\n";
        let err = read_edge_list(std::io::Cursor::new(text)).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected a parse error, got {other}"),
        }
    }

    #[test]
    fn self_loops_and_duplicates_survive_round_trip() {
        let g = crate::graph::Graph::from_edges_unchecked(3, vec![(0, 0), (0, 1), (0, 1)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(loaded.graph.num_edges(), 3);
        assert!(loaded.graph.has_self_loops());
    }
}
