//! Edge-list serialization: plain text and length-prefixed binary chunks.
//!
//! Two dependency-free interchange formats:
//!
//! **Plain text** — so real graphs (SNAP-style edge lists, exports from
//! other tools) can be fed to the algorithms and experiment inputs can be
//! checked into a repository:
//!
//! * one edge per line: two whitespace-separated vertex ids;
//! * lines starting with `#` or `%` are comments;
//! * vertex ids need not be contiguous — they are remapped to `0..n` on load
//!   (the mapping is returned).
//!
//! **Binary chunks** — the streaming ingestion format: a batch schedule is a
//! sequence of edge chunks, each decodable independently (so a simulated
//! cluster can fan the decode out chunk-by-chunk — see
//! `wcc_mpc::stream::decode_edge_chunks`). Everything is little-endian:
//!
//! ```text
//! file   := magic "WCCS" | version u32 | chunk*
//! chunk  := payload_len u64 | payload          (payload_len in bytes)
//! payload:= (src u64 | dst u64)*               (payload_len / 16 edges)
//! ```
//!
//! **Version 2** makes the stream *turnstile*: every record carries a 1-byte
//! op tag ahead of the endpoints, so a chunk can mix edge insertions and
//! deletions:
//!
//! ```text
//! file   := magic "WCCS" | version=2 u32 | chunk*
//! chunk  := payload_len u64 | payload          (payload_len in bytes)
//! payload:= (op u8 | src u64 | dst u64)*       (payload_len / 17 records)
//! op     := 0 (insert) | 1 (delete)            (anything else is Corrupt)
//! ```
//!
//! The op-aware readers ([`read_op_chunk_frames`], [`decode_op_chunk`],
//! [`read_op_chunks`]) accept *both* versions — a version-1 stream decodes as
//! all-insert ops, bit for bit the same edges the version-1 reader returns —
//! while the version-1 readers ([`read_chunk_frames`] and friends) keep
//! rejecting version 2, so existing consumers cannot silently misread signed
//! streams as insert-only.
//!
//! Vertex ids are raw `u64`s (not remapped); a clean EOF is only legal at a
//! chunk boundary. Malformed input — wrong magic, a payload length that is
//! not a multiple of the record size, an op tag outside `{0, 1}`, a stream
//! that ends mid-header or mid-payload — returns an [`IoError`] instead of
//! panicking, and a corrupt header cannot trigger an over-allocation
//! (payloads are read through a bounded reader, never pre-allocated at the
//! advertised length).

use std::io::{BufRead, BufWriter, Read, Write};

use crate::graph::{Graph, GraphBuilder};

/// Magic bytes opening a binary chunk stream.
pub const CHUNK_MAGIC: [u8; 4] = *b"WCCS";

/// Version written by (and the only one accepted by) the insert-only
/// reader/writer pair.
pub const CHUNK_FORMAT_VERSION: u32 = 1;

/// The turnstile format version: every record carries a 1-byte op tag.
/// Written by the op writers; the op readers accept versions 1 and 2.
pub const CHUNK_FORMAT_VERSION_V2: u32 = 2;

/// Bytes of one encoded edge: two little-endian `u64` endpoints.
pub const CHUNK_BYTES_PER_EDGE: usize = 16;

/// Bytes of one version-2 record: op tag + two little-endian `u64` endpoints.
pub const CHUNK_BYTES_PER_OP: usize = 17;

/// Version-2 op tag for an edge insertion.
pub const OP_TAG_INSERT: u8 = 0;

/// Version-2 op tag for an edge deletion.
pub const OP_TAG_DELETE: u8 = 1;

/// The kind of a turnstile stream operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Insert one copy of the edge.
    Insert,
    /// Delete one previously inserted copy of the edge.
    Delete,
}

/// One record of a version-2 (turnstile) chunk stream: a signed edge update
/// on raw (un-remapped) vertex ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeOp {
    /// Insert or delete.
    pub kind: OpKind,
    /// First endpoint, raw id.
    pub u: u64,
    /// Second endpoint, raw id.
    pub v: u64,
}

impl EdgeOp {
    /// An insertion of edge `{u, v}`.
    pub fn insert(u: u64, v: u64) -> Self {
        EdgeOp {
            kind: OpKind::Insert,
            u,
            v,
        }
    }

    /// A deletion of edge `{u, v}`.
    pub fn delete(u: u64, v: u64) -> Self {
        EdgeOp {
            kind: OpKind::Delete,
            u,
            v,
        }
    }

    /// The wire tag of this op's kind.
    pub fn tag(&self) -> u8 {
        match self.kind {
            OpKind::Insert => OP_TAG_INSERT,
            OpKind::Delete => OP_TAG_DELETE,
        }
    }
}

/// Errors returned by the edge-list readers (text and binary).
#[derive(Debug)]
pub enum IoError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A line that is neither a comment nor two integers.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A binary chunk stream that does not start with [`CHUNK_MAGIC`].
    BadMagic,
    /// A binary chunk stream with a version this reader does not understand.
    UnsupportedVersion {
        /// The version found in the stream.
        version: u32,
    },
    /// A binary chunk stream that ended in the middle of the file header, a
    /// chunk header or a chunk payload. Chunk `0` with `expected_bytes == 8`
    /// and no chunks read yet means the *file* header itself was short.
    Truncated {
        /// 0-based index of the chunk being read.
        chunk: usize,
        /// Bytes the current header/payload required.
        expected_bytes: usize,
        /// Bytes actually available.
        got_bytes: usize,
    },
    /// A binary chunk whose header or payload is structurally invalid (e.g.
    /// a payload length that is not a multiple of [`CHUNK_BYTES_PER_EDGE`]).
    Corrupt {
        /// 0-based index of the offending chunk.
        chunk: usize,
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "could not parse edge on line {line}: {content:?}")
            }
            IoError::BadMagic => write!(f, "not a WCCS binary chunk stream (bad magic)"),
            IoError::UnsupportedVersion { version } => {
                write!(f, "unsupported chunk format version {version}")
            }
            IoError::Truncated {
                chunk,
                expected_bytes,
                got_bytes,
            } => write!(
                f,
                "chunk stream truncated in chunk {chunk}: needed {expected_bytes} bytes, \
                 got {got_bytes}"
            ),
            IoError::Corrupt { chunk, reason } => {
                write!(f, "corrupt chunk {chunk}: {reason}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// The result of loading an edge list: the graph plus the mapping from new
/// vertex ids (`0..n`) back to the ids that appeared in the file.
#[derive(Debug, Clone)]
pub struct LoadedGraph {
    /// The loaded graph on contiguous vertex ids.
    pub graph: Graph,
    /// `original_ids[v]` is the id vertex `v` had in the input.
    pub original_ids: Vec<u64>,
}

/// Reads an edge list from any [`BufRead`] source.
///
/// # Errors
///
/// Returns [`IoError::Parse`] on a malformed line and [`IoError::Io`] on read
/// failures.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<LoadedGraph, IoError> {
    read_edge_list_sized(reader, 0)
}

/// Like [`read_edge_list`] but with a size hint (the input's length in
/// bytes, if known) used to pre-size the interner and the edge list: a data
/// line is at least ~8 bytes ("`u v\n`" with multi-digit ids), so the hint
/// bounds the allocation growth without overshooting much. A hint of `0`
/// means "unknown".
///
/// # Errors
///
/// See [`read_edge_list`].
pub fn read_edge_list_sized<R: BufRead>(
    mut reader: R,
    size_hint_bytes: u64,
) -> Result<LoadedGraph, IoError> {
    // One reusable line buffer: `BufRead::lines()` would allocate a fresh
    // `String` per line, which dominates ingestion on large edge lists.
    let approx_edges = (size_hint_bytes / 8) as usize;
    // Vertex-side structures get a much smaller hint: real edge lists have
    // far fewer distinct vertices than edges, and `original_ids` survives
    // inside the returned `LoadedGraph`, so overshooting there would pin
    // unused capacity for the graph's whole lifetime.
    let approx_vertices = approx_edges / 8;
    let mut id_map: std::collections::HashMap<u64, usize> =
        std::collections::HashMap::with_capacity(approx_vertices.min(1 << 22));
    let mut original_ids: Vec<u64> = Vec::with_capacity(approx_vertices.min(1 << 22));
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(approx_edges.min(1 << 24));
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |s: Option<&str>| -> Option<u64> { s.and_then(|x| x.parse().ok()) };
        match (parse(parts.next()), parse(parts.next())) {
            (Some(a), Some(b)) => {
                let mut intern = |raw: u64| -> usize {
                    *id_map.entry(raw).or_insert_with(|| {
                        original_ids.push(raw);
                        original_ids.len() - 1
                    })
                };
                let u = intern(a);
                let v = intern(b);
                edges.push((u, v));
            }
            _ => {
                return Err(IoError::Parse {
                    line: lineno,
                    content: trimmed.to_string(),
                })
            }
        }
    }
    let mut builder = GraphBuilder::with_capacity(original_ids.len(), edges.len());
    builder.add_edges(edges).expect("interned ids are in range");
    Ok(LoadedGraph {
        graph: builder.build(),
        original_ids,
    })
}

/// Reads an edge list from a file path, pre-sizing buffers from the file's
/// length.
///
/// # Errors
///
/// See [`read_edge_list`].
pub fn read_edge_list_file(path: &std::path::Path) -> Result<LoadedGraph, IoError> {
    let file = std::fs::File::open(path)?;
    let size = file.metadata().map(|m| m.len()).unwrap_or(0);
    read_edge_list_sized(std::io::BufReader::new(file), size)
}

/// Reads into `buf` until it is full or the reader hits EOF; returns the
/// number of bytes actually read. (Unlike [`Read::read_exact`], a short read
/// reports *how much* arrived, which the chunk reader turns into a precise
/// [`IoError::Truncated`].)
fn read_up_to<R: Read>(reader: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            // Same convention as `Read::read_exact`: a spurious EINTR is not
            // the end of the stream.
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Writes a sequence of edge batches as a binary chunk stream (see the
/// module docs for the exact layout). One chunk per batch; vertex ids are
/// written raw, without remapping.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_edge_chunks<W: Write, C: AsRef<[(u64, u64)]>>(
    chunks: &[C],
    writer: W,
) -> std::io::Result<()> {
    let mut out = BufWriter::new(writer);
    out.write_all(&CHUNK_MAGIC)?;
    out.write_all(&CHUNK_FORMAT_VERSION.to_le_bytes())?;
    for chunk in chunks {
        let edges = chunk.as_ref();
        let payload_len = (edges.len() as u64) * CHUNK_BYTES_PER_EDGE as u64;
        out.write_all(&payload_len.to_le_bytes())?;
        for &(u, v) in edges {
            out.write_all(&u.to_le_bytes())?;
            out.write_all(&v.to_le_bytes())?;
        }
    }
    out.flush()
}

/// Writes a binary chunk stream to a file path.
///
/// # Errors
///
/// See [`write_edge_chunks`].
pub fn write_edge_chunks_file<C: AsRef<[(u64, u64)]>>(
    chunks: &[C],
    path: &std::path::Path,
) -> std::io::Result<()> {
    write_edge_chunks(chunks, std::fs::File::create(path)?)
}

/// Incremental writer for the binary chunk stream: the file header goes out
/// at construction and each [`ChunkWriter::write_chunk`] call appends one
/// chunk, so a producer can emit an arbitrarily long schedule without ever
/// materialising it — the streaming `wcc pack` holds one batch of edges at a
/// time regardless of input size. Byte-for-byte identical output to
/// [`write_edge_chunks`] fed the same batches.
#[derive(Debug)]
pub struct ChunkWriter<W: Write> {
    out: BufWriter<W>,
    chunks_written: usize,
    edges_written: u64,
}

impl<W: Write> ChunkWriter<W> {
    /// Starts a chunk stream: writes the magic + version header.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn new(writer: W) -> std::io::Result<Self> {
        let mut out = BufWriter::new(writer);
        out.write_all(&CHUNK_MAGIC)?;
        out.write_all(&CHUNK_FORMAT_VERSION.to_le_bytes())?;
        Ok(ChunkWriter {
            out,
            chunks_written: 0,
            edges_written: 0,
        })
    }

    /// Appends one chunk (one batch of raw-id edges, written verbatim).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn write_chunk(&mut self, edges: &[(u64, u64)]) -> std::io::Result<()> {
        let payload_len = (edges.len() as u64) * CHUNK_BYTES_PER_EDGE as u64;
        self.out.write_all(&payload_len.to_le_bytes())?;
        for &(u, v) in edges {
            self.out.write_all(&u.to_le_bytes())?;
            self.out.write_all(&v.to_le_bytes())?;
        }
        self.chunks_written += 1;
        self.edges_written += edges.len() as u64;
        Ok(())
    }

    /// Chunks appended so far.
    pub fn chunks_written(&self) -> usize {
        self.chunks_written
    }

    /// Edges appended so far.
    pub fn edges_written(&self) -> u64 {
        self.edges_written
    }

    /// Flushes and returns `(chunks, edges)` written.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the final flush.
    pub fn finish(mut self) -> std::io::Result<(usize, u64)> {
        self.out.flush()?;
        Ok((self.chunks_written, self.edges_written))
    }
}

/// What a streaming [`pack_edge_list`] run produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackSummary {
    /// Chunks written (one per `batch_size` edges, last one possibly short).
    pub chunks: usize,
    /// Edges written across all chunks.
    pub edges: u64,
}

/// Streams a text edge list into the binary chunk format with bounded
/// memory: lines are parsed through one reusable buffer, raw ids pass
/// through verbatim (no interning, no graph build), and at most one
/// `batch_size` batch of edges is resident at a time — packing a 10⁸-edge
/// input holds a few megabytes, not the edge list. The output is
/// byte-identical to materialising the whole edge list and calling
/// [`write_edge_chunks`] on its `batch_size`-sized chunks.
///
/// # Errors
///
/// [`IoError::Parse`] (with the 1-based line number) on a malformed line,
/// [`IoError::Io`] on read/write failures.
///
/// # Panics
///
/// Panics if `batch_size` is zero.
pub fn pack_edge_list<R: BufRead, W: Write>(
    mut reader: R,
    writer: W,
    batch_size: usize,
) -> Result<PackSummary, IoError> {
    assert!(batch_size > 0, "batch_size must be at least 1");
    let mut out = ChunkWriter::new(writer)?;
    let mut batch: Vec<(u64, u64)> = Vec::with_capacity(batch_size.min(1 << 20));
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |s: Option<&str>| -> Option<u64> { s.and_then(|x| x.parse().ok()) };
        match (parse(parts.next()), parse(parts.next())) {
            (Some(a), Some(b)) => {
                batch.push((a, b));
                if batch.len() == batch_size {
                    out.write_chunk(&batch)?;
                    batch.clear();
                }
            }
            _ => {
                return Err(IoError::Parse {
                    line: lineno,
                    content: trimmed.to_string(),
                })
            }
        }
    }
    if !batch.is_empty() {
        out.write_chunk(&batch)?;
    }
    let (chunks, edges) = out.finish()?;
    Ok(PackSummary { chunks, edges })
}

/// Reads the *framing* of a binary chunk stream: validates the file header
/// and splits the stream into per-chunk payload byte buffers without decoding
/// any edges. This is the sequential part of ingestion; the payloads are
/// independently decodable with [`decode_edge_chunk`], which is what the
/// executor-driven fan-out in `wcc_mpc::stream` parallelises over.
///
/// # Errors
///
/// [`IoError::BadMagic`] / [`IoError::UnsupportedVersion`] for a bad file
/// header, [`IoError::Truncated`] when the stream ends mid-header or
/// mid-payload, [`IoError::Corrupt`] for a payload length that is not a whole
/// number of edges, and [`IoError::Io`] for underlying read failures.
pub fn read_chunk_frames<R: Read>(reader: R) -> Result<Vec<Vec<u8>>, IoError> {
    read_frames_impl(reader, &[CHUNK_FORMAT_VERSION]).map(|(_, frames)| frames)
}

/// Record size (in bytes) of each accepted format version.
fn record_bytes_for(version: u32) -> usize {
    match version {
        CHUNK_FORMAT_VERSION => CHUNK_BYTES_PER_EDGE,
        CHUNK_FORMAT_VERSION_V2 => CHUNK_BYTES_PER_OP,
        other => unreachable!("version {other} filtered by the accept list"),
    }
}

/// The shared framing reader: validates the header against `accepted`
/// versions and splits the stream into payload buffers, checking each
/// advertised length against the version's record size.
fn read_frames_impl<R: Read>(
    mut reader: R,
    accepted: &[u32],
) -> Result<(u32, Vec<Vec<u8>>), IoError> {
    let mut header = [0u8; 8];
    let got = read_up_to(&mut reader, &mut header)?;
    if got < header.len() {
        return Err(IoError::Truncated {
            chunk: 0,
            expected_bytes: header.len(),
            got_bytes: got,
        });
    }
    if header[..4] != CHUNK_MAGIC {
        return Err(IoError::BadMagic);
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if !accepted.contains(&version) {
        return Err(IoError::UnsupportedVersion { version });
    }
    let record_bytes = record_bytes_for(version);

    let mut frames: Vec<Vec<u8>> = Vec::new();
    loop {
        let mut len_buf = [0u8; 8];
        let got = read_up_to(&mut reader, &mut len_buf)?;
        if got == 0 {
            break; // clean EOF at a chunk boundary
        }
        if got < len_buf.len() {
            return Err(IoError::Truncated {
                chunk: frames.len(),
                expected_bytes: len_buf.len(),
                got_bytes: got,
            });
        }
        let payload_len = u64::from_le_bytes(len_buf);
        if !payload_len.is_multiple_of(record_bytes as u64) {
            return Err(IoError::Corrupt {
                chunk: frames.len(),
                reason: format!("payload length {payload_len} is not a multiple of {record_bytes}"),
            });
        }
        // Read through a bounded reader instead of pre-allocating
        // `payload_len` bytes: a corrupt header advertising an absurd length
        // then fails with `Truncated` rather than an allocation blow-up.
        let mut payload = Vec::with_capacity((payload_len as usize).min(1 << 20));
        let read = (&mut reader).take(payload_len).read_to_end(&mut payload)?;
        if (read as u64) < payload_len {
            return Err(IoError::Truncated {
                chunk: frames.len(),
                expected_bytes: payload_len as usize,
                got_bytes: read,
            });
        }
        frames.push(payload);
    }
    Ok((version, frames))
}

/// Reads the framing of a turnstile (or legacy insert-only) chunk stream:
/// accepts format versions 1 and 2, returning the version alongside the
/// per-chunk payload buffers so callers can hand each `(version, payload)`
/// pair to [`decode_op_chunk`] — in parallel if they like.
///
/// # Errors
///
/// Same classes as [`read_chunk_frames`]; the multiple-of check uses the
/// version's record size ([`CHUNK_BYTES_PER_EDGE`] for version 1,
/// [`CHUNK_BYTES_PER_OP`] for version 2).
pub fn read_op_chunk_frames<R: Read>(reader: R) -> Result<(u32, Vec<Vec<u8>>), IoError> {
    read_frames_impl(reader, &[CHUNK_FORMAT_VERSION, CHUNK_FORMAT_VERSION_V2])
}

/// Decodes one chunk payload (as framed by [`read_chunk_frames`]) into its
/// edge list. Pure function of the bytes — safe to fan out over chunks in
/// parallel. `chunk` is the chunk's index, used only for error reporting.
///
/// # Errors
///
/// Returns [`IoError::Corrupt`] if the payload is not a whole number of
/// 16-byte edges.
pub fn decode_edge_chunk(chunk: usize, payload: &[u8]) -> Result<Vec<(u64, u64)>, IoError> {
    if !payload.len().is_multiple_of(CHUNK_BYTES_PER_EDGE) {
        return Err(IoError::Corrupt {
            chunk,
            reason: format!(
                "payload of {} bytes is not a multiple of {CHUNK_BYTES_PER_EDGE}",
                payload.len()
            ),
        });
    }
    let mut edges = Vec::with_capacity(payload.len() / CHUNK_BYTES_PER_EDGE);
    for pair in payload.chunks_exact(CHUNK_BYTES_PER_EDGE) {
        let u = u64::from_le_bytes(pair[0..8].try_into().expect("8 bytes"));
        let v = u64::from_le_bytes(pair[8..16].try_into().expect("8 bytes"));
        edges.push((u, v));
    }
    Ok(edges)
}

/// Reads a whole binary chunk stream sequentially: [`read_chunk_frames`]
/// followed by [`decode_edge_chunk`] on every frame, in order. (The parallel
/// variant lives in `wcc_mpc::stream`, which fans the decode out through an
/// `Executor`.)
///
/// # Errors
///
/// See [`read_chunk_frames`] and [`decode_edge_chunk`].
pub fn read_edge_chunks<R: Read>(reader: R) -> Result<Vec<Vec<(u64, u64)>>, IoError> {
    read_chunk_frames(reader)?
        .iter()
        .enumerate()
        .map(|(i, frame)| decode_edge_chunk(i, frame))
        .collect()
}

/// Reads a binary chunk stream from a file path.
///
/// # Errors
///
/// See [`read_edge_chunks`].
pub fn read_edge_chunks_file(path: &std::path::Path) -> Result<Vec<Vec<(u64, u64)>>, IoError> {
    read_edge_chunks(std::io::BufReader::new(std::fs::File::open(path)?))
}

/// Decodes one chunk payload (as framed by [`read_op_chunk_frames`]) into its
/// op list. Pure function of `(version, bytes)` — safe to fan out over chunks
/// in parallel. A version-1 payload decodes to all-insert ops carrying
/// exactly the edges [`decode_edge_chunk`] would return; a version-2 payload
/// is 17-byte records whose op tag must be [`OP_TAG_INSERT`] or
/// [`OP_TAG_DELETE`]. `chunk` is the chunk's index, used only for error
/// reporting.
///
/// # Errors
///
/// [`IoError::Corrupt`] if the payload is not a whole number of records, the
/// version is not 1 or 2, or a record carries an unknown op tag.
pub fn decode_op_chunk(version: u32, chunk: usize, payload: &[u8]) -> Result<Vec<EdgeOp>, IoError> {
    match version {
        CHUNK_FORMAT_VERSION => Ok(decode_edge_chunk(chunk, payload)?
            .into_iter()
            .map(|(u, v)| EdgeOp::insert(u, v))
            .collect()),
        CHUNK_FORMAT_VERSION_V2 => {
            if !payload.len().is_multiple_of(CHUNK_BYTES_PER_OP) {
                return Err(IoError::Corrupt {
                    chunk,
                    reason: format!(
                        "payload of {} bytes is not a multiple of {CHUNK_BYTES_PER_OP}",
                        payload.len()
                    ),
                });
            }
            let mut ops = Vec::with_capacity(payload.len() / CHUNK_BYTES_PER_OP);
            for (record, bytes) in payload.chunks_exact(CHUNK_BYTES_PER_OP).enumerate() {
                let kind = match bytes[0] {
                    OP_TAG_INSERT => OpKind::Insert,
                    OP_TAG_DELETE => OpKind::Delete,
                    tag => {
                        return Err(IoError::Corrupt {
                            chunk,
                            reason: format!("unknown op tag {tag} in record {record}"),
                        })
                    }
                };
                let u = u64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes"));
                let v = u64::from_le_bytes(bytes[9..17].try_into().expect("8 bytes"));
                ops.push(EdgeOp { kind, u, v });
            }
            Ok(ops)
        }
        other => Err(IoError::Corrupt {
            chunk,
            reason: format!("cannot decode ops for format version {other}"),
        }),
    }
}

/// Writes a sequence of op batches as a version-2 binary chunk stream. One
/// chunk per batch; vertex ids are written raw.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_op_chunks<W: Write, C: AsRef<[EdgeOp]>>(
    chunks: &[C],
    writer: W,
) -> std::io::Result<()> {
    let mut out = OpChunkWriter::new(writer)?;
    for chunk in chunks {
        out.write_chunk(chunk.as_ref())?;
    }
    out.finish().map(|_| ())
}

/// Writes a version-2 binary chunk stream to a file path.
///
/// # Errors
///
/// See [`write_op_chunks`].
pub fn write_op_chunks_file<C: AsRef<[EdgeOp]>>(
    chunks: &[C],
    path: &std::path::Path,
) -> std::io::Result<()> {
    write_op_chunks(chunks, std::fs::File::create(path)?)
}

/// Incremental writer for the version-2 (turnstile) chunk stream — the op
/// counterpart of [`ChunkWriter`], with the same bounded-memory contract:
/// byte-for-byte identical output to [`write_op_chunks`] fed the same
/// batches.
#[derive(Debug)]
pub struct OpChunkWriter<W: Write> {
    out: BufWriter<W>,
    chunks_written: usize,
    ops_written: u64,
}

impl<W: Write> OpChunkWriter<W> {
    /// Starts a version-2 chunk stream: writes the magic + version header.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn new(writer: W) -> std::io::Result<Self> {
        let mut out = BufWriter::new(writer);
        out.write_all(&CHUNK_MAGIC)?;
        out.write_all(&CHUNK_FORMAT_VERSION_V2.to_le_bytes())?;
        Ok(OpChunkWriter {
            out,
            chunks_written: 0,
            ops_written: 0,
        })
    }

    /// Appends one chunk (one batch of raw-id ops, written verbatim).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn write_chunk(&mut self, ops: &[EdgeOp]) -> std::io::Result<()> {
        let payload_len = (ops.len() as u64) * CHUNK_BYTES_PER_OP as u64;
        self.out.write_all(&payload_len.to_le_bytes())?;
        for op in ops {
            self.out.write_all(&[op.tag()])?;
            self.out.write_all(&op.u.to_le_bytes())?;
            self.out.write_all(&op.v.to_le_bytes())?;
        }
        self.chunks_written += 1;
        self.ops_written += ops.len() as u64;
        Ok(())
    }

    /// Chunks appended so far.
    pub fn chunks_written(&self) -> usize {
        self.chunks_written
    }

    /// Ops appended so far.
    pub fn ops_written(&self) -> u64 {
        self.ops_written
    }

    /// Flushes and returns `(chunks, ops)` written.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the final flush.
    pub fn finish(mut self) -> std::io::Result<(usize, u64)> {
        self.out.flush()?;
        Ok((self.chunks_written, self.ops_written))
    }
}

/// Streams a text op list into the version-2 chunk format with bounded
/// memory — the turnstile counterpart of [`pack_edge_list`]. Line grammar:
///
/// * `u v` or `+ u v` — insert edge `{u, v}`;
/// * `- u v` — delete edge `{u, v}`;
/// * `#`/`%` comments and blank lines are skipped.
///
/// # Errors
///
/// [`IoError::Parse`] (with the 1-based line number) on a malformed line,
/// [`IoError::Io`] on read/write failures.
///
/// # Panics
///
/// Panics if `batch_size` is zero.
pub fn pack_op_list<R: BufRead, W: Write>(
    mut reader: R,
    writer: W,
    batch_size: usize,
) -> Result<PackSummary, IoError> {
    assert!(batch_size > 0, "batch_size must be at least 1");
    let mut out = OpChunkWriter::new(writer)?;
    let mut batch: Vec<EdgeOp> = Vec::with_capacity(batch_size.min(1 << 20));
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace().peekable();
        let kind = match parts.peek() {
            Some(&"+") => {
                parts.next();
                OpKind::Insert
            }
            Some(&"-") => {
                parts.next();
                OpKind::Delete
            }
            _ => OpKind::Insert,
        };
        let parse = |s: Option<&str>| -> Option<u64> { s.and_then(|x| x.parse().ok()) };
        match (parse(parts.next()), parse(parts.next())) {
            (Some(u), Some(v)) => {
                batch.push(EdgeOp { kind, u, v });
                if batch.len() == batch_size {
                    out.write_chunk(&batch)?;
                    batch.clear();
                }
            }
            _ => {
                return Err(IoError::Parse {
                    line: lineno,
                    content: trimmed.to_string(),
                })
            }
        }
    }
    if !batch.is_empty() {
        out.write_chunk(&batch)?;
    }
    let (chunks, ops) = out.finish()?;
    Ok(PackSummary { chunks, edges: ops })
}

/// Reads a whole turnstile chunk stream sequentially: [`read_op_chunk_frames`]
/// followed by [`decode_op_chunk`] on every frame, in order. Accepts format
/// versions 1 (decoded as all-insert ops) and 2. (The parallel variant lives
/// in `wcc_mpc::stream`.)
///
/// # Errors
///
/// See [`read_op_chunk_frames`] and [`decode_op_chunk`].
pub fn read_op_chunks<R: Read>(reader: R) -> Result<Vec<Vec<EdgeOp>>, IoError> {
    let (version, frames) = read_op_chunk_frames(reader)?;
    frames
        .iter()
        .enumerate()
        .map(|(i, frame)| decode_op_chunk(version, i, frame))
        .collect()
}

/// Reads a turnstile chunk stream from a file path.
///
/// # Errors
///
/// See [`read_op_chunks`].
pub fn read_op_chunks_file(path: &std::path::Path) -> Result<Vec<Vec<EdgeOp>>, IoError> {
    read_op_chunks(std::io::BufReader::new(std::fs::File::open(path)?))
}

/// Writes a graph as an edge list (one `u v` pair per line, with a comment
/// header).
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> std::io::Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(
        out,
        "# undirected multigraph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edge_iter() {
        writeln!(out, "{u} {v}")?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;
    use crate::generators;

    #[test]
    fn round_trip_preserves_structure() {
        let g = generators::ring_of_cliques(4, 5);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(loaded.graph.num_vertices(), g.num_vertices());
        assert_eq!(loaded.graph.num_edges(), g.num_edges());
        assert_eq!(
            connected_components(&loaded.graph).num_components(),
            connected_components(&g).num_components()
        );
    }

    #[test]
    fn comments_blank_lines_and_sparse_ids_are_handled() {
        let text = "# a comment\n\n% another comment\n10 20\n20 30\n  40\t10 \n";
        let loaded = read_edge_list(std::io::Cursor::new(text)).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 4);
        assert_eq!(loaded.graph.num_edges(), 3);
        assert_eq!(loaded.original_ids, vec![10, 20, 30, 40]);
        assert_eq!(connected_components(&loaded.graph).num_components(), 1);
    }

    #[test]
    fn sized_reader_matches_unsized_reader() {
        let g = generators::ring_of_cliques(3, 4);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let plain = read_edge_list(std::io::Cursor::new(buf.clone())).unwrap();
        let sized =
            read_edge_list_sized(std::io::Cursor::new(buf.clone()), buf.len() as u64).unwrap();
        assert_eq!(plain.original_ids, sized.original_ids);
        assert_eq!(plain.graph.num_vertices(), sized.graph.num_vertices());
        assert_eq!(plain.graph.num_edges(), sized.graph.num_edges());
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let text = "1 2\nnot an edge\n";
        let err = read_edge_list(std::io::Cursor::new(text)).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected a parse error, got {other}"),
        }
    }

    #[test]
    fn self_loops_and_duplicates_survive_round_trip() {
        let g = crate::graph::Graph::from_edges_unchecked(3, vec![(0, 0), (0, 1), (0, 1)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(loaded.graph.num_edges(), 3);
        assert!(loaded.graph.has_self_loops());
    }

    // --- read_edge_list error paths -------------------------------------

    #[test]
    fn empty_input_yields_the_empty_graph() {
        let loaded = read_edge_list(std::io::Cursor::new("")).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 0);
        assert_eq!(loaded.graph.num_edges(), 0);
        assert!(loaded.original_ids.is_empty());
        // Comment-only input is just as empty.
        let loaded = read_edge_list(std::io::Cursor::new("# nothing\n% here\n\n")).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 0);
    }

    #[test]
    fn single_token_lines_are_parse_errors() {
        let err = read_edge_list(std::io::Cursor::new("1 2\n3\n")).unwrap_err();
        match err {
            IoError::Parse { line, content } => {
                assert_eq!(line, 2);
                assert_eq!(content, "3");
            }
            other => panic!("expected a parse error, got {other}"),
        }
    }

    #[test]
    fn overflowing_vertex_ids_are_parse_errors_not_panics() {
        // u64::MAX is 18446744073709551615; one more must fail cleanly.
        let text = "18446744073709551616 1\n";
        let err = read_edge_list(std::io::Cursor::new(text)).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }), "got {err}");
        // u64::MAX itself is accepted and remapped.
        let ok = read_edge_list(std::io::Cursor::new("18446744073709551615 0\n")).unwrap();
        assert_eq!(ok.original_ids, vec![u64::MAX, 0]);
    }

    #[test]
    fn negative_and_non_numeric_ids_are_parse_errors() {
        for bad in ["-1 2\n", "1 -2\n", "a b\n", "1.5 2\n", "0x10 3\n"] {
            let err = read_edge_list(std::io::Cursor::new(bad)).unwrap_err();
            assert!(
                matches!(err, IoError::Parse { line: 1, .. }),
                "input {bad:?} gave {err}"
            );
        }
    }

    #[test]
    fn underlying_read_failures_surface_as_io_errors() {
        struct FailingReader;
        impl std::io::Read for FailingReader {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        let err = read_edge_list(std::io::BufReader::new(FailingReader)).unwrap_err();
        assert!(matches!(err, IoError::Io(_)), "got {err}");
    }

    // --- binary chunk format --------------------------------------------

    #[test]
    fn chunk_round_trip_preserves_batches_exactly() {
        let chunks: Vec<Vec<(u64, u64)>> = vec![
            vec![(0, 1), (1, 2), (2, 0)],
            vec![],
            vec![(u64::MAX, 0), (7, 7)],
        ];
        let mut buf = Vec::new();
        write_edge_chunks(&chunks, &mut buf).unwrap();
        assert_eq!(buf.len(), 8 + 3 * 8 + 5 * CHUNK_BYTES_PER_EDGE);
        let back = read_edge_chunks(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, chunks);
    }

    #[test]
    fn empty_chunk_stream_round_trips() {
        let chunks: Vec<Vec<(u64, u64)>> = Vec::new();
        let mut buf = Vec::new();
        write_edge_chunks(&chunks, &mut buf).unwrap();
        assert_eq!(buf.len(), 8); // header only
        assert!(read_edge_chunks(std::io::Cursor::new(buf))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let err =
            read_edge_chunks(std::io::Cursor::new(b"NOPE\x01\x00\x00\x00".to_vec())).unwrap_err();
        assert!(matches!(err, IoError::BadMagic), "got {err}");

        let mut versioned = CHUNK_MAGIC.to_vec();
        versioned.extend_from_slice(&99u32.to_le_bytes());
        let err = read_edge_chunks(std::io::Cursor::new(versioned)).unwrap_err();
        assert!(
            matches!(err, IoError::UnsupportedVersion { version: 99 }),
            "got {err}"
        );
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        let chunks: Vec<Vec<(u64, u64)>> = vec![vec![(1, 2), (3, 4)], vec![(5, 6)]];
        let mut buf = Vec::new();
        write_edge_chunks(&chunks, &mut buf).unwrap();
        // Every proper prefix that is not a chunk boundary must error; the
        // boundaries themselves (header end, after chunk 0, after chunk 1)
        // are clean EOFs.
        let boundaries = [8, 8 + 8 + 32, buf.len()];
        for cut in 0..buf.len() {
            let result = read_edge_chunks(std::io::Cursor::new(buf[..cut].to_vec()));
            if boundaries.contains(&cut) {
                assert!(result.is_ok(), "cut at {cut} should be a clean boundary");
            } else {
                assert!(
                    matches!(result, Err(IoError::Truncated { .. })),
                    "cut at {cut} should be Truncated"
                );
            }
        }
    }

    #[test]
    fn non_edge_aligned_payload_length_is_corrupt() {
        let mut buf = CHUNK_MAGIC.to_vec();
        buf.extend_from_slice(&CHUNK_FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&15u64.to_le_bytes()); // not a multiple of 16
        buf.extend_from_slice(&[0u8; 15]);
        let err = read_edge_chunks(std::io::Cursor::new(buf)).unwrap_err();
        assert!(
            matches!(err, IoError::Corrupt { chunk: 0, .. }),
            "got {err}"
        );
    }

    #[test]
    fn absurd_advertised_length_fails_without_allocating_it() {
        let mut buf = CHUNK_MAGIC.to_vec();
        buf.extend_from_slice(&CHUNK_FORMAT_VERSION.to_le_bytes());
        // Advertise ~2^60 bytes (a multiple of 16), supply none.
        buf.extend_from_slice(&(1u64 << 60).to_le_bytes());
        let err = read_edge_chunks(std::io::Cursor::new(buf)).unwrap_err();
        assert!(
            matches!(
                err,
                IoError::Truncated {
                    chunk: 0,
                    got_bytes: 0,
                    ..
                }
            ),
            "got {err}"
        );
    }

    #[test]
    fn decode_edge_chunk_matches_the_framed_reader() {
        let chunks = vec![vec![(10u64, 20u64), (30, 40)]];
        let mut buf = Vec::new();
        write_edge_chunks(&chunks, &mut buf).unwrap();
        let frames = read_chunk_frames(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(decode_edge_chunk(0, &frames[0]).unwrap(), chunks[0]);
        // A mis-sized payload handed straight to the decoder also errors.
        assert!(matches!(
            decode_edge_chunk(3, &frames[0][..15]),
            Err(IoError::Corrupt { chunk: 3, .. })
        ));
    }

    #[test]
    fn chunk_writer_matches_the_batch_writer_byte_for_byte() {
        let chunks: Vec<Vec<(u64, u64)>> = vec![
            vec![(0, 1), (1, 2), (2, 0)],
            vec![],
            vec![(u64::MAX, 0), (7, 7)],
        ];
        let mut batched = Vec::new();
        write_edge_chunks(&chunks, &mut batched).unwrap();
        let mut streamed = Vec::new();
        let mut writer = ChunkWriter::new(&mut streamed).unwrap();
        for chunk in &chunks {
            writer.write_chunk(chunk).unwrap();
        }
        assert_eq!(writer.finish().unwrap(), (3, 5));
        assert_eq!(streamed, batched);
    }

    #[test]
    fn streaming_pack_matches_materialise_then_chunk() {
        // A text edge list with comments, sparse raw ids and a ragged tail.
        let text = "# header\n5 6\n6 7\n% mid comment\n7 5\n100 5\n\n5 100\n42 42\n9 100\n";
        let batch_size = 3;

        // Reference: materialise every edge (raw ids, file order), chunk.
        let mut raw = Vec::new();
        for line in text.lines() {
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
                continue;
            }
            let mut it = t.split_whitespace();
            let u: u64 = it.next().unwrap().parse().unwrap();
            let v: u64 = it.next().unwrap().parse().unwrap();
            raw.push((u, v));
        }
        let reference_chunks: Vec<&[(u64, u64)]> = raw.chunks(batch_size).collect();
        let mut reference = Vec::new();
        write_edge_chunks(&reference_chunks, &mut reference).unwrap();

        let mut streamed = Vec::new();
        let summary =
            pack_edge_list(std::io::Cursor::new(text), &mut streamed, batch_size).unwrap();
        assert_eq!(streamed, reference);
        assert_eq!(
            summary,
            PackSummary {
                chunks: 3,
                edges: 7
            }
        );

        // The packed stream decodes back to the same edge multiset, order
        // preserved.
        let decoded: Vec<(u64, u64)> = read_edge_chunks(std::io::Cursor::new(streamed))
            .unwrap()
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(decoded, raw);
    }

    #[test]
    fn streaming_pack_reports_parse_errors_with_line_numbers() {
        let mut out = Vec::new();
        let err = pack_edge_list(std::io::Cursor::new("1 2\nbroken\n"), &mut out, 4).unwrap_err();
        match err {
            IoError::Parse { line, content } => {
                assert_eq!(line, 2);
                assert_eq!(content, "broken");
            }
            other => panic!("expected a parse error, got {other}"),
        }
    }

    #[test]
    fn streaming_pack_of_empty_input_writes_a_header_only_stream() {
        let mut out = Vec::new();
        let summary =
            pack_edge_list(std::io::Cursor::new("# only comments\n"), &mut out, 4).unwrap();
        assert_eq!(
            summary,
            PackSummary {
                chunks: 0,
                edges: 0
            }
        );
        assert!(read_edge_chunks(std::io::Cursor::new(out))
            .unwrap()
            .is_empty());
    }

    // --- version-2 (turnstile) chunk format ------------------------------

    #[test]
    fn op_chunk_round_trip_preserves_batches_exactly() {
        let chunks: Vec<Vec<EdgeOp>> = vec![
            vec![EdgeOp::insert(0, 1), EdgeOp::delete(1, 2)],
            vec![],
            vec![
                EdgeOp::insert(u64::MAX, 0),
                EdgeOp::delete(7, 7),
                EdgeOp::insert(7, 7),
            ],
        ];
        let mut buf = Vec::new();
        write_op_chunks(&chunks, &mut buf).unwrap();
        assert_eq!(buf.len(), 8 + 3 * 8 + 5 * CHUNK_BYTES_PER_OP);
        let back = read_op_chunks(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, chunks);
    }

    #[test]
    fn v1_streams_decode_through_the_op_reader_as_inserts() {
        let chunks: Vec<Vec<(u64, u64)>> = vec![vec![(1, 2), (3, 4)], vec![], vec![(5, 6)]];
        let mut buf = Vec::new();
        write_edge_chunks(&chunks, &mut buf).unwrap();
        let (version, frames) = read_op_chunk_frames(std::io::Cursor::new(buf.clone())).unwrap();
        assert_eq!(version, CHUNK_FORMAT_VERSION);
        let legacy_frames = read_chunk_frames(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(frames, legacy_frames, "framing must be byte-identical");
        for (i, frame) in frames.iter().enumerate() {
            let ops = decode_op_chunk(version, i, frame).unwrap();
            let edges: Vec<(u64, u64)> = ops
                .iter()
                .map(|op| {
                    assert_eq!(op.kind, OpKind::Insert);
                    (op.u, op.v)
                })
                .collect();
            assert_eq!(edges, chunks[i]);
        }
    }

    #[test]
    fn v1_readers_keep_rejecting_v2_streams() {
        let mut buf = Vec::new();
        write_op_chunks(&[vec![EdgeOp::insert(1, 2)]], &mut buf).unwrap();
        let err = read_edge_chunks(std::io::Cursor::new(buf)).unwrap_err();
        assert!(
            matches!(err, IoError::UnsupportedVersion { version: 2 }),
            "got {err}"
        );
    }

    #[test]
    fn unknown_op_tags_are_corrupt() {
        let chunks = vec![vec![EdgeOp::insert(1, 2), EdgeOp::delete(3, 4)]];
        let mut buf = Vec::new();
        write_op_chunks(&chunks, &mut buf).unwrap();
        // Corrupt the second record's tag: header(8) + chunk len(8) + one record.
        let tag_offset = 8 + 8 + CHUNK_BYTES_PER_OP;
        buf[tag_offset] = 2;
        let err = read_op_chunks(std::io::Cursor::new(buf)).unwrap_err();
        match err {
            IoError::Corrupt { chunk, reason } => {
                assert_eq!(chunk, 0);
                assert!(reason.contains("op tag 2"), "reason: {reason}");
                assert!(reason.contains("record 1"), "reason: {reason}");
            }
            other => panic!("expected Corrupt, got {other}"),
        }
    }

    #[test]
    fn v2_payload_lengths_are_checked_against_the_op_record_size() {
        let mut buf = CHUNK_MAGIC.to_vec();
        buf.extend_from_slice(&CHUNK_FORMAT_VERSION_V2.to_le_bytes());
        buf.extend_from_slice(&16u64.to_le_bytes()); // multiple of 16, not 17
        buf.extend_from_slice(&[0u8; 16]);
        let err = read_op_chunks(std::io::Cursor::new(buf)).unwrap_err();
        assert!(
            matches!(err, IoError::Corrupt { chunk: 0, .. }),
            "got {err}"
        );
    }

    #[test]
    fn op_chunk_writer_matches_the_batch_writer_byte_for_byte() {
        let chunks: Vec<Vec<EdgeOp>> = vec![
            vec![EdgeOp::insert(0, 1)],
            vec![],
            vec![EdgeOp::delete(0, 1), EdgeOp::insert(9, 9)],
        ];
        let mut batched = Vec::new();
        write_op_chunks(&chunks, &mut batched).unwrap();
        let mut streamed = Vec::new();
        let mut writer = OpChunkWriter::new(&mut streamed).unwrap();
        for chunk in &chunks {
            writer.write_chunk(chunk).unwrap();
        }
        assert_eq!(writer.finish().unwrap(), (3, 3));
        assert_eq!(streamed, batched);
    }

    #[test]
    fn pack_op_list_grammar_and_batching() {
        let text = "# ops\n5 6\n+ 6 7\n- 5 6\n% comment\n7 8\n- 6 7\n";
        let mut buf = Vec::new();
        let summary = pack_op_list(std::io::Cursor::new(text), &mut buf, 2).unwrap();
        assert_eq!(
            summary,
            PackSummary {
                chunks: 3,
                edges: 5
            }
        );
        let back = read_op_chunks(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(
            back,
            vec![
                vec![EdgeOp::insert(5, 6), EdgeOp::insert(6, 7)],
                vec![EdgeOp::delete(5, 6), EdgeOp::insert(7, 8)],
                vec![EdgeOp::delete(6, 7)],
            ]
        );
    }

    #[test]
    fn pack_op_list_rejects_malformed_lines() {
        for bad in ["- 1\n", "+ a b\n", "-1 2 extra-is-ok\n"] {
            let mut out = Vec::new();
            let res = pack_op_list(std::io::Cursor::new(bad), &mut out, 4);
            if bad.starts_with("-1") {
                // "-1" is not the `-` token, and not a u64: parse error too.
                assert!(matches!(res, Err(IoError::Parse { line: 1, .. })));
            } else {
                assert!(
                    matches!(res, Err(IoError::Parse { line: 1, .. })),
                    "input {bad:?} gave {res:?}"
                );
            }
        }
    }

    #[test]
    fn op_file_round_trip() {
        let dir = std::env::temp_dir().join(format!("wcc_io_ops_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ops.wccs");
        let chunks: Vec<Vec<EdgeOp>> = vec![vec![EdgeOp::insert(1, 2)], vec![EdgeOp::delete(1, 2)]];
        write_op_chunks_file(&chunks, &path).unwrap();
        assert_eq!(read_op_chunks_file(&path).unwrap(), chunks);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_round_trip_for_chunks() {
        let dir = std::env::temp_dir().join(format!("wcc_io_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("batches.wccs");
        let chunks: Vec<Vec<(u64, u64)>> = vec![vec![(1, 2)], vec![(3, 4), (5, 6)]];
        write_edge_chunks_file(&chunks, &path).unwrap();
        let back = read_edge_chunks_file(&path).unwrap();
        assert_eq!(back, chunks);
        std::fs::remove_dir_all(&dir).ok();
    }
}
