//! Vertex partitions ("component-partitions" in the paper's terminology).
//!
//! The leader-election algorithm of Section 6 maintains a partition
//! `C_i = {C_{i,1}, …, C_{i,k}}` of the vertex set that is repeatedly
//! *coarsened*: each phase groups the parts of `C_i` (via the contraction
//! graph) and merges every group into a single part of `C_{i+1}`. This module
//! provides that data structure together with the invariant checks used by
//! tests (is it a partition? is it a refinement of the true components? are
//! part sizes within the bounds of the Equipartition Lemma 6.4?).

use crate::components::ComponentLabels;

use serde::{Deserialize, Serialize};

/// A partition of the vertex set `{0, …, n-1}` into `num_parts` parts,
/// numbered `0..num_parts`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    part_of: Vec<usize>,
    num_parts: usize,
}

impl Partition {
    /// The partition of `{0, …, n-1}` into singletons, with part `v = {v}`.
    pub fn singletons(n: usize) -> Self {
        Partition {
            part_of: (0..n).collect(),
            num_parts: n,
        }
    }

    /// Builds a partition from a map `part_of[v] = part index`.
    ///
    /// Part indices must form a contiguous range `0..num_parts`.
    ///
    /// # Panics
    ///
    /// Panics if some part index `>= num_parts` appears, or if some part in
    /// `0..num_parts` is empty.
    pub fn from_part_of(part_of: Vec<usize>, num_parts: usize) -> Self {
        let mut seen = vec![false; num_parts];
        for &p in &part_of {
            assert!(p < num_parts, "part index {p} out of range {num_parts}");
            seen[p] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "every part index in 0..num_parts must be non-empty"
        );
        Partition { part_of, num_parts }
    }

    /// Builds a partition from arbitrary (possibly sparse) raw labels,
    /// canonicalising part indices in order of first appearance.
    pub fn from_raw_labels(raw: &[usize]) -> Self {
        let labels = ComponentLabels::from_raw_labels(raw);
        Partition {
            num_parts: labels.num_components(),
            part_of: labels.labels().to_vec(),
        }
    }

    /// Number of elements (vertices) partitioned.
    pub fn len(&self) -> usize {
        self.part_of.len()
    }

    /// Returns `true` if the ground set is empty.
    pub fn is_empty(&self) -> bool {
        self.part_of.is_empty()
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// The part containing vertex `v`.
    pub fn part_of(&self, v: usize) -> usize {
        self.part_of[v]
    }

    /// The full part-of vector.
    pub fn part_of_slice(&self) -> &[usize] {
        &self.part_of
    }

    /// Sizes of each part, indexed by part id.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_parts];
        for &p in &self.part_of {
            sizes[p] += 1;
        }
        sizes
    }

    /// The members of each part, indexed by part id.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut members = vec![Vec::new(); self.num_parts];
        for (v, &p) in self.part_of.iter().enumerate() {
            members[p].push(v);
        }
        members
    }

    /// Largest part size (`0` when the ground set is empty).
    pub fn max_part_size(&self) -> usize {
        self.part_sizes().into_iter().max().unwrap_or(0)
    }

    /// Smallest part size (`0` when the ground set is empty).
    pub fn min_part_size(&self) -> usize {
        self.part_sizes().into_iter().min().unwrap_or(0)
    }

    /// Coarsens the partition: `group_of_part[p]` assigns every current part
    /// `p` to a group; parts in the same group are merged. Group indices may
    /// be sparse — they are canonicalised.
    ///
    /// # Panics
    ///
    /// Panics if `group_of_part.len() != self.num_parts()`.
    pub fn coarsen(&self, group_of_part: &[usize]) -> Partition {
        assert_eq!(
            group_of_part.len(),
            self.num_parts,
            "coarsen requires one group per existing part"
        );
        let canon = ComponentLabels::from_raw_labels(group_of_part);
        let part_of = self
            .part_of
            .iter()
            .map(|&p| canon.label(p))
            .collect::<Vec<_>>();
        Partition {
            part_of,
            num_parts: canon.num_components(),
        }
    }

    /// Converts to [`ComponentLabels`] (the two types are isomorphic; this is
    /// the interface the rest of the workspace consumes).
    pub fn to_component_labels(&self) -> ComponentLabels {
        ComponentLabels::from_raw_labels(&self.part_of)
    }

    /// Returns `true` if every part is contained in a single component of
    /// `truth` — i.e. the partition never merges vertices from different true
    /// components. This is the safety invariant of every leader-election
    /// phase (Lemma 6.7(I)).
    pub fn respects(&self, truth: &ComponentLabels) -> bool {
        self.to_component_labels().is_refinement_of(truth)
    }

    /// Returns `true` if the partition equals the true component partition.
    pub fn equals_components(&self, truth: &ComponentLabels) -> bool {
        self.to_component_labels().same_partition(truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_have_one_vertex_each() {
        let p = Partition::singletons(4);
        assert_eq!(p.num_parts(), 4);
        assert_eq!(p.part_sizes(), vec![1, 1, 1, 1]);
        assert_eq!(p.max_part_size(), 1);
    }

    #[test]
    fn coarsen_merges_parts() {
        let p = Partition::singletons(5);
        // Merge parts {0,1} and {2,3,4}.
        let q = p.coarsen(&[10, 10, 20, 20, 20]);
        assert_eq!(q.num_parts(), 2);
        assert_eq!(q.part_of(0), q.part_of(1));
        assert_eq!(q.part_of(2), q.part_of(4));
        assert_ne!(q.part_of(0), q.part_of(2));
        assert_eq!(q.part_sizes(), vec![2, 3]);
    }

    #[test]
    fn coarsen_twice_composes() {
        let p = Partition::singletons(6);
        let q = p.coarsen(&[0, 0, 1, 1, 2, 2]);
        let r = q.coarsen(&[0, 0, 1]);
        assert_eq!(r.num_parts(), 2);
        assert_eq!(r.part_sizes(), vec![4, 2]);
    }

    #[test]
    #[should_panic(expected = "one group per existing part")]
    fn coarsen_with_wrong_length_panics() {
        let p = Partition::singletons(3);
        let _ = p.coarsen(&[0, 0]);
    }

    #[test]
    fn respects_true_components() {
        let truth = ComponentLabels::from_raw_labels(&[0, 0, 0, 1, 1]);
        let fine = Partition::from_raw_labels(&[0, 0, 1, 2, 2]);
        assert!(fine.respects(&truth));
        assert!(!fine.equals_components(&truth));
        let exact = Partition::from_raw_labels(&[5, 5, 5, 9, 9]);
        assert!(exact.equals_components(&truth));
        let bad = Partition::from_raw_labels(&[0, 0, 1, 1, 1]);
        assert!(!bad.respects(&truth));
    }

    #[test]
    fn from_part_of_validates_contiguity() {
        let p = Partition::from_part_of(vec![0, 1, 1, 0], 2);
        assert_eq!(p.num_parts(), 2);
        assert_eq!(p.members(), vec![vec![0, 3], vec![1, 2]]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn from_part_of_rejects_empty_parts() {
        let _ = Partition::from_part_of(vec![0, 0, 2, 2], 3);
    }
}
