//! Exact (sequential) connectivity: union–find, BFS components, spanning
//! forests.
//!
//! These are the ground-truth oracles every MPC algorithm in this workspace is
//! tested against, and also the "single machine" baseline used by the
//! experiment harness.

use crate::graph::Graph;

use serde::{Deserialize, Serialize};

/// A disjoint-set (union–find) structure with path compression and union by
/// size.
///
/// ```
/// use wcc_graph::UnionFind;
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.same_set(0, 1));
/// assert!(!uf.same_set(1, 2));
/// assert_eq!(uf.num_sets(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets `{0}, {1}, …, {n-1}`.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Appends a new element as its own singleton set, returning its index.
    ///
    /// This is what lets long-lived structures (the streaming ingestion
    /// engine) admit vertices that arrive after construction.
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        self.size.push(1);
        self.num_sets += 1;
        id
    }

    /// Representative of the set containing `x`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `x` and `y`; returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, x: usize, y: usize) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        let (big, small) = if self.size[rx] >= self.size[ry] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        self.num_sets -= 1;
        true
    }

    /// Returns `true` if `x` and `y` are in the same set.
    pub fn same_set(&mut self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }

    /// Number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }

    /// Converts into canonical component labels (labels are `0..k` in order of
    /// first appearance).
    pub fn into_labels(mut self) -> ComponentLabels {
        let n = self.parent.len();
        let mut canonical = vec![usize::MAX; n];
        let mut labels = vec![0usize; n];
        let mut next = 0usize;
        for (v, label) in labels.iter_mut().enumerate() {
            let r = self.find(v);
            if canonical[r] == usize::MAX {
                canonical[r] = next;
                next += 1;
            }
            *label = canonical[r];
        }
        ComponentLabels {
            labels,
            num_components: next,
        }
    }
}

/// Connected-component labels: `labels[v]` is the component index of vertex
/// `v`, with components numbered `0..num_components` in order of first
/// appearance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentLabels {
    labels: Vec<usize>,
    num_components: usize,
}

impl ComponentLabels {
    /// Builds labels from an arbitrary labelling (canonicalising label values).
    pub fn from_raw_labels(raw: &[usize]) -> Self {
        let mut map = std::collections::HashMap::new();
        let mut labels = Vec::with_capacity(raw.len());
        for &r in raw {
            let next = map.len();
            let id = *map.entry(r).or_insert(next);
            labels.push(id);
        }
        ComponentLabels {
            labels,
            num_components: map.len(),
        }
    }

    /// Number of vertices labelled.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if no vertices are labelled.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of distinct components.
    pub fn num_components(&self) -> usize {
        self.num_components
    }

    /// Component index of vertex `v`.
    pub fn label(&self, v: usize) -> usize {
        self.labels[v]
    }

    /// The full label vector.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Returns `true` if `u` and `v` are in the same component.
    pub fn same_component(&self, u: usize, v: usize) -> bool {
        self.labels[u] == self.labels[v]
    }

    /// Sizes of the components, indexed by component id.
    pub fn component_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_components];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// The vertex sets of each component, indexed by component id.
    pub fn component_members(&self) -> Vec<Vec<usize>> {
        let mut members = vec![Vec::new(); self.num_components];
        for (v, &l) in self.labels.iter().enumerate() {
            members[l].push(v);
        }
        members
    }

    /// Size of the largest component (`0` if there are no vertices).
    pub fn largest_component_size(&self) -> usize {
        self.component_sizes().into_iter().max().unwrap_or(0)
    }

    /// Returns `true` if `self` and `other` describe the *same partition* of
    /// the vertex set (label values are allowed to differ).
    pub fn same_partition(&self, other: &ComponentLabels) -> bool {
        if self.labels.len() != other.labels.len() || self.num_components != other.num_components {
            return false;
        }
        let mut fwd = vec![usize::MAX; self.num_components];
        for (a, b) in self.labels.iter().zip(other.labels.iter()) {
            if fwd[*a] == usize::MAX {
                fwd[*a] = *b;
            } else if fwd[*a] != *b {
                return false;
            }
        }
        true
    }

    /// Returns `true` if every part of `self` is contained in a single part of
    /// `other` (i.e. `self` refines `other`).
    pub fn is_refinement_of(&self, other: &ComponentLabels) -> bool {
        if self.labels.len() != other.labels.len() {
            return false;
        }
        let mut rep = vec![usize::MAX; self.num_components];
        for (v, &a) in self.labels.iter().enumerate() {
            let b = other.labels[v];
            if rep[a] == usize::MAX {
                rep[a] = b;
            } else if rep[a] != b {
                return false;
            }
        }
        true
    }
}

/// Computes the connected components of `g` by breadth-first search.
///
/// Runs in `O(n + m)` time; the result is the ground truth used by all tests.
pub fn connected_components(g: &Graph) -> ComponentLabels {
    let n = g.num_vertices();
    let mut labels = vec![usize::MAX; n];
    let mut num_components = 0usize;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if labels[start] != usize::MAX {
            continue;
        }
        labels[start] = num_components;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                let w = w as usize;
                if labels[w] == usize::MAX {
                    labels[w] = num_components;
                    queue.push_back(w);
                }
            }
        }
        num_components += 1;
    }
    ComponentLabels {
        labels,
        num_components,
    }
}

/// Computes connected components via union–find over the edge list.
///
/// Same output as [`connected_components`]; kept as an independent oracle for
/// cross-checking in tests.
pub fn connected_components_union_find(g: &Graph) -> ComponentLabels {
    let mut uf = UnionFind::new(g.num_vertices());
    for (u, v) in g.edge_iter() {
        uf.union(u, v);
    }
    uf.into_labels()
}

/// A spanning forest: one BFS tree edge list per connected component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanningForest {
    /// Tree edges, as pairs of original vertex ids.
    pub edges: Vec<(usize, usize)>,
    /// The component labelling the forest spans.
    pub components: ComponentLabels,
}

/// Computes a BFS spanning forest of `g`.
pub fn spanning_forest(g: &Graph) -> SpanningForest {
    let n = g.num_vertices();
    let mut labels = vec![usize::MAX; n];
    let mut edges = Vec::new();
    let mut num_components = 0usize;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if labels[start] != usize::MAX {
            continue;
        }
        labels[start] = num_components;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                let w = w as usize;
                if labels[w] == usize::MAX {
                    labels[w] = num_components;
                    edges.push((v, w));
                    queue.push_back(w);
                }
            }
        }
        num_components += 1;
    }
    SpanningForest {
        edges,
        components: ComponentLabels {
            labels,
            num_components,
        },
    }
}

/// Checks that `forest_edges` is a spanning forest of `g`: every edge exists
/// in `g`, the edges are acyclic, and they connect exactly the connected
/// components of `g`.
pub fn verify_spanning_forest(g: &Graph, forest_edges: &[(usize, usize)]) -> bool {
    let truth = connected_components(g);
    let mut uf = UnionFind::new(g.num_vertices());
    for &(u, v) in forest_edges {
        if u >= g.num_vertices() || v >= g.num_vertices() || !g.has_edge(u, v) {
            return false;
        }
        if !uf.union(u, v) {
            // Cycle among forest edges.
            return false;
        }
    }
    uf.into_labels().same_partition(&truth)
}

/// Diameter of a connected graph computed by repeated BFS (exact, `O(n·m)`).
///
/// Returns `None` if the graph is disconnected or empty. Intended for the
/// small contracted graphs appearing at the end of the pipeline (Claim 6.13),
/// not for the raw input.
pub fn exact_diameter(g: &Graph) -> Option<usize> {
    let n = g.num_vertices();
    if n == 0 {
        return None;
    }
    let mut overall = 0usize;
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        dist.iter_mut().for_each(|d| *d = usize::MAX);
        dist[start] = 0;
        queue.clear();
        queue.push_back(start);
        let mut reached = 1usize;
        let mut far = 0usize;
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                let w = w as usize;
                if dist[w] == usize::MAX {
                    dist[w] = dist[v] + 1;
                    far = far.max(dist[w]);
                    reached += 1;
                    queue.push_back(w);
                }
            }
        }
        if reached != n {
            return None;
        }
        overall = overall.max(far);
    }
    Some(overall)
}

/// Single-source BFS distances (`usize::MAX` for unreachable vertices).
pub fn bfs_distances(g: &Graph, source: usize) -> Vec<usize> {
    let n = g.num_vertices();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        for &w in g.neighbors(v) {
            let w = w as usize;
            if dist[w] == usize::MAX {
                dist[w] = dist[v] + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn two_triangles() -> Graph {
        Graph::from_edges_unchecked(6, vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
    }

    #[test]
    fn union_find_basic_merging() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(1, 2));
        assert_eq!(uf.num_sets(), 3);
        assert_eq!(uf.set_size(2), 3);
        assert!(uf.same_set(0, 2));
        assert!(!uf.same_set(0, 4));
    }

    #[test]
    fn push_grows_the_universe_with_singletons() {
        let mut uf = UnionFind::new(2);
        uf.union(0, 1);
        let v = uf.push();
        assert_eq!(v, 2);
        assert_eq!(uf.len(), 3);
        assert_eq!(uf.num_sets(), 2);
        assert!(!uf.same_set(0, 2));
        uf.union(1, 2);
        assert_eq!(uf.num_sets(), 1);
        assert_eq!(uf.set_size(2), 3);
    }

    #[test]
    fn bfs_and_union_find_agree() {
        let g = two_triangles();
        let a = connected_components(&g);
        let b = connected_components_union_find(&g);
        assert!(a.same_partition(&b));
        assert_eq!(a.num_components(), 2);
        assert_eq!(a.component_sizes(), vec![3, 3]);
    }

    #[test]
    fn isolated_vertices_are_their_own_components() {
        let g = Graph::from_edges_unchecked(4, vec![(0, 1)]);
        let cc = connected_components(&g);
        assert_eq!(cc.num_components(), 3);
        assert!(cc.same_component(0, 1));
        assert!(!cc.same_component(2, 3));
    }

    #[test]
    fn same_partition_ignores_label_values() {
        let a = ComponentLabels::from_raw_labels(&[7, 7, 9, 9]);
        let b = ComponentLabels::from_raw_labels(&[1, 1, 0, 0]);
        assert!(a.same_partition(&b));
        let c = ComponentLabels::from_raw_labels(&[1, 0, 0, 1]);
        assert!(!a.same_partition(&c));
    }

    #[test]
    fn refinement_detection() {
        let fine = ComponentLabels::from_raw_labels(&[0, 0, 1, 2]);
        let coarse = ComponentLabels::from_raw_labels(&[0, 0, 0, 1]);
        assert!(fine.is_refinement_of(&coarse));
        assert!(!coarse.is_refinement_of(&fine));
        assert!(fine.is_refinement_of(&fine));
    }

    #[test]
    fn spanning_forest_is_valid() {
        let g = two_triangles();
        let f = spanning_forest(&g);
        assert_eq!(f.edges.len(), 4); // (3 - 1) per triangle
        assert!(verify_spanning_forest(&g, &f.edges));
    }

    #[test]
    fn verify_spanning_forest_rejects_cycles_and_foreign_edges() {
        let g = two_triangles();
        // A cycle.
        assert!(!verify_spanning_forest(
            &g,
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)]
        ));
        // An edge not in the graph.
        assert!(!verify_spanning_forest(
            &g,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]
        ));
        // Incomplete (does not span).
        assert!(!verify_spanning_forest(&g, &[(0, 1), (3, 4)]));
    }

    #[test]
    fn diameter_of_path_and_cycle() {
        let path = Graph::from_edges_unchecked(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(exact_diameter(&path), Some(4));
        let cycle = Graph::from_edges_unchecked(6, (0..6).map(|i| (i, (i + 1) % 6)));
        assert_eq!(exact_diameter(&cycle), Some(3));
        let disconnected = Graph::from_edges_unchecked(4, vec![(0, 1), (2, 3)]);
        assert_eq!(exact_diameter(&disconnected), None);
    }

    #[test]
    fn bfs_distances_on_path() {
        let path = Graph::from_edges_unchecked(4, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs_distances(&path, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn largest_component_size() {
        let g = Graph::from_edges_unchecked(5, vec![(0, 1), (1, 2)]);
        let cc = connected_components(&g);
        assert_eq!(cc.largest_component_size(), 3);
    }
}
