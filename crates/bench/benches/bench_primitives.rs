//! Criterion benchmarks of the substrates: random walks, spectral-gap
//! estimation, the AGM connectivity sketch, and the MPC sort primitive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wcc_core::walks::{direct_walk_targets, layered_walk_bundle};
use wcc_graph::prelude::*;
use wcc_mpc::{primitives::distributed_sort, Cluster, MpcConfig, MpcContext};
use wcc_sketch::ConnectivitySketch;

fn bench_walks(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_walks");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let g = generators::random_regular_permutation_graph(2000, 8, &mut rng);
    group.bench_function("direct_walks_t64", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            direct_walk_targets(&g, 64, &mut rng)
        })
    });
    let small = generators::random_regular_permutation_graph(300, 8, &mut rng);
    group.bench_function("layered_bundle_t16", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            layered_walk_bundle(&small, 16, 2, &mut rng)
        })
    });
    group.finish();
}

fn bench_spectral(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectral_gap");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    for &n in &[1000usize, 4000] {
        let g = generators::random_regular_permutation_graph(n, 8, &mut rng);
        group.bench_with_input(BenchmarkId::new("power_iteration_200", n), &g, |b, g| {
            b.iter(|| spectral::spectral_gap(g, 200))
        });
    }
    group.finish();
}

fn bench_sketch(c: &mut Criterion) {
    let mut group = c.benchmark_group("agm_sketch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let g = generators::erdos_renyi(400, 0.02, &mut rng);
    group.bench_function("build_and_decode_n400", |b| {
        b.iter(|| {
            let mut sk = ConnectivitySketch::new(g.num_vertices(), 9);
            for (u, v) in g.edge_iter() {
                sk.add_edge(u, v);
            }
            sk.components()
        })
    });
    group.finish();
}

fn bench_mpc_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc_primitives");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &n in &[50_000usize, 200_000] {
        let config = MpcConfig::for_input_size(2 * n, 0.5).permissive();
        let tuples: Vec<(u64, u64)> = (0..n as u64)
            .map(|i| ((i * 2654435761) % n as u64, i))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("distributed_sort", n),
            &tuples,
            |b, tuples| {
                b.iter(|| {
                    let mut ctx = MpcContext::new(config);
                    let cluster = Cluster::from_tuples(&config, tuples.clone());
                    distributed_sort(&cluster, &mut ctx, |t| t.0).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_walks,
    bench_spectral,
    bench_sketch,
    bench_mpc_sort
);
criterion_main!(benches);
