//! Sequential vs Threaded executor on the pipeline hot path.
//!
//! The quantity tracked release over release is the wall-clock cost of
//! `well_connected_components` (whose runtime is dominated by the per-vertex
//! random-walk fan-out of Step 2) under each backend, on a quickstart-scale
//! planted-expander graph. The outputs are bit-identical by construction
//! (see `tests/executor_determinism.rs`), so any difference is pure
//! execution-backend overhead or speedup. A snapshot of these numbers lives
//! in `BENCH_executor.json` at the workspace root, together with the
//! hardware they were taken on — speedup at `threads > 1` requires the host
//! to actually have that many cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wcc_core::prelude::*;
use wcc_graph::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn quickstart_graph(n: usize) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    generators::planted_expander_components(&[n / 2, n / 2], 8, &mut rng)
}

fn bench_pipeline_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor_pipeline");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(5));
    for &n in &[1024usize, 4096] {
        let g = quickstart_graph(n);
        for &threads in &THREAD_COUNTS {
            let params = Params::laptop_scale().with_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("wcc_pipeline_t{threads}"), n),
                &g,
                |b, g| b.iter(|| well_connected_components(g, 0.3, &params, 7).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_walk_fanout_backends(c: &mut Criterion) {
    // The isolated hot path: Step 2's independent lazy walks on a regular
    // graph, which is where nearly all pipeline wall-clock goes.
    use wcc_core::walks::{independent_lazy_walks, WalkKernel, WalkMode};
    use wcc_mpc::{MpcConfig, MpcContext};

    let mut group = c.benchmark_group("executor_walk_fanout");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(5));
    let n = 8192;
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let g = generators::random_regular_permutation_graph(n, 8, &mut rng);
    for &threads in &THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("independent_lazy_walks", format!("t{threads}/n{n}")),
            &g,
            |b, g| {
                b.iter(|| {
                    let config = MpcConfig::for_input_size(4 * g.num_edges(), 0.5)
                        .permissive()
                        .with_threads(threads);
                    let mut ctx = MpcContext::new(config);
                    let mut rng = ChaCha8Rng::seed_from_u64(3);
                    independent_lazy_walks(
                        g,
                        64,
                        4,
                        WalkMode::Direct,
                        WalkKernel::V3,
                        2,
                        &mut ctx,
                        &mut rng,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_dispatch_overhead(c: &mut Criterion) {
    // Pure dispatch latency: tiny fan-outs where the work per index is a
    // few nanoseconds, so the measurement is dominated by what it costs to
    // get work onto the workers and results back. `pool_*` rows go through
    // the persistent pool (production path); `scoped_*` rows go through the
    // retired one-`thread::scope`-spawn-per-range backend, kept as
    // `map_*_scoped_reference` precisely for this comparison. The gap
    // between the two is what the pool saves on *every* superstep of a
    // pipeline run, and unlike the e2e rows it is visible even on a 1-core
    // host (spawn cost is overhead, not lost parallelism).
    use wcc_mpc::Executor;

    let mut group = c.benchmark_group("executor_dispatch_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(5));
    for &threads in &[2usize, 4] {
        let exec = Executor::threaded(threads);
        // Warm the pool so spawn cost is not attributed to the first sample.
        let _ = exec.map_ranges(threads * 4, |r| r.len());
        for &n in &[64usize, 4096] {
            group.bench_with_input(
                BenchmarkId::new(format!("pool_t{threads}"), n),
                &n,
                |b, &n| {
                    b.iter(|| {
                        exec.map_ranges(n, |r| r.fold(0u64, |a, i| a ^ (i as u64).rotate_left(7)))
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("scoped_t{threads}"), n),
                &n,
                |b, &n| {
                    b.iter(|| {
                        exec.map_ranges_scoped_reference(n, |r| {
                            r.fold(0u64, |a, i| a ^ (i as u64).rotate_left(7))
                        })
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline_backends,
    bench_walk_fanout_backends,
    bench_dispatch_overhead
);
criterion_main!(benches);
