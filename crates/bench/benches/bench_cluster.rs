//! Throughput of the flat-arena MPC data plane.
//!
//! Three quantities tracked release over release, with a recorded snapshot
//! in `BENCH_cluster.json` at the workspace root:
//!
//! * **shuffle throughput** — the two-pass counting shuffle
//!   (`shuffle_by_key`, plus its consuming `shuffle_by_key_owned` variant)
//!   against a faithful reimplementation of the historical
//!   clone-into-buckets shuffle (per-worker `Vec<Vec<T>>` bucket sets merged
//!   by append), at 10⁵–10⁶ tuples;
//! * **map/filter chains** — the borrowing chain vs the consuming/in-place
//!   chain that the arena layout enables;
//! * **reduce_by_key** — combiner-based aggregation at the same scales.
//!
//! All variants produce bit-identical outputs (asserted once per size before
//! timing), so any difference is pure data-plane cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wcc_mpc::{Cluster, MpcConfig, MpcContext};

const SIZES: [usize; 2] = [100_000, 1_000_000];
const THREAD_COUNTS: [usize; 2] = [1, 4];

/// The same key→machine mixer the cluster uses (SplitMix64 finaliser),
/// reproduced here so the historical baseline routes identically.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

fn config(n: usize, threads: usize) -> MpcConfig {
    MpcConfig::with_memory(4 * n, (4 * n) / 64)
        .permissive()
        .with_threads(threads)
}

fn tuples(n: usize) -> Vec<(u64, u64)> {
    (0..n as u64)
        .map(|i| (i.wrapping_mul(2654435761) % 4096, i))
        .collect()
}

/// The pre-refactor shuffle, faithfully reimplemented on the public API:
/// every worker clones its tuples into a fresh `Vec<Vec<T>>` bucket set,
/// merged destination-by-destination on the calling thread.
fn clone_into_buckets_shuffle(cluster: &Cluster<(u64, u64)>) -> Vec<Vec<(u64, u64)>> {
    let m = cluster.num_machines().max(1);
    let routed: Vec<Vec<Vec<(u64, u64)>>> =
        cluster
            .executor()
            .map_ranges(cluster.num_machines(), |range| {
                let mut buckets: Vec<Vec<(u64, u64)>> = (0..m).map(|_| Vec::new()).collect();
                for mi in range {
                    for t in cluster.machine(mi) {
                        let dest = (splitmix64(t.0) % m as u64) as usize;
                        buckets[dest].push(*t);
                    }
                }
                buckets
            });
    let mut out: Vec<Vec<(u64, u64)>> = (0..m).map(|_| Vec::new()).collect();
    for buckets in routed {
        for (dest, mut bucket) in buckets.into_iter().enumerate() {
            out[dest].append(&mut bucket);
        }
    }
    out
}

fn bench_shuffle(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_shuffle");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(4));
    for &n in &SIZES {
        for &threads in &THREAD_COUNTS {
            let cfg = config(n, threads);
            let cluster = Cluster::from_tuples(&cfg, tuples(n));
            // The counting shuffle must reproduce the historical order.
            {
                let mut ctx = MpcContext::new(cfg);
                let counted = cluster.shuffle_by_key(&mut ctx, |t| t.0).unwrap();
                let legacy = clone_into_buckets_shuffle(&cluster);
                for (mi, machine) in legacy.iter().enumerate() {
                    assert_eq!(counted.machine(mi), &machine[..], "order drifted");
                }
            }
            group.bench_with_input(
                BenchmarkId::new(format!("counting_t{threads}"), n),
                &cluster,
                |b, cl| {
                    b.iter(|| {
                        let mut ctx = MpcContext::new(cfg);
                        cl.shuffle_by_key(&mut ctx, |t| t.0).unwrap()
                    })
                },
            );
            // NOTE: the consuming variant needs a fresh cluster per
            // iteration, so this timing *includes* one full cluster clone —
            // in a real pipeline the clone does not exist (that is the
            // point of the owned variant); compare `counting` numbers for
            // pure shuffle cost.
            group.bench_with_input(
                BenchmarkId::new(format!("counting_owned_incl_clone_t{threads}"), n),
                &cluster,
                |b, cl| {
                    b.iter(|| {
                        let mut ctx = MpcContext::new(cfg);
                        cl.clone().shuffle_by_key_owned(&mut ctx, |t| t.0).unwrap()
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("clone_into_buckets_t{threads}"), n),
                &cluster,
                |b, cl| b.iter(|| clone_into_buckets_shuffle(cl)),
            );
        }
    }
    group.finish();
}

fn bench_map_filter_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_map_filter");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(4));
    for &n in &SIZES {
        for &threads in &THREAD_COUNTS {
            let cfg = config(n, threads);
            let cluster = Cluster::from_tuples(&cfg, tuples(n));
            group.bench_with_input(
                BenchmarkId::new(format!("borrowing_t{threads}"), n),
                &cluster,
                |b, cl| {
                    b.iter(|| {
                        cl.map_local(|t| (t.0, t.1 + 1))
                            .filter_local(|t| t.1 % 3 != 0)
                            .len()
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("owned_in_place_t{threads}"), n),
                &cluster,
                |b, cl| {
                    b.iter(|| {
                        let mut derived = cl.clone().map_local_owned(|t| (t.0, t.1 + 1));
                        derived.filter_local_in_place(|t| t.1 % 3 != 0);
                        derived.len()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_reduce_by_key(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_reduce_by_key");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(4));
    for &n in &SIZES {
        for &threads in &THREAD_COUNTS {
            let cfg = config(n, threads);
            let cluster = Cluster::from_tuples(&cfg, tuples(n));
            group.bench_with_input(
                BenchmarkId::new(format!("reduce_t{threads}"), n),
                &cluster,
                |b, cl| {
                    b.iter(|| {
                        let mut ctx = MpcContext::new(cfg);
                        cl.reduce_by_key(
                            &mut ctx,
                            |t| t.0,
                            |_| 0u64,
                            |acc, t| *acc += t.1,
                            |acc, b| *acc += b,
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_shuffle,
    bench_map_filter_chain,
    bench_reduce_by_key
);
criterion_main!(benches);
