//! Criterion benchmarks of the end-to-end algorithms: the paper's pipeline
//! (Theorem 4), the adaptive variant (Corollary 7.1), the sublinear-space
//! algorithm (Theorem 2) and the classical baselines, all on the same
//! planted-expander workload — plus the three groups recorded in
//! `BENCH_pipeline.json` at the workspace root:
//!
//! * **pipeline_adaptive_e2e** — the adaptive pipeline on a ~10⁵-edge
//!   planted-expander graph at 1 and 4 worker threads (the whole
//!   zero-materialisation walk engine end to end; one sample per config,
//!   each run takes tens of seconds);
//! * **walk_kernel** — the isolated Step-2 fan-out under the retained spec
//!   kernel vs the v3 stay-run-compression kernel at two walk lengths, with
//!   an endpoint-distribution sanity assert before any timing;
//! * **reduce_by_key_radix_vs_hashmap** — the sort-based aggregation
//!   (`reduce_by_key`) against the retained hash-based reference
//!   (`reduce_by_key_hashmap`) at 10⁵–10⁶ tuples. Outputs are asserted
//!   bit-identical before timing, so any difference is pure aggregation
//!   machinery;
//! * **stream_ingest** — the incremental engine's union-find fast path
//!   against per-batch full recompute on a merge-free streaming batch
//!   schedule (end labellings asserted identical before timing);
//! * **dynamic_ingest** — the turnstile engine on a deletion-heavy op
//!   schedule (rolling insert/delete window, sketch-Borůvka repairs every
//!   batch) vs a merge-free insert-only schedule of the same batch size,
//!   differentially checked against per-batch full recompute before timing.
//!
//! Wall-clock time is *not* the quantity the paper bounds (rounds are — see
//! the `exp_*` binaries); these benchmarks exist to track the simulator's
//! practical cost and to compare implementations release over release.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wcc_baselines::{hash_to_min, random_mate_contraction, sequential_components};
use wcc_core::prelude::*;
use wcc_core::sublinear::{sublinear_components, SublinearParams};
use wcc_graph::prelude::*;
use wcc_mpc::{Cluster, MpcConfig, MpcContext};

fn planted(n: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    generators::planted_expander_components(&[n / 2, n / 2], 8, &mut rng)
}

fn bench_pipeline_vs_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("connectivity_end_to_end");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &n in &[256usize, 1024] {
        let g = planted(n, 1);
        let params = Params::laptop_scale();
        group.bench_with_input(BenchmarkId::new("wcc_pipeline", n), &g, |b, g| {
            b.iter(|| well_connected_components(g, 0.3, &params, 7).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("adaptive_unknown_gap", n), &g, |b, g| {
            b.iter(|| adaptive_components(g, &params, 7).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sublinear_theorem2", n), &g, |b, g| {
            b.iter(|| sublinear_components(g, 256, &SublinearParams::laptop_scale(), 7).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("baseline_hash_to_min", n), &g, |b, g| {
            b.iter(|| {
                let mut ctx =
                    MpcContext::new(MpcConfig::for_input_size(2 * g.num_edges(), 0.5).permissive());
                hash_to_min(g, &mut ctx)
            })
        });
        group.bench_with_input(BenchmarkId::new("baseline_random_mate", n), &g, |b, g| {
            b.iter(|| {
                let mut ctx =
                    MpcContext::new(MpcConfig::for_input_size(2 * g.num_edges(), 0.5).permissive());
                random_mate_contraction(g, &mut ctx, 3)
            })
        });
        group.bench_with_input(BenchmarkId::new("sequential_union_find", n), &g, |b, g| {
            b.iter(|| sequential_components(g))
        });
    }
    group.finish();
}

fn bench_growth_stage(c: &mut Criterion) {
    let mut group = c.benchmark_group("grow_components_stage");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    let params = Params::laptop_scale();
    for &n in &[5_000usize, 20_000] {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let degree = params.batch_degree(n);
        let batches: Vec<Graph> = (0..params.num_phases(n))
            .map(|_| generators::random_out_degree_graph(n, degree, &mut rng))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("grow_components", n),
            &batches,
            |b, batches| {
                b.iter(|| {
                    let mut rng = ChaCha8Rng::seed_from_u64(3);
                    let mut ctx = MpcContext::new(
                        MpcConfig::for_input_size(4 * n * degree, 0.5).permissive(),
                    );
                    wcc_core::leader::grow_components(batches, &params, &mut ctx, &mut rng).unwrap()
                })
            },
        );
    }
    group.finish();
}

/// The adaptive pipeline (Corollary 7.1) on a ~10⁵-edge generator graph —
/// the workload the zero-materialisation walk engine was built for. One run
/// takes tens of seconds, so the sampling budget effectively collects a
/// single timed sample per configuration after the warm-up.
fn bench_adaptive_pipeline_large(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_adaptive_e2e");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(100));
    group.measurement_time(std::time::Duration::from_secs(3));
    // 2 × 12 500 vertices at degree 8 ≈ 100 000 edges.
    let g = planted(25_000, 5);
    assert!(g.num_edges() >= 90_000, "workload should be ~10^5 edges");
    let params = Params::laptop_scale();
    for &threads in &[1usize, 4] {
        let p = params.with_threads(threads);
        group.bench_with_input(
            BenchmarkId::new(format!("adaptive_t{threads}"), g.num_edges()),
            &g,
            |b, g| b.iter(|| adaptive_components(g, &p, 7).unwrap()),
        );
    }
    group.finish();
}

/// Sort-based aggregation vs the retained hash-based reference, on the same
/// keyed-tuple workload `bench_cluster` uses (4096 distinct keys).
fn bench_reduce_radix_vs_hashmap(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce_by_key_radix_vs_hashmap");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(4));
    for &n in &[100_000usize, 1_000_000] {
        for &threads in &[1usize, 4] {
            let cfg = MpcConfig::with_memory(4 * n, (4 * n) / 64)
                .permissive()
                .with_threads(threads);
            let tuples: Vec<(u64, u64)> = (0..n as u64)
                .map(|i| (i.wrapping_mul(2654435761) % 4096, i))
                .collect();
            let cluster = Cluster::from_tuples(&cfg, tuples);
            // Differential check once per configuration: identical pairs, in
            // identical order, before any timing happens.
            {
                let mut ctx_a = MpcContext::new(cfg);
                let mut ctx_b = MpcContext::new(cfg);
                let radix = cluster
                    .reduce_by_key(
                        &mut ctx_a,
                        |t| t.0,
                        |_| 0u64,
                        |a, t| *a += t.1,
                        |a, b| *a += b,
                    )
                    .unwrap();
                let hash = cluster
                    .reduce_by_key_hashmap(
                        &mut ctx_b,
                        |t| t.0,
                        |_| 0u64,
                        |a, t| *a += t.1,
                        |a, b| *a += b,
                    )
                    .unwrap();
                assert_eq!(radix, hash, "aggregation drifted from the reference");
            }
            group.bench_with_input(
                BenchmarkId::new(format!("radix_t{threads}"), n),
                &cluster,
                |b, cl| {
                    b.iter(|| {
                        let mut ctx = MpcContext::new(cfg);
                        cl.reduce_by_key(
                            &mut ctx,
                            |t| t.0,
                            |_| 0u64,
                            |a, t| *a += t.1,
                            |a, b| *a += b,
                        )
                        .unwrap()
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("hashmap_t{threads}"), n),
                &cluster,
                |b, cl| {
                    b.iter(|| {
                        let mut ctx = MpcContext::new(cfg);
                        cl.reduce_by_key_hashmap(
                            &mut ctx,
                            |t| t.0,
                            |_| 0u64,
                            |a, t| *a += t.1,
                            |a, b| *a += b,
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

/// The two walk kernels head to head on the isolated Step-2 fan-out (the
/// `walk_kernel` group recorded in `BENCH_pipeline.json`): the retained
/// step-by-step spec kernel vs the v3 stay-run-compression kernel, at a
/// short and a long walk length. Before any timing, both kernels' endpoint
/// distributions are sanity-checked against each other on the same graph
/// (coarse per-vertex frequency comparison — the rigorous χ² suite lives in
/// `tests/walk_kernel_equivalence.rs`).
fn bench_walk_kernel(c: &mut Criterion) {
    use wcc_core::walks::{independent_lazy_walks, WalkKernel, WalkMode};

    let mut group = c.benchmark_group("walk_kernel");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(3));

    let n = 8192;
    let k = 4;
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let g = generators::random_regular_permutation_graph(n, 8, &mut rng);

    // Endpoint-distribution sanity assert: with enough draws per vertex the
    // two kernels' aggregate endpoint frequencies must agree closely (they
    // sample the identical lazy-walk distribution from different keystream
    // encodings). Total-variation distance over a long-mixed small graph.
    {
        let small = generators::random_regular_permutation_graph(256, 8, &mut rng);
        let mut freq = [vec![0u64; 256], vec![0u64; 256]];
        for (slot, kernel) in [WalkKernel::Spec, WalkKernel::V3].into_iter().enumerate() {
            let mut ctx =
                MpcContext::new(MpcConfig::for_input_size(4 * small.num_edges(), 0.5).permissive());
            let mut rng = ChaCha8Rng::seed_from_u64(23 + slot as u64);
            let flat = independent_lazy_walks(
                &small,
                64,
                32,
                WalkMode::Direct,
                kernel,
                2,
                &mut ctx,
                &mut rng,
            )
            .unwrap();
            for &end in &flat {
                freq[slot][end] += 1;
            }
        }
        let total: u64 = freq[0].iter().sum();
        let tvd: f64 = freq[0]
            .iter()
            .zip(&freq[1])
            .map(|(&a, &b)| (a as f64 - b as f64).abs())
            .sum::<f64>()
            / (2.0 * total as f64);
        // Two independent 8192-draw multinomials over 256 categories sit at
        // TVD ≈ √(K/(πN)) ≈ 0.10 under the null, so gate at 2.5× that —
        // loose against sampling noise, far below the O(0.5) separation a
        // biased kernel produces (the real equivalence test is the χ² suite
        // in tests/walk_kernel_equivalence.rs).
        assert!(
            tvd < 0.25,
            "kernel endpoint distributions diverged before timing: tvd = {tvd}"
        );
    }

    for &t in &[64usize, 256] {
        for (name, kernel) in [("spec", WalkKernel::Spec), ("v3", WalkKernel::V3)] {
            group.bench_with_input(BenchmarkId::new(name, format!("t{t}")), &g, |b, g| {
                b.iter(|| {
                    let mut ctx = MpcContext::new(
                        MpcConfig::for_input_size(4 * g.num_edges(), 0.5).permissive(),
                    );
                    let mut rng = ChaCha8Rng::seed_from_u64(29);
                    independent_lazy_walks(g, t, k, WalkMode::Direct, kernel, 2, &mut ctx, &mut rng)
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

/// Streaming ingestion: the union-find fast path against per-batch full
/// recompute on a merge-free batch schedule (the `stream_ingest` group
/// recorded in `BENCH_pipeline.json`).
///
/// Both arms start from the same pre-bootstrapped engine (the bootstrap
/// pipeline run is setup, not the thing measured) and replay the same eight
/// merge-free traffic batches; the only difference is
/// [`StreamParams::fast_path`]. The fast arm's cost is eight union-find
/// passes; the slow arm pays eight full Theorem-4 recomputes — the
/// "recompute from scratch every batch" strawman the incremental engine
/// exists to beat. End labellings are asserted identical before timing.
fn bench_stream_ingest(c: &mut Criterion) {
    use wcc_core::stream::{IncrementalComponents, StreamParams};

    let mut group = c.benchmark_group("stream_ingest");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(100));
    group.measurement_time(std::time::Duration::from_secs(3));

    // ~4000-edge base graph: two planted expander components.
    let g = planted(1_000, 11);
    let bootstrap: Vec<(u64, u64)> = g.edge_iter().map(|(u, v)| (u as u64, v as u64)).collect();
    let n = g.num_vertices() as u64;
    // Eight merge-free traffic batches: random intra-component edges within
    // the first component (vertices 0..n/2).
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let batches: Vec<Vec<(u64, u64)>> = (0..8)
        .map(|_| {
            (0..400)
                .map(|_| {
                    use rand::Rng;
                    (rng.gen_range(0..n / 2), rng.gen_range(0..n / 2))
                })
                .collect()
        })
        .collect();

    let params = StreamParams::laptop_scale().with_lambda(0.3);
    let mut fast_base = IncrementalComponents::new(params, 7);
    fast_base.apply_batch(&bootstrap).unwrap();
    let mut slow_base = IncrementalComponents::new(params.with_fast_path(false), 7);
    slow_base.apply_batch(&bootstrap).unwrap();

    // Differential check once, before any timing: identical partitions and
    // a genuinely merge-free schedule (the fast arm must never recompute).
    {
        let mut fast = fast_base.clone();
        let mut slow = slow_base.clone();
        for batch in &batches {
            let r = fast.apply_batch(batch).unwrap();
            assert!(r.path.is_fast(), "schedule is not merge-free: {:?}", r.path);
            slow.apply_batch(batch).unwrap();
        }
        assert!(
            fast.labels().same_partition(&slow.labels()),
            "fast path drifted from per-batch recompute"
        );
    }

    let total_edges: usize = batches.iter().map(Vec::len).sum();
    group.bench_with_input(
        BenchmarkId::new("fast_path", total_edges),
        &batches,
        |b, batches| {
            b.iter(|| {
                let mut engine = fast_base.clone();
                for batch in batches {
                    engine.apply_batch(batch).unwrap();
                }
                engine.num_components()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("full_recompute_per_batch", total_edges),
        &batches,
        |b, batches| {
            b.iter(|| {
                let mut engine = slow_base.clone();
                for batch in batches {
                    engine.apply_batch(batch).unwrap();
                }
                engine.num_components()
            })
        },
    );
    group.finish();
}

/// Dynamic (turnstile) ingestion: a deletion-heavy op schedule against a
/// merge-free insert-only schedule of the same size (the `dynamic_ingest`
/// group recorded in `BENCH_pipeline.json`).
///
/// The merge-free arm is the insert-only fast path — the ~ns/edge baseline
/// deletions must not regress (the sketch is built lazily on the first
/// deletion, so this arm never pays for it). The deletion-heavy arm rolls a
/// window: each batch inserts 400 fresh intra-component edges and deletes
/// the 400 inserted by the previous batch, so every batch after the first
/// is a structural-deletion storm that runs the sketch-Borůvka repair on
/// the touched component. Before timing, the deletion arm is differentially
/// checked against a fast-path-disabled reference (per-batch full
/// recompute) on the identical schedule, and the schedule is asserted to
/// actually exercise the sketch path.
fn bench_dynamic_ingest(c: &mut Criterion) {
    use wcc_core::stream::{IncrementalComponents, StreamParams};
    use wcc_graph::io::EdgeOp;

    let mut group = c.benchmark_group("dynamic_ingest");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(100));
    group.measurement_time(std::time::Duration::from_secs(3));

    // Same base workload as `stream_ingest`: two planted expander
    // components, ~4000 edges.
    let g = planted(1_000, 11);
    let bootstrap: Vec<(u64, u64)> = g.edge_iter().map(|(u, v)| (u as u64, v as u64)).collect();
    let n = g.num_vertices() as u64;
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let mut fresh_batch = |count: usize| -> Vec<(u64, u64)> {
        // Distinct random intra-component pairs (component 0 = 0..n/2).
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            use rand::Rng;
            let (u, v) = (rng.gen_range(0..n / 2), rng.gen_range(0..n / 2));
            if u != v && seen.insert((u.min(v), u.max(v))) {
                out.push((u, v));
            }
        }
        out
    };

    // Merge-free insert-only schedule: 8 batches of 400 traffic edges.
    let insert_only: Vec<Vec<EdgeOp>> = (0..8)
        .map(|_| {
            fresh_batch(400)
                .into_iter()
                .map(|(u, v)| EdgeOp::insert(u, v))
                .collect()
        })
        .collect();
    // Deletion-heavy rolling window over the same batch size: insert 400,
    // delete the previous batch's 400.
    let windows: Vec<Vec<(u64, u64)>> = (0..8).map(|_| fresh_batch(400)).collect();
    let deletion_heavy: Vec<Vec<EdgeOp>> = (0..8)
        .map(|i| {
            let mut ops: Vec<EdgeOp> = windows[i]
                .iter()
                .map(|&(u, v)| EdgeOp::insert(u, v))
                .collect();
            if i > 0 {
                ops.extend(windows[i - 1].iter().map(|&(u, v)| EdgeOp::delete(u, v)));
            }
            ops
        })
        .collect();

    let params = StreamParams::laptop_scale().with_lambda(0.3);
    let mut base = IncrementalComponents::new(params, 7);
    base.apply_batch(&bootstrap).unwrap();

    // Differential check once, before any timing: the sketch-repair engine
    // and the per-batch-recompute reference land on the same partition, the
    // insert arm never escalates, and the deletion arm genuinely runs the
    // sketch path.
    {
        let mut fast = base.clone();
        for batch in &insert_only {
            let r = fast.apply_ops_batch(batch).unwrap();
            assert!(r.path.is_fast(), "schedule is not merge-free: {:?}", r.path);
        }
        assert!(!fast.sketch_active(), "insert-only arm must stay lazy");

        let mut sketchy = base.clone();
        for batch in &deletion_heavy {
            sketchy.apply_ops_batch(batch).unwrap();
        }
        assert!(
            sketchy.splits() + sketchy.sketch_recertifies() > 0,
            "deletion-heavy schedule never exercised the sketch path"
        );
        let mut reference = IncrementalComponents::new(params.with_fast_path(false), 7);
        reference.apply_batch(&bootstrap).unwrap();
        for batch in &deletion_heavy {
            reference.apply_ops_batch(batch).unwrap();
        }
        assert_eq!(sketchy.num_edges(), reference.num_edges());
        assert!(
            sketchy.labels().same_partition(&reference.labels()),
            "sketch repair drifted from per-batch recompute"
        );
    }

    let total_ops: usize = deletion_heavy.iter().map(Vec::len).sum();
    group.bench_with_input(
        BenchmarkId::new("merge_free_inserts", total_ops),
        &insert_only,
        |b, schedule| {
            b.iter(|| {
                let mut engine = base.clone();
                for batch in schedule {
                    engine.apply_ops_batch(batch).unwrap();
                }
                engine.num_components()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("deletion_heavy", total_ops),
        &deletion_heavy,
        |b, schedule| {
            b.iter(|| {
                let mut engine = base.clone();
                for batch in schedule {
                    engine.apply_ops_batch(batch).unwrap();
                }
                engine.num_components()
            })
        },
    );
    group.finish();
}

/// The query-service building blocks behind `wcc serve` (the
/// `serve_snapshot` group): publish cost for a quiet batch (no vertex or
/// structure change — must be Arc-reuse, not a rebuild) vs a changed batch
/// (full label rebuild), raw snapshot query throughput, and the wire
/// protocol encode/decode round-trip.
fn bench_serve_snapshot(c: &mut Criterion) {
    use wcc_core::serve::{Request, Response, SnapshotCell, SnapshotReader};
    use wcc_core::stream::{IncrementalComponents, StreamParams};

    let mut group = c.benchmark_group("serve_snapshot");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(3));

    let g = planted(1_000, 11);
    let bootstrap: Vec<(u64, u64)> = g.edge_iter().map(|(u, v)| (u as u64, v as u64)).collect();
    let n = g.num_vertices() as u64;
    let params = StreamParams::laptop_scale().with_lambda(0.3);
    let mut engine = IncrementalComponents::new(params, 7);
    engine.apply_batch(&bootstrap).unwrap();

    // Quiet publish: a duplicate batch changes nothing, so `snapshot()` must
    // reuse every Arc from the cache (asserted before timing).
    {
        let mut probe = engine.clone();
        let before = probe.snapshot(1);
        probe.apply_batch(&bootstrap[..64]).unwrap();
        let after = probe.snapshot(2);
        assert!(
            after.shares_structure(&before) && after.shares_index(&before),
            "duplicate batch should republish without rebuilding"
        );
    }
    group.bench_function("publish_quiet", |b| {
        let mut probe = engine.clone();
        probe.apply_batch(&bootstrap[..64]).unwrap();
        let mut epoch = 1u64;
        b.iter(|| {
            epoch += 1;
            probe.snapshot(epoch)
        })
    });
    group.bench_function("publish_changed", |b| {
        let mut probe = engine.clone();
        let mut epoch = 1u64;
        b.iter(|| {
            // Touching a fresh vertex dirties the index, forcing the O(n)
            // label rebuild the quiet arm avoids.
            probe.apply_batch(&[(0, n + epoch)]).unwrap();
            epoch += 1;
            probe.snapshot(epoch)
        })
    });

    // Raw query throughput against a published snapshot, through the same
    // reader path the server's connection handlers use.
    let cell = SnapshotCell::new();
    cell.publish(engine.snapshot(1));
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let queries: Vec<(u64, u64)> = (0..4096)
        .map(|_| {
            use rand::Rng;
            (rng.gen_range(0..n), rng.gen_range(0..n))
        })
        .collect();
    group.bench_function("snapshot_query_4096", |b| {
        let mut reader = SnapshotReader::new(&cell);
        b.iter(|| {
            let snap = reader.current(&cell);
            let mut same = 0u64;
            for &(u, v) in &queries {
                if snap.same_component(u, v) == Some(true) {
                    same += 1;
                }
            }
            same
        })
    });

    // Wire protocol: encode + decode a request/response pair.
    group.bench_function("protocol_roundtrip", |b| {
        let mut buf = Vec::with_capacity(64);
        b.iter(|| {
            buf.clear();
            Request::SameComponent { u: 17, v: 42 }.encode(&mut buf);
            let req = Request::decode(&buf[4..]).unwrap();
            buf.clear();
            Response::Same {
                epoch: 9,
                same: true,
            }
            .encode(&mut buf);
            let resp = Response::decode(&buf[4..]).unwrap();
            (req, resp)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline_vs_baselines,
    bench_growth_stage,
    bench_adaptive_pipeline_large,
    bench_walk_kernel,
    bench_reduce_radix_vs_hashmap,
    bench_stream_ingest,
    bench_dynamic_ingest,
    bench_serve_snapshot
);
criterion_main!(benches);
