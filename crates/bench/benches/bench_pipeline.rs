//! Criterion benchmarks of the end-to-end algorithms: the paper's pipeline
//! (Theorem 4), the adaptive variant (Corollary 7.1), the sublinear-space
//! algorithm (Theorem 2) and the classical baselines, all on the same
//! planted-expander workload.
//!
//! Wall-clock time is *not* the quantity the paper bounds (rounds are — see
//! the `exp_*` binaries); these benchmarks exist to track the simulator's
//! practical cost and to compare implementations release over release.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wcc_baselines::{hash_to_min, random_mate_contraction, sequential_components};
use wcc_core::prelude::*;
use wcc_core::sublinear::{sublinear_components, SublinearParams};
use wcc_graph::prelude::*;
use wcc_mpc::{MpcConfig, MpcContext};

fn planted(n: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    generators::planted_expander_components(&[n / 2, n / 2], 8, &mut rng)
}

fn bench_pipeline_vs_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("connectivity_end_to_end");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &n in &[256usize, 1024] {
        let g = planted(n, 1);
        let params = Params::laptop_scale();
        group.bench_with_input(BenchmarkId::new("wcc_pipeline", n), &g, |b, g| {
            b.iter(|| well_connected_components(g, 0.3, &params, 7).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("adaptive_unknown_gap", n), &g, |b, g| {
            b.iter(|| adaptive_components(g, &params, 7).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sublinear_theorem2", n), &g, |b, g| {
            b.iter(|| sublinear_components(g, 256, &SublinearParams::laptop_scale(), 7).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("baseline_hash_to_min", n), &g, |b, g| {
            b.iter(|| {
                let mut ctx =
                    MpcContext::new(MpcConfig::for_input_size(2 * g.num_edges(), 0.5).permissive());
                hash_to_min(g, &mut ctx)
            })
        });
        group.bench_with_input(BenchmarkId::new("baseline_random_mate", n), &g, |b, g| {
            b.iter(|| {
                let mut ctx =
                    MpcContext::new(MpcConfig::for_input_size(2 * g.num_edges(), 0.5).permissive());
                random_mate_contraction(g, &mut ctx, 3)
            })
        });
        group.bench_with_input(BenchmarkId::new("sequential_union_find", n), &g, |b, g| {
            b.iter(|| sequential_components(g))
        });
    }
    group.finish();
}

fn bench_growth_stage(c: &mut Criterion) {
    let mut group = c.benchmark_group("grow_components_stage");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    let params = Params::laptop_scale();
    for &n in &[5_000usize, 20_000] {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let degree = params.batch_degree(n);
        let batches: Vec<Graph> = (0..params.num_phases(n))
            .map(|_| generators::random_out_degree_graph(n, degree, &mut rng))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("grow_components", n),
            &batches,
            |b, batches| {
                b.iter(|| {
                    let mut rng = ChaCha8Rng::seed_from_u64(3);
                    let mut ctx = MpcContext::new(
                        MpcConfig::for_input_size(4 * n * degree, 0.5).permissive(),
                    );
                    wcc_core::leader::grow_components(batches, &params, &mut ctx, &mut rng).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_vs_baselines, bench_growth_stage);
criterion_main!(benches);
