//! E4: independence and distribution of layered-graph random walks (Theorem 3).
fn main() {
    let table = wcc_bench::exp_random_walk_quality(300, 16);
    if let Ok(path) = table.write_json() {
        eprintln!("wrote {path}");
    }
    println!("{}", table.to_markdown());
}
