//! E7: adaptive algorithm with unknown spectral gaps (Corollary 7.1).
fn main() {
    let table = wcc_bench::exp_adaptive_unknown_gap(2000);
    if let Ok(path) = table.write_json() {
        eprintln!("wrote {path}");
    }
    println!("{}", table.to_markdown());
}
