//! E11: properties of G(n,d) and balls-and-bins concentration (Prop. 2.3-2.5, B.1).
fn main() {
    let table = wcc_bench::exp_random_graph_props(3000);
    if let Ok(path) = table.write_json() {
        eprintln!("wrote {path}");
    }
    println!("{}", table.to_markdown());
}
