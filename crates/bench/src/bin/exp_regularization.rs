//! E5: replacement-product regularization (Lemma 4.1 / Proposition 4.2).
fn main() {
    let table = wcc_bench::exp_regularization(600);
    if let Ok(path) = table.write_json() {
        eprintln!("wrote {path}");
    }
    println!("{}", table.to_markdown());
}
