//! E6: SublinearConn rounds vs memory per machine (Theorem 2).
fn main() {
    let table = wcc_bench::exp_sublinear_space(1024, &[32, 128, 512, 2048]);
    if let Ok(path) = table.write_json() {
        eprintln!("wrote {path}");
    }
    println!("{}", table.to_markdown());
}
