//! Phase profile of the adaptive e2e workload (`pipeline_adaptive_e2e`):
//! runs `adaptive_components` on the same ~10⁵-edge planted-expander graph
//! the benchmark uses and prints every phase's wall-clock share next to its
//! model quantities (rounds, words) — the observability that drives the
//! data-plane optimisation work (ROADMAP item 4).
//!
//! Usage: `exp_phase_profile [n] [threads]`, or with flags:
//! `exp_phase_profile [n] --threads <t>` (defaults: 25000 vertices,
//! 1 thread; `--threads 0` means one worker per available CPU), so a
//! profile can be captured per backend without `WCC_THREADS` juggling.

use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wcc_core::prelude::*;
use wcc_graph::prelude::*;

fn main() {
    let mut positional: Vec<usize> = Vec::new();
    let mut threads_flag: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            threads_flag = Some(
                args.next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads takes a count (0 = one per available CPU)"),
            );
        } else {
            positional.push(arg.parse().expect("positional arguments are numbers"));
        }
    }
    let n: usize = positional.first().copied().unwrap_or(25_000);
    let threads: usize = match threads_flag.or_else(|| positional.get(1).copied()) {
        Some(0) => wcc_mpc::Executor::auto_threads(),
        Some(t) => t,
        None => 1,
    };

    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let g = generators::planted_expander_components(&[n / 2, n / 2], 8, &mut rng);
    eprintln!(
        "graph: {} vertices, {} edges, threads={threads}",
        g.num_vertices(),
        g.num_edges()
    );

    let params = Params::laptop_scale().with_threads(threads);
    let start = Instant::now();
    let result = adaptive_components(&g, &params, 7).expect("adaptive run");
    let total = start.elapsed().as_secs_f64();

    eprintln!(
        "total {:.2}s, {} components, {} rounds, {} words",
        total,
        result.components.num_components(),
        result.stats.total_rounds(),
        result.stats.total_communication_words()
    );

    // Aggregate repeated phases by name, preserving first-appearance order.
    let mut names: Vec<&str> = Vec::new();
    for p in result.stats.phases() {
        if !names.contains(&p.name.as_str()) {
            names.push(&p.name);
        }
    }
    println!(
        "{:<22} {:>6} {:>10} {:>14} {:>12}",
        "phase", "count", "rounds", "words", "wall_ms"
    );
    for name in names {
        let (mut count, mut rounds, mut words, mut wall) = (0u64, 0u64, 0u64, 0.0);
        for p in result.stats.phases().iter().filter(|p| p.name == name) {
            count += 1;
            rounds += p.rounds;
            words += p.communication_words;
            wall += p.wall_time_ms;
        }
        println!("{name:<22} {count:>6} {rounds:>10} {words:>14} {wall:>12.1}");
    }

    // The walk-kernel telemetry behind the randomize row (DESIGN.md §10):
    // cumulative process-global counters, but this process ran one pipeline.
    let w = wcc_mpc::walk_telemetry_snapshot();
    if w.steps > 0 {
        println!(
            "walk telemetry: steps={} moves={} stays_compressed={} keystream_words={} \
             ({:.3}/step) refills={} spec_fallbacks={}",
            w.steps,
            w.moves,
            w.stays_compressed,
            w.keystream_words,
            w.keystream_words as f64 / w.steps as f64,
            w.refills,
            w.spec_fallbacks
        );
    }
}
