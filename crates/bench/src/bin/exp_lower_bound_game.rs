//! E8: expander-connectivity query-game lower bound (Section 9).
fn main() {
    let table = wcc_bench::exp_lower_bound_game(&[512, 1024, 2048, 4096]);
    if let Ok(path) = table.write_json() {
        eprintln!("wrote {path}");
    }
    println!("{}", table.to_markdown());
}
