//! E3: quadratic component growth per leader-election phase (Lemma 6.7).
fn main() {
    let table = wcc_bench::exp_growth_per_phase(30_000);
    if let Ok(path) = table.write_json() {
        eprintln!("wrote {path}");
    }
    println!("{}", table.to_markdown());
}
