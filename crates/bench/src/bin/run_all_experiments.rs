//! Runs every experiment in EXPERIMENTS.md, prints the markdown tables and
//! writes `results/E*.json`.

fn main() {
    for table in wcc_bench::run_all() {
        match table.write_json() {
            Ok(path) => eprintln!("[{}] wrote {}", table.id, path),
            Err(e) => eprintln!("[{}] could not write results: {e}", table.id),
        }
        println!("{}", table.to_markdown());
    }
}
