//! E9: per-machine memory and communication accounting (Theorem 4).
fn main() {
    let table = wcc_bench::exp_memory_accounting(&[1 << 9, 1 << 11, 1 << 13]);
    if let Ok(path) = table.write_json() {
        eprintln!("wrote {path}");
    }
    println!("{}", table.to_markdown());
}
