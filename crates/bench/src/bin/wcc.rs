//! `wcc` — command-line front end for the connectivity algorithms.
//!
//! ```text
//! USAGE:
//!   wcc <edge-list-file> [--algorithm wcc|adaptive|sublinear|hash-to-min|union-find]
//!                        [--lambda <gap>] [--memory <words>] [--seed <u64>]
//!                        [--threads <n>] [--sizes] [--json]
//!   wcc stream <chunk-file> [--lambda <gap>] [--seed <u64>] [--threads <n>]
//!                           [--no-fast-path] [--sizes] [--json]
//!   wcc pack <edge-list-file> <chunk-file> [--batch-size <edges>] [--ops]
//!   wcc serve <chunk-file> [--addr <host:port>] [--repeat <n>]
//!                          [--ingest-delay-ms <ms>] [--exit-after <secs>]
//!                          [--lambda <gap>] [--seed <u64>] [--threads <n>]
//!                          [--no-fast-path] [--json]
//!
//! The edge-list format is one `u v` pair per line; `#`/`%` lines are comments.
//! Prints the number of components, the simulated MPC rounds, and (with
//! --sizes) the component size histogram. With --json, prints a single
//! machine-readable result record on stdout instead (the `exp_*` binaries
//! and external scripts consume this rather than scraping the human
//! output); threaded runs include a `pool` object with the persistent
//! worker pool's telemetry (dispatches, spawned threads, stolen chunks,
//! park/unpark counts), and runs that simulate random walks include a
//! `walk` object with the walk-kernel telemetry (steps, real moves vs
//! compressed stays, keystream words, refills, spec lane-group
//! fallbacks). `--threads 0` means one worker per available CPU;
//! without the flag, `WCC_THREADS` decides (same 0-means-auto convention).
//!
//! `wcc stream` replays a batch schedule in the binary chunk format (magic
//! `WCCS`, see `wcc_graph::io`) through the incremental engine: chunks are
//! decoded in parallel through the executor, each chunk is one batch, and
//! the per-batch path (union-find fast path, sketch repair, or full
//! pipeline recompute), rounds, words and wall time are reported — in a
//! `batches` array inside the same `--json` record the one-shot modes
//! emit. Both format versions replay through the same reader: version-1
//! streams decode to all-insert schedules, version-2 streams (per-record
//! op tag) may mix insertions and turnstile deletions, with per-batch
//! `insertions`/`deletions`/`splits`/`sketch_recertifies` counts in the
//! record. `wcc pack` converts a text edge list into that format —
//! version 1 by default, version 2 with `--ops` (lines may then carry a
//! `+`/`-` op prefix; bare `u v` lines are insertions).
//!
//! `wcc serve` runs the same replay as a *live* service: it binds a TCP
//! listener (DESIGN.md §11 documents the wire protocol; `wcc_loadgen` is
//! the reference client), prints `LISTENING <addr>` as its first stdout
//! line (even under `--json` — harnesses read the address there, and the
//! JSON record is the *last* line), then ingests the schedule `--repeat`
//! times (0 = loop until a client sends SHUTDOWN) while concurrent
//! connections query the epoch-snapshot of the decomposition. After the
//! last batch it keeps serving until a SHUTDOWN request or `--exit-after`
//! seconds elapse. The `--json` record gains a `serve` object: ingest
//! aggregates plus server telemetry with a log-bucketed latency histogram.
//! ```
//!
//! Example:
//! ```text
//! cargo run --release -p wcc-bench --bin wcc -- my_graph.txt --algorithm adaptive --sizes
//! cargo run --release -p wcc-bench --bin wcc -- pack my_graph.txt batches.wccs --batch-size 1000
//! cargo run --release -p wcc-bench --bin wcc -- stream batches.wccs --json
//! ```

use std::process::ExitCode;
use std::time::Instant;

use serde::Serialize;
use wcc_baselines::run_baseline;
use wcc_core::prelude::*;
use wcc_core::sublinear::{sublinear_components, SublinearParams};
use wcc_graph::prelude::*;
use wcc_mpc::{
    Executor, MpcConfig, MpcContext, PhaseStats, PoolTelemetry, RoundStats, TupleWidth,
    WalkTelemetry,
};

#[derive(PartialEq)]
enum Mode {
    /// One-shot: load an edge list, run one algorithm.
    Run,
    /// Replay a binary batch schedule through the incremental engine.
    Stream,
    /// Convert a text edge list into the binary chunk format.
    Pack,
    /// Replay a batch schedule while serving component queries over TCP.
    Serve,
}

struct Options {
    mode: Mode,
    path: String,
    /// `pack` only: the output chunk file.
    out_path: String,
    /// `pack` only: edges per chunk.
    batch_size: usize,
    /// `pack` only: write the op-tagged version-2 format (accepts `+`/`-`
    /// prefixed lines) instead of the insert-only version-1 format.
    pack_ops: bool,
    algorithm: String,
    lambda: f64,
    memory: usize,
    seed: u64,
    /// Execution-backend worker threads. An absent `--threads` flag leaves
    /// this 0 = resolve from WCC_THREADS; an explicit `--threads 0` is
    /// rewritten to one worker per available CPU at parse time.
    threads: usize,
    /// `stream` only: disable the union-find fast path (every batch then
    /// recomputes, which is the slow baseline the fast path is benched
    /// against).
    fast_path: bool,
    show_sizes: bool,
    json: bool,
    /// `serve` only: listen address (`host:port`, port 0 = ephemeral).
    addr: String,
    /// `serve` only: ingest the schedule this many times (0 = loop until a
    /// client requests shutdown).
    repeat: usize,
    /// `serve` only: sleep between batches, in milliseconds (throttles
    /// ingestion so a schedule lasts long enough to query against).
    ingest_delay_ms: f64,
    /// `serve` only: exit this many seconds after ingestion finishes even
    /// without a shutdown request (0 = wait for the request forever).
    exit_after_s: f64,
}

/// The machine-readable record emitted by `--json`: everything the
/// experiment harness needs, in one line of JSON on stdout.
#[derive(Serialize)]
struct JsonReport {
    algorithm: String,
    input: String,
    vertices: usize,
    edges: usize,
    seed: u64,
    components: usize,
    /// Simulated MPC rounds; absent for the sequential reference.
    total_rounds: Option<u64>,
    /// Words of cross-machine communication; absent for the sequential
    /// reference.
    communication_words: Option<u64>,
    /// Largest simulated per-machine load, in words.
    max_machine_load_words: Option<usize>,
    /// Memory-budget violations recorded in permissive mode.
    memory_violations: Option<u64>,
    /// The tuple width the data plane negotiated for this input
    /// (`"compact-u32"` or `"wide-u64"`, see `wcc_mpc::compact`); absent for
    /// the sequential reference.
    tuple_width: Option<String>,
    /// Total bytes the negotiated representation moved for the charged
    /// communication; absent for the sequential reference.
    shuffled_bytes: Option<u64>,
    /// Wall-clock time of the algorithm run, in milliseconds.
    wall_time_ms: f64,
    /// Per-phase breakdown in execution order — each entry carries `name`,
    /// `rounds`, `communication_words`, `shuffled_bytes` (what the
    /// negotiated representation actually moved) and `wall_time_ms` (the
    /// phase's wall-clock share of the run, a simulator observable rather
    /// than a model quantity). Absent for the sequential reference.
    phases: Option<Vec<PhaseStats>>,
    /// Per-batch breakdown of a `wcc stream` replay; `null` for the one-shot
    /// modes, and capped for long `wcc serve` runs (see [`JsonServe`]).
    batches: Option<Vec<JsonBatch>>,
    /// `wcc serve` only: ingest aggregates and server telemetry.
    serve: Option<JsonServe>,
    /// Component size histogram (descending); `null` unless `--sizes`.
    component_sizes: Option<Vec<usize>>,
    /// Worker-pool telemetry for the whole process (cumulative dispatch,
    /// spawn, steal and park counters — see `wcc_mpc::PoolTelemetry`);
    /// `null` when the run never engaged the threaded backend.
    pool: Option<PoolTelemetry>,
    /// Walk-kernel telemetry for the whole process (cumulative steps, real
    /// moves vs compressed stays, keystream words, batch refills and spec
    /// lane-group fallbacks — see `wcc_mpc::WalkTelemetry`); `null` when the
    /// run never simulated a walk. Like `wall_time_ms` and `pool`, this is a
    /// simulator observable, not a model quantity: it is outside the stats
    /// the determinism contract pins.
    walk: Option<WalkTelemetry>,
}

/// The process-wide pool counters, or `None` if no threaded dispatch ever
/// happened (sequential runs report no pool at all rather than a row of
/// zeros).
fn pool_report() -> Option<PoolTelemetry> {
    let t = Executor::process_pool_telemetry();
    (t.dispatches > 0 || t.spawned_threads > 0).then_some(t)
}

/// The process-wide walk-kernel counters, or `None` if the run never
/// simulated a walk step (mirrors [`pool_report`]).
fn walk_report() -> Option<WalkTelemetry> {
    let t = wcc_mpc::walk_telemetry_snapshot();
    (t.steps > 0).then_some(t)
}

/// One `wcc stream` batch in the `--json` record: the same quantities the
/// run-level record reports (rounds/words/wall time), per batch, plus the
/// path the incremental engine took.
#[derive(Serialize)]
struct JsonBatch {
    index: usize,
    edges: usize,
    /// Insert ops in the batch (== `edges` for version-1 streams).
    insertions: usize,
    /// Turnstile delete ops in the batch (0 for version-1 streams).
    deletions: usize,
    new_vertices: usize,
    standing_merges: usize,
    /// Components this batch's deletions split off via the sketch path.
    splits: usize,
    /// Components the sketch re-certified as still connected after a
    /// structural deletion.
    sketch_recertifies: usize,
    /// `"fast-path"`, `"sketch-repair"` or `"recompute:<reason>"`.
    path: String,
    components_after: usize,
    rounds: u64,
    communication_words: u64,
    wall_time_ms: f64,
}

/// The `serve` object of a `wcc serve --json` record. When a repeated
/// schedule produces more than [`MAX_JSON_BATCHES`] batch entries, the
/// per-batch array is dropped from the record (`batches: null`) and only
/// these aggregates remain.
#[derive(Serialize)]
struct JsonServe {
    /// The actually bound address (real port even when 0 was requested).
    addr: String,
    /// Epochs published (= batches ingested).
    epochs: u64,
    /// Whether ingestion stopped because a client requested shutdown.
    shutdown_requested: bool,
    /// Ingest-side aggregates over every applied batch.
    ingest: JsonIngest,
    /// Server-side counters and the per-query service-time histogram.
    server: wcc_core::serve::ServerTelemetry,
}

/// Ingest aggregates of a `wcc serve` run.
#[derive(Serialize)]
struct JsonIngest {
    batches: usize,
    fast_path: usize,
    recomputes: usize,
    /// Mean per-batch ingest wall time, milliseconds — the number the
    /// ingest-slowdown-under-load experiment compares against a no-client
    /// baseline.
    mean_batch_ms: f64,
    max_batch_ms: f64,
}

/// Cap on the per-batch array in a `wcc serve --json` record.
const MAX_JSON_BATCHES: usize = 1000;

impl From<&BatchReport> for JsonBatch {
    fn from(r: &BatchReport) -> Self {
        JsonBatch {
            index: r.batch_index,
            edges: r.edges_in_batch,
            insertions: r.insertions,
            deletions: r.deletions,
            new_vertices: r.new_vertices,
            standing_merges: r.standing_merges,
            splits: r.splits,
            sketch_recertifies: r.sketch_recertifies,
            path: r.path.label().to_string(),
            components_after: r.components_after,
            rounds: r.rounds,
            communication_words: r.communication_words,
            wall_time_ms: r.wall_time_ms,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        mode: Mode::Run,
        path: String::new(),
        out_path: String::new(),
        batch_size: 4096,
        pack_ops: false,
        algorithm: "wcc".to_string(),
        lambda: 0.25,
        memory: 0,
        seed: 7,
        threads: 0,
        fast_path: true,
        show_sizes: false,
        json: false,
        addr: "127.0.0.1:0".to_string(),
        repeat: 1,
        ingest_delay_ms: 0.0,
        exit_after_s: 0.0,
    };
    let mut positionals_seen = 0usize;
    let mut flags_seen: Vec<&'static str> = Vec::new();
    while let Some(arg) = args.next() {
        if let Some(flag) = [
            "--algorithm",
            "--batch-size",
            "--ops",
            "--no-fast-path",
            "--lambda",
            "--memory",
            "--seed",
            "--threads",
            "--sizes",
            "--json",
            "--addr",
            "--repeat",
            "--ingest-delay-ms",
            "--exit-after",
        ]
        .into_iter()
        .find(|f| *f == arg.as_str())
        {
            flags_seen.push(flag);
        }
        match arg.as_str() {
            "stream" if positionals_seen == 0 => {
                opts.mode = Mode::Stream;
                positionals_seen += 1;
            }
            "pack" if positionals_seen == 0 => {
                opts.mode = Mode::Pack;
                positionals_seen += 1;
            }
            "serve" if positionals_seen == 0 => {
                opts.mode = Mode::Serve;
                positionals_seen += 1;
            }
            "--addr" => {
                opts.addr = args.next().ok_or("--addr needs a value")?;
            }
            "--repeat" => {
                opts.repeat = args
                    .next()
                    .ok_or("--repeat needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --repeat: {e}"))?;
            }
            "--ingest-delay-ms" => {
                opts.ingest_delay_ms = args
                    .next()
                    .ok_or("--ingest-delay-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --ingest-delay-ms: {e}"))?;
                if !opts.ingest_delay_ms.is_finite() || opts.ingest_delay_ms < 0.0 {
                    return Err("--ingest-delay-ms must be a finite non-negative number".into());
                }
            }
            "--exit-after" => {
                opts.exit_after_s = args
                    .next()
                    .ok_or("--exit-after needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --exit-after: {e}"))?;
                if !opts.exit_after_s.is_finite() || opts.exit_after_s < 0.0 {
                    return Err("--exit-after must be a finite non-negative number".into());
                }
            }
            "--algorithm" => {
                opts.algorithm = args.next().ok_or("--algorithm needs a value")?;
            }
            "--batch-size" => {
                opts.batch_size = args
                    .next()
                    .ok_or("--batch-size needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --batch-size: {e}"))?;
                if opts.batch_size == 0 {
                    return Err("--batch-size must be at least 1".to_string());
                }
            }
            "--ops" => opts.pack_ops = true,
            "--no-fast-path" => opts.fast_path = false,
            "--lambda" => {
                opts.lambda = args
                    .next()
                    .ok_or("--lambda needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --lambda: {e}"))?;
            }
            "--memory" => {
                opts.memory = args
                    .next()
                    .ok_or("--memory needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --memory: {e}"))?;
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--threads" => {
                let t: usize = args
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                // An explicit 0 means "one worker per available CPU" (same
                // convention as WCC_THREADS=0); only an *absent* flag defers
                // to the environment variable.
                opts.threads = if t == 0 { Executor::auto_threads() } else { t };
            }
            "--sizes" => opts.show_sizes = true,
            "--json" => opts.json = true,
            "--help" | "-h" => return Err("help".to_string()),
            other if opts.path.is_empty() && !other.starts_with('-') => {
                opts.path = other.to_string();
                positionals_seen += 1;
            }
            other
                if opts.mode == Mode::Pack
                    && opts.out_path.is_empty()
                    && !other.starts_with('-') =>
            {
                opts.out_path = other.to_string();
                positionals_seen += 1;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.path.is_empty() {
        return Err(match opts.mode {
            Mode::Run => "missing <edge-list-file>".to_string(),
            Mode::Stream | Mode::Serve => "missing <chunk-file>".to_string(),
            Mode::Pack => "missing <edge-list-file> and <chunk-file>".to_string(),
        });
    }
    if opts.mode == Mode::Pack && opts.out_path.is_empty() {
        return Err("pack: missing output <chunk-file>".to_string());
    }
    // Reject flags the selected mode never reads — silently ignoring
    // `--memory` on `wcc stream` (say) would let the user believe the budget
    // was applied when it was not.
    let (mode_name, applicable): (&str, &[&str]) = match opts.mode {
        Mode::Run => (
            "wcc <edge-list-file>",
            &[
                "--algorithm",
                "--lambda",
                "--memory",
                "--seed",
                "--threads",
                "--sizes",
                "--json",
            ],
        ),
        Mode::Stream => (
            "wcc stream",
            &[
                "--lambda",
                "--seed",
                "--threads",
                "--no-fast-path",
                "--sizes",
                "--json",
            ],
        ),
        Mode::Pack => ("wcc pack", &["--batch-size", "--ops"]),
        Mode::Serve => (
            "wcc serve",
            &[
                "--addr",
                "--repeat",
                "--ingest-delay-ms",
                "--exit-after",
                "--lambda",
                "--seed",
                "--threads",
                "--no-fast-path",
                "--json",
            ],
        ),
    };
    if let Some(flag) = flags_seen.iter().find(|f| !applicable.contains(f)) {
        return Err(format!("{flag} is not applicable to `{mode_name}`"));
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: wcc <edge-list-file> [--algorithm wcc|adaptive|sublinear|hash-to-min|union-find]\n\
         \x20          [--lambda <gap>] [--memory <words>] [--seed <u64>]\n\
         \x20          [--threads <n>] [--sizes] [--json]\n\
         \x20      wcc stream <chunk-file> [--lambda <gap>] [--seed <u64>] [--threads <n>]\n\
         \x20          [--no-fast-path] [--sizes] [--json]\n\
         \x20      wcc pack <edge-list-file> <chunk-file> [--batch-size <edges>] [--ops]\n\
         \x20      wcc serve <chunk-file> [--addr <host:port>] [--repeat <n>]\n\
         \x20          [--ingest-delay-ms <ms>] [--exit-after <secs>] [--lambda <gap>]\n\
         \x20          [--seed <u64>] [--threads <n>] [--no-fast-path] [--json]\n\
         \x20\n\
         \x20      --threads <n>: worker threads for the persistent-pool backend\n\
         \x20          (1 = sequential, 0 = one worker per available CPU; without\n\
         \x20          the flag, the WCC_THREADS environment variable decides,\n\
         \x20          where 0 likewise means one worker per CPU)"
    );
}

/// Component-size histogram for `--sizes`, largest component first (`None`
/// when the flag is off).
fn sorted_sizes(labels: &ComponentLabels, show_sizes: bool) -> Option<Vec<usize>> {
    show_sizes.then(|| {
        let mut sizes = labels.component_sizes();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    })
}

/// Prints the one-line machine-readable record for `--json`.
fn emit_json(report: &JsonReport) -> ExitCode {
    match serde_json::to_string(report) {
        Ok(line) => {
            println!("{line}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot serialize result: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Prints the truncated `--sizes` histogram of the human-readable output.
fn print_largest_sizes(sizes: &[usize]) {
    println!(
        "largest component sizes: {:?}",
        &sizes[..sizes.len().min(20)]
    );
}

/// `wcc pack`: text edge list → binary chunk stream (original ids are
/// preserved verbatim, one chunk per `--batch-size` edges). Fully streaming:
/// lines are parsed through one reusable buffer and at most one batch of
/// edges is resident at a time, so packing a 10⁸-edge input has flat RSS
/// (the old path materialised the whole edge list *and* an interned graph
/// before writing a single chunk).
fn run_pack(opts: &Options) -> ExitCode {
    let input = match std::fs::File::open(&opts.path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    let output = match std::fs::File::create(&opts.out_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", opts.out_path);
            return ExitCode::FAILURE;
        }
    };
    let reader = std::io::BufReader::new(input);
    let summary = match if opts.pack_ops {
        pack_op_list(reader, output, opts.batch_size)
    } else {
        pack_edge_list(reader, output, opts.batch_size)
    } {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot pack {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "packed {} {} into {} chunks of <= {} per chunk: {}",
        summary.edges,
        if opts.pack_ops { "ops" } else { "edges" },
        summary.chunks,
        opts.batch_size,
        opts.out_path
    );
    ExitCode::SUCCESS
}

/// `wcc stream`: replay a binary batch schedule through the incremental
/// engine, reporting per-batch paths and costs.
fn run_stream(opts: &Options) -> ExitCode {
    let exec = Executor::resolve(opts.threads);
    let batches = match wcc_mpc::stream::read_op_chunks_file_parallel(
        std::path::Path::new(&opts.path),
        &exec,
    ) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    if !opts.json {
        println!(
            "loaded {}: {} batches, {} ops",
            opts.path,
            batches.len(),
            batches.iter().map(Vec::len).sum::<usize>()
        );
    }

    let params = StreamParams::laptop_scale()
        .with_lambda(opts.lambda)
        .with_fast_path(opts.fast_path)
        .with_threads(opts.threads);
    let mut engine = IncrementalComponents::new(params, opts.seed);
    let started = Instant::now();
    let reports = match engine.apply_ops_schedule(&batches) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wall_time_ms = started.elapsed().as_secs_f64() * 1e3;
    let labels = engine.labels();
    let stats = engine.stats();
    let sizes = sorted_sizes(&labels, opts.show_sizes);

    if opts.json {
        return emit_json(&JsonReport {
            algorithm: "stream".to_string(),
            input: opts.path.clone(),
            vertices: engine.num_vertices(),
            edges: engine.num_edges(),
            seed: opts.seed,
            components: labels.num_components(),
            total_rounds: Some(stats.total_rounds()),
            communication_words: Some(stats.total_communication_words()),
            max_machine_load_words: Some(stats.max_machine_load_words()),
            memory_violations: Some(stats.memory_violations()),
            tuple_width: Some(
                TupleWidth::negotiate(engine.num_vertices())
                    .label()
                    .to_string(),
            ),
            shuffled_bytes: Some(stats.total_shuffled_bytes()),
            wall_time_ms,
            phases: Some(stats.phases().to_vec()),
            batches: Some(reports.iter().map(JsonBatch::from).collect()),
            serve: None,
            component_sizes: sizes,
            pool: pool_report(),
            walk: walk_report(),
        });
    }

    for r in &reports {
        println!(
            "batch {:>4}: {:>7} ops ({:>7} ins, {:>6} del), {:>6} new vertices, \
             {:>3} standing merges, {:>3} splits -> {:<32} \
             ({} rounds, {} words, {:.1} ms)",
            r.batch_index,
            r.edges_in_batch,
            r.insertions,
            r.deletions,
            r.new_vertices,
            r.standing_merges,
            r.splits,
            r.path.label(),
            r.rounds,
            r.communication_words,
            r.wall_time_ms
        );
    }
    let fast = reports.iter().filter(|r| r.path.is_fast()).count();
    println!(
        "replayed {} batches ({} fast-path, {} sketch splits, {} sketch recertifies, \
         {} recomputes): {} vertices, {} edges",
        reports.len(),
        fast,
        engine.splits(),
        engine.sketch_recertifies(),
        engine.recomputes(),
        engine.num_vertices(),
        engine.num_edges()
    );
    println!("components: {}", labels.num_components());
    println!("simulated MPC rounds: {}", stats.total_rounds());
    if let Some(sizes) = sizes {
        print_largest_sizes(&sizes);
    }
    ExitCode::SUCCESS
}

/// `wcc serve`: ingest a batch schedule (possibly repeatedly) while a TCP
/// server answers component queries from epoch snapshots. See the module
/// docs for the stdout contract (`LISTENING <addr>` first, JSON record
/// last).
fn run_serve(opts: &Options) -> ExitCode {
    let exec = Executor::resolve(opts.threads);
    let batches = match wcc_mpc::stream::read_op_chunks_file_parallel(
        std::path::Path::new(&opts.path),
        &exec,
    ) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    let server = match wcc_core::serve::Server::bind(opts.addr.as_str()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    // First stdout line, always: harnesses parse the real bound address
    // from here (the requested port may have been 0).
    println!("LISTENING {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let params = StreamParams::laptop_scale()
        .with_lambda(opts.lambda)
        .with_fast_path(opts.fast_path)
        .with_threads(opts.threads);
    let mut engine = IncrementalComponents::new(params, opts.seed);
    let started = Instant::now();
    let mut reports: Vec<BatchReport> = Vec::new();
    let mut epoch = 0u64;
    let mut passes = 0usize;
    'ingest: loop {
        if batches.is_empty() {
            break; // nothing to ingest; an unbounded --repeat must not spin
        }
        for batch in &batches {
            if server.shutdown_requested() {
                break 'ingest;
            }
            let report = match engine.apply_ops_batch(batch) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            epoch += 1;
            server.publish(engine.snapshot(epoch));
            reports.push(report);
            if opts.ingest_delay_ms > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(
                    opts.ingest_delay_ms / 1e3,
                ));
            }
        }
        passes += 1;
        if opts.repeat != 0 && passes >= opts.repeat {
            break;
        }
    }
    let ingest_wall_ms = started.elapsed().as_secs_f64() * 1e3;
    if !opts.json {
        let fast = reports.iter().filter(|r| r.path.is_fast()).count();
        println!(
            "INGESTED {} batches ({} fast-path, {} recomputes) in {:.1} ms: \
             {} vertices, {} edges, {} components",
            reports.len(),
            fast,
            engine.recomputes(),
            ingest_wall_ms,
            engine.num_vertices(),
            engine.num_edges(),
            engine.num_components()
        );
        let _ = std::io::stdout().flush();
    }

    // Keep serving until a client asks us to stop (or the deadline hits).
    let deadline = (opts.exit_after_s > 0.0)
        .then(|| Instant::now() + std::time::Duration::from_secs_f64(opts.exit_after_s));
    while !server.shutdown_requested() {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }

    let wall_time_ms = started.elapsed().as_secs_f64() * 1e3;
    let telemetry = server.telemetry();
    let shutdown_requested = server.shutdown_requested();
    let addr = server.local_addr().to_string();
    if let Err(e) = server.shutdown() {
        eprintln!("error: shutdown: {e}");
        return ExitCode::FAILURE;
    }

    let stats = engine.stats();
    let fast = reports.iter().filter(|r| r.path.is_fast()).count();
    let mean_batch_ms = if reports.is_empty() {
        0.0
    } else {
        reports.iter().map(|r| r.wall_time_ms).sum::<f64>() / reports.len() as f64
    };
    let max_batch_ms = reports.iter().map(|r| r.wall_time_ms).fold(0.0, f64::max);

    if opts.json {
        return emit_json(&JsonReport {
            algorithm: "serve".to_string(),
            input: opts.path.clone(),
            vertices: engine.num_vertices(),
            edges: engine.num_edges(),
            seed: opts.seed,
            components: engine.num_components(),
            total_rounds: Some(stats.total_rounds()),
            communication_words: Some(stats.total_communication_words()),
            max_machine_load_words: Some(stats.max_machine_load_words()),
            memory_violations: Some(stats.memory_violations()),
            tuple_width: Some(
                TupleWidth::negotiate(engine.num_vertices())
                    .label()
                    .to_string(),
            ),
            shuffled_bytes: Some(stats.total_shuffled_bytes()),
            wall_time_ms,
            phases: Some(stats.phases().to_vec()),
            batches: (reports.len() <= MAX_JSON_BATCHES)
                .then(|| reports.iter().map(JsonBatch::from).collect()),
            serve: Some(JsonServe {
                addr,
                epochs: epoch,
                shutdown_requested,
                ingest: JsonIngest {
                    batches: reports.len(),
                    fast_path: fast,
                    recomputes: engine.recomputes(),
                    mean_batch_ms,
                    max_batch_ms,
                },
                server: telemetry,
            }),
            component_sizes: None,
            pool: pool_report(),
            walk: walk_report(),
        });
    }

    println!(
        "served {} queries ({} not-found) over {} connections: \
         p50 {:.1} us, p99 {:.1} us, p999 {:.1} us",
        telemetry.queries,
        telemetry.not_found,
        telemetry.connections,
        telemetry.latency_ns.p50 as f64 / 1e3,
        telemetry.latency_ns.p99 as f64 / 1e3,
        telemetry.latency_ns.p999 as f64 / 1e3
    );
    println!(
        "mean batch ingest {:.3} ms (max {:.3} ms), {} epochs published, shutdown {}",
        mean_batch_ms,
        max_batch_ms,
        epoch,
        if shutdown_requested {
            "requested by client"
        } else {
            "by deadline"
        }
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };
    match opts.mode {
        Mode::Run => {}
        Mode::Stream => return run_stream(&opts),
        Mode::Pack => return run_pack(&opts),
        Mode::Serve => return run_serve(&opts),
    }
    let loaded = match read_edge_list_file(std::path::Path::new(&opts.path)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    let g = loaded.graph;
    if !opts.json {
        println!(
            "loaded {}: {} vertices, {} edges",
            opts.path,
            g.num_vertices(),
            g.num_edges()
        );
    }

    let started = Instant::now();
    let (labels, stats): (ComponentLabels, Option<RoundStats>) = match opts.algorithm.as_str() {
        "wcc" => match well_connected_components(
            &g,
            opts.lambda,
            &Params::laptop_scale().with_threads(opts.threads),
            opts.seed,
        ) {
            Ok(r) => (r.components, Some(r.stats)),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        "adaptive" => match adaptive_components(
            &g,
            &Params::laptop_scale().with_threads(opts.threads),
            opts.seed,
        ) {
            Ok(r) => (r.components, Some(r.stats)),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        "sublinear" => {
            let memory = if opts.memory > 0 {
                opts.memory
            } else {
                (g.num_vertices() as f64).sqrt().ceil() as usize * 8
            };
            match sublinear_components(
                &g,
                memory,
                &SublinearParams::laptop_scale().with_threads(opts.threads),
                opts.seed,
            ) {
                Ok(r) => (r.components, Some(r.stats)),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "hash-to-min" => {
            let mut ctx = MpcContext::new(
                MpcConfig::for_input_size(2 * g.num_edges() + g.num_vertices(), 0.5)
                    .permissive()
                    .with_threads(opts.threads),
            );
            let r = run_baseline("hash-to-min", &g, &mut ctx, opts.seed);
            (r.labels, Some(ctx.into_stats()))
        }
        "union-find" => (wcc_baselines::sequential_components(&g), None),
        other => {
            eprintln!("error: unknown algorithm {other:?}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let wall_time_ms = started.elapsed().as_secs_f64() * 1e3;
    let sizes = sorted_sizes(&labels, opts.show_sizes);

    if opts.json {
        return emit_json(&JsonReport {
            algorithm: opts.algorithm.clone(),
            input: opts.path.clone(),
            vertices: g.num_vertices(),
            edges: g.num_edges(),
            seed: opts.seed,
            components: labels.num_components(),
            total_rounds: stats.as_ref().map(RoundStats::total_rounds),
            communication_words: stats.as_ref().map(RoundStats::total_communication_words),
            max_machine_load_words: stats.as_ref().map(RoundStats::max_machine_load_words),
            memory_violations: stats.as_ref().map(RoundStats::memory_violations),
            tuple_width: stats
                .as_ref()
                .map(|_| TupleWidth::negotiate(g.num_vertices()).label().to_string()),
            shuffled_bytes: stats.as_ref().map(RoundStats::total_shuffled_bytes),
            wall_time_ms,
            phases: stats.as_ref().map(|s| s.phases().to_vec()),
            batches: None,
            serve: None,
            component_sizes: sizes,
            pool: pool_report(),
            walk: walk_report(),
        });
    }

    println!("components: {}", labels.num_components());
    match stats.as_ref().map(RoundStats::total_rounds) {
        Some(r) => println!("simulated MPC rounds: {r}"),
        None => println!("simulated MPC rounds: n/a (sequential reference)"),
    }
    if let Some(sizes) = sizes {
        print_largest_sizes(&sizes);
    }
    ExitCode::SUCCESS
}
