//! `wcc` — command-line front end for the connectivity algorithms.
//!
//! ```text
//! USAGE:
//!   wcc <edge-list-file> [--algorithm wcc|adaptive|sublinear|hash-to-min|union-find]
//!                        [--lambda <gap>] [--memory <words>] [--seed <u64>]
//!                        [--threads <n>] [--sizes] [--json]
//!
//! The edge-list format is one `u v` pair per line; `#`/`%` lines are comments.
//! Prints the number of components, the simulated MPC rounds, and (with
//! --sizes) the component size histogram. With --json, prints a single
//! machine-readable result record on stdout instead (the `exp_*` binaries
//! and external scripts consume this rather than scraping the human
//! output).
//! ```
//!
//! Example:
//! ```text
//! cargo run --release -p wcc-bench --bin wcc -- my_graph.txt --algorithm adaptive --sizes
//! ```

use std::process::ExitCode;
use std::time::Instant;

use serde::Serialize;
use wcc_baselines::run_baseline;
use wcc_core::prelude::*;
use wcc_core::sublinear::{sublinear_components, SublinearParams};
use wcc_graph::prelude::*;
use wcc_mpc::{MpcConfig, MpcContext, PhaseStats, RoundStats};

struct Options {
    path: String,
    algorithm: String,
    lambda: f64,
    memory: usize,
    seed: u64,
    /// Execution-backend worker threads (0 = resolve from WCC_THREADS).
    threads: usize,
    show_sizes: bool,
    json: bool,
}

/// The machine-readable record emitted by `--json`: everything the
/// experiment harness needs, in one line of JSON on stdout.
#[derive(Serialize)]
struct JsonReport {
    algorithm: String,
    input: String,
    vertices: usize,
    edges: usize,
    seed: u64,
    components: usize,
    /// Simulated MPC rounds; absent for the sequential reference.
    total_rounds: Option<u64>,
    /// Words of cross-machine communication; absent for the sequential
    /// reference.
    communication_words: Option<u64>,
    /// Largest simulated per-machine load, in words.
    max_machine_load_words: Option<usize>,
    /// Memory-budget violations recorded in permissive mode.
    memory_violations: Option<u64>,
    /// Wall-clock time of the algorithm run, in milliseconds.
    wall_time_ms: f64,
    /// Per-phase breakdown in execution order — each entry carries `name`,
    /// `rounds`, `communication_words` and `wall_time_ms` (the phase's
    /// wall-clock share of the run, a simulator observable rather than a
    /// model quantity). Absent for the sequential reference.
    phases: Option<Vec<PhaseStats>>,
    /// Component size histogram (descending); `null` unless `--sizes`.
    component_sizes: Option<Vec<usize>>,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        path: String::new(),
        algorithm: "wcc".to_string(),
        lambda: 0.25,
        memory: 0,
        seed: 7,
        threads: 0,
        show_sizes: false,
        json: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--algorithm" => {
                opts.algorithm = args.next().ok_or("--algorithm needs a value")?;
            }
            "--lambda" => {
                opts.lambda = args
                    .next()
                    .ok_or("--lambda needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --lambda: {e}"))?;
            }
            "--memory" => {
                opts.memory = args
                    .next()
                    .ok_or("--memory needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --memory: {e}"))?;
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--sizes" => opts.show_sizes = true,
            "--json" => opts.json = true,
            "--help" | "-h" => return Err("help".to_string()),
            other if opts.path.is_empty() && !other.starts_with('-') => {
                opts.path = other.to_string();
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.path.is_empty() {
        return Err("missing <edge-list-file>".to_string());
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: wcc <edge-list-file> [--algorithm wcc|adaptive|sublinear|hash-to-min|union-find]\n\
         \x20          [--lambda <gap>] [--memory <words>] [--seed <u64>]\n\
         \x20          [--threads <n>] [--sizes] [--json]"
    );
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };
    let loaded = match read_edge_list_file(std::path::Path::new(&opts.path)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    let g = loaded.graph;
    if !opts.json {
        println!(
            "loaded {}: {} vertices, {} edges",
            opts.path,
            g.num_vertices(),
            g.num_edges()
        );
    }

    let started = Instant::now();
    let (labels, stats): (ComponentLabels, Option<RoundStats>) = match opts.algorithm.as_str() {
        "wcc" => match well_connected_components(
            &g,
            opts.lambda,
            &Params::laptop_scale().with_threads(opts.threads),
            opts.seed,
        ) {
            Ok(r) => (r.components, Some(r.stats)),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        "adaptive" => match adaptive_components(
            &g,
            &Params::laptop_scale().with_threads(opts.threads),
            opts.seed,
        ) {
            Ok(r) => (r.components, Some(r.stats)),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        "sublinear" => {
            let memory = if opts.memory > 0 {
                opts.memory
            } else {
                (g.num_vertices() as f64).sqrt().ceil() as usize * 8
            };
            match sublinear_components(
                &g,
                memory,
                &SublinearParams::laptop_scale().with_threads(opts.threads),
                opts.seed,
            ) {
                Ok(r) => (r.components, Some(r.stats)),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "hash-to-min" => {
            let mut ctx = MpcContext::new(
                MpcConfig::for_input_size(2 * g.num_edges() + g.num_vertices(), 0.5)
                    .permissive()
                    .with_threads(opts.threads),
            );
            let r = run_baseline("hash-to-min", &g, &mut ctx, opts.seed);
            (r.labels, Some(ctx.into_stats()))
        }
        "union-find" => (wcc_baselines::sequential_components(&g), None),
        other => {
            eprintln!("error: unknown algorithm {other:?}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let wall_time_ms = started.elapsed().as_secs_f64() * 1e3;

    let sizes = opts.show_sizes.then(|| {
        let mut sizes = labels.component_sizes();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    });

    if opts.json {
        let report = JsonReport {
            algorithm: opts.algorithm.clone(),
            input: opts.path.clone(),
            vertices: g.num_vertices(),
            edges: g.num_edges(),
            seed: opts.seed,
            components: labels.num_components(),
            total_rounds: stats.as_ref().map(RoundStats::total_rounds),
            communication_words: stats.as_ref().map(RoundStats::total_communication_words),
            max_machine_load_words: stats.as_ref().map(RoundStats::max_machine_load_words),
            memory_violations: stats.as_ref().map(RoundStats::memory_violations),
            wall_time_ms,
            phases: stats.as_ref().map(|s| s.phases().to_vec()),
            component_sizes: sizes,
        };
        match serde_json::to_string(&report) {
            Ok(line) => println!("{line}"),
            Err(e) => {
                eprintln!("error: cannot serialize result: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    println!("components: {}", labels.num_components());
    match stats.as_ref().map(RoundStats::total_rounds) {
        Some(r) => println!("simulated MPC rounds: {r}"),
        None => println!("simulated MPC rounds: n/a (sequential reference)"),
    }
    if let Some(sizes) = sizes {
        println!(
            "largest component sizes: {:?}",
            &sizes[..sizes.len().min(20)]
        );
    }
    ExitCode::SUCCESS
}
