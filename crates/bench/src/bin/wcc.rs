//! `wcc` — command-line front end for the connectivity algorithms.
//!
//! ```text
//! USAGE:
//!   wcc <edge-list-file> [--algorithm wcc|adaptive|sublinear|hash-to-min|union-find]
//!                        [--lambda <gap>] [--memory <words>] [--seed <u64>]
//!                        [--threads <n>] [--sizes] [--json]
//!   wcc stream <chunk-file> [--lambda <gap>] [--seed <u64>] [--threads <n>]
//!                           [--no-fast-path] [--sizes] [--json]
//!   wcc pack <edge-list-file> <chunk-file> [--batch-size <edges>]
//!
//! The edge-list format is one `u v` pair per line; `#`/`%` lines are comments.
//! Prints the number of components, the simulated MPC rounds, and (with
//! --sizes) the component size histogram. With --json, prints a single
//! machine-readable result record on stdout instead (the `exp_*` binaries
//! and external scripts consume this rather than scraping the human
//! output); threaded runs include a `pool` object with the persistent
//! worker pool's telemetry (dispatches, spawned threads, stolen chunks,
//! park/unpark counts), and runs that simulate random walks include a
//! `walk` object with the walk-kernel telemetry (steps, real moves vs
//! compressed stays, keystream words, refills, spec lane-group
//! fallbacks). `--threads 0` means one worker per available CPU;
//! without the flag, `WCC_THREADS` decides (same 0-means-auto convention).
//!
//! `wcc stream` replays a batch schedule in the binary chunk format (magic
//! `WCCS`, see `wcc_graph::io`) through the incremental engine: chunks are
//! decoded in parallel through the executor, each chunk is one batch, and
//! the per-batch path (union-find fast path vs full pipeline recompute),
//! rounds, words and wall time are reported — in a `batches` array inside
//! the same `--json` record the one-shot modes emit. `wcc pack` converts a
//! text edge list into that format.
//! ```
//!
//! Example:
//! ```text
//! cargo run --release -p wcc-bench --bin wcc -- my_graph.txt --algorithm adaptive --sizes
//! cargo run --release -p wcc-bench --bin wcc -- pack my_graph.txt batches.wccs --batch-size 1000
//! cargo run --release -p wcc-bench --bin wcc -- stream batches.wccs --json
//! ```

use std::process::ExitCode;
use std::time::Instant;

use serde::Serialize;
use wcc_baselines::run_baseline;
use wcc_core::prelude::*;
use wcc_core::sublinear::{sublinear_components, SublinearParams};
use wcc_graph::prelude::*;
use wcc_mpc::{
    Executor, MpcConfig, MpcContext, PhaseStats, PoolTelemetry, RoundStats, TupleWidth,
    WalkTelemetry,
};

#[derive(PartialEq)]
enum Mode {
    /// One-shot: load an edge list, run one algorithm.
    Run,
    /// Replay a binary batch schedule through the incremental engine.
    Stream,
    /// Convert a text edge list into the binary chunk format.
    Pack,
}

struct Options {
    mode: Mode,
    path: String,
    /// `pack` only: the output chunk file.
    out_path: String,
    /// `pack` only: edges per chunk.
    batch_size: usize,
    algorithm: String,
    lambda: f64,
    memory: usize,
    seed: u64,
    /// Execution-backend worker threads. An absent `--threads` flag leaves
    /// this 0 = resolve from WCC_THREADS; an explicit `--threads 0` is
    /// rewritten to one worker per available CPU at parse time.
    threads: usize,
    /// `stream` only: disable the union-find fast path (every batch then
    /// recomputes, which is the slow baseline the fast path is benched
    /// against).
    fast_path: bool,
    show_sizes: bool,
    json: bool,
}

/// The machine-readable record emitted by `--json`: everything the
/// experiment harness needs, in one line of JSON on stdout.
#[derive(Serialize)]
struct JsonReport {
    algorithm: String,
    input: String,
    vertices: usize,
    edges: usize,
    seed: u64,
    components: usize,
    /// Simulated MPC rounds; absent for the sequential reference.
    total_rounds: Option<u64>,
    /// Words of cross-machine communication; absent for the sequential
    /// reference.
    communication_words: Option<u64>,
    /// Largest simulated per-machine load, in words.
    max_machine_load_words: Option<usize>,
    /// Memory-budget violations recorded in permissive mode.
    memory_violations: Option<u64>,
    /// The tuple width the data plane negotiated for this input
    /// (`"compact-u32"` or `"wide-u64"`, see `wcc_mpc::compact`); absent for
    /// the sequential reference.
    tuple_width: Option<String>,
    /// Total bytes the negotiated representation moved for the charged
    /// communication; absent for the sequential reference.
    shuffled_bytes: Option<u64>,
    /// Wall-clock time of the algorithm run, in milliseconds.
    wall_time_ms: f64,
    /// Per-phase breakdown in execution order — each entry carries `name`,
    /// `rounds`, `communication_words`, `shuffled_bytes` (what the
    /// negotiated representation actually moved) and `wall_time_ms` (the
    /// phase's wall-clock share of the run, a simulator observable rather
    /// than a model quantity). Absent for the sequential reference.
    phases: Option<Vec<PhaseStats>>,
    /// Per-batch breakdown of a `wcc stream` replay; `null` for the one-shot
    /// modes.
    batches: Option<Vec<JsonBatch>>,
    /// Component size histogram (descending); `null` unless `--sizes`.
    component_sizes: Option<Vec<usize>>,
    /// Worker-pool telemetry for the whole process (cumulative dispatch,
    /// spawn, steal and park counters — see `wcc_mpc::PoolTelemetry`);
    /// `null` when the run never engaged the threaded backend.
    pool: Option<PoolTelemetry>,
    /// Walk-kernel telemetry for the whole process (cumulative steps, real
    /// moves vs compressed stays, keystream words, batch refills and spec
    /// lane-group fallbacks — see `wcc_mpc::WalkTelemetry`); `null` when the
    /// run never simulated a walk. Like `wall_time_ms` and `pool`, this is a
    /// simulator observable, not a model quantity: it is outside the stats
    /// the determinism contract pins.
    walk: Option<WalkTelemetry>,
}

/// The process-wide pool counters, or `None` if no threaded dispatch ever
/// happened (sequential runs report no pool at all rather than a row of
/// zeros).
fn pool_report() -> Option<PoolTelemetry> {
    let t = Executor::process_pool_telemetry();
    (t.dispatches > 0 || t.spawned_threads > 0).then_some(t)
}

/// The process-wide walk-kernel counters, or `None` if the run never
/// simulated a walk step (mirrors [`pool_report`]).
fn walk_report() -> Option<WalkTelemetry> {
    let t = wcc_mpc::walk_telemetry_snapshot();
    (t.steps > 0).then_some(t)
}

/// One `wcc stream` batch in the `--json` record: the same quantities the
/// run-level record reports (rounds/words/wall time), per batch, plus the
/// path the incremental engine took.
#[derive(Serialize)]
struct JsonBatch {
    index: usize,
    edges: usize,
    new_vertices: usize,
    standing_merges: usize,
    /// `"fast-path"` or `"recompute:<reason>"`.
    path: String,
    components_after: usize,
    rounds: u64,
    communication_words: u64,
    wall_time_ms: f64,
}

impl From<&BatchReport> for JsonBatch {
    fn from(r: &BatchReport) -> Self {
        JsonBatch {
            index: r.batch_index,
            edges: r.edges_in_batch,
            new_vertices: r.new_vertices,
            standing_merges: r.standing_merges,
            path: r.path.label().to_string(),
            components_after: r.components_after,
            rounds: r.rounds,
            communication_words: r.communication_words,
            wall_time_ms: r.wall_time_ms,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        mode: Mode::Run,
        path: String::new(),
        out_path: String::new(),
        batch_size: 4096,
        algorithm: "wcc".to_string(),
        lambda: 0.25,
        memory: 0,
        seed: 7,
        threads: 0,
        fast_path: true,
        show_sizes: false,
        json: false,
    };
    let mut positionals_seen = 0usize;
    let mut flags_seen: Vec<&'static str> = Vec::new();
    while let Some(arg) = args.next() {
        if let Some(flag) = [
            "--algorithm",
            "--batch-size",
            "--no-fast-path",
            "--lambda",
            "--memory",
            "--seed",
            "--threads",
            "--sizes",
            "--json",
        ]
        .into_iter()
        .find(|f| *f == arg.as_str())
        {
            flags_seen.push(flag);
        }
        match arg.as_str() {
            "stream" if positionals_seen == 0 => {
                opts.mode = Mode::Stream;
                positionals_seen += 1;
            }
            "pack" if positionals_seen == 0 => {
                opts.mode = Mode::Pack;
                positionals_seen += 1;
            }
            "--algorithm" => {
                opts.algorithm = args.next().ok_or("--algorithm needs a value")?;
            }
            "--batch-size" => {
                opts.batch_size = args
                    .next()
                    .ok_or("--batch-size needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --batch-size: {e}"))?;
                if opts.batch_size == 0 {
                    return Err("--batch-size must be at least 1".to_string());
                }
            }
            "--no-fast-path" => opts.fast_path = false,
            "--lambda" => {
                opts.lambda = args
                    .next()
                    .ok_or("--lambda needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --lambda: {e}"))?;
            }
            "--memory" => {
                opts.memory = args
                    .next()
                    .ok_or("--memory needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --memory: {e}"))?;
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--threads" => {
                let t: usize = args
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                // An explicit 0 means "one worker per available CPU" (same
                // convention as WCC_THREADS=0); only an *absent* flag defers
                // to the environment variable.
                opts.threads = if t == 0 { Executor::auto_threads() } else { t };
            }
            "--sizes" => opts.show_sizes = true,
            "--json" => opts.json = true,
            "--help" | "-h" => return Err("help".to_string()),
            other if opts.path.is_empty() && !other.starts_with('-') => {
                opts.path = other.to_string();
                positionals_seen += 1;
            }
            other
                if opts.mode == Mode::Pack
                    && opts.out_path.is_empty()
                    && !other.starts_with('-') =>
            {
                opts.out_path = other.to_string();
                positionals_seen += 1;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.path.is_empty() {
        return Err(match opts.mode {
            Mode::Run => "missing <edge-list-file>".to_string(),
            Mode::Stream => "missing <chunk-file>".to_string(),
            Mode::Pack => "missing <edge-list-file> and <chunk-file>".to_string(),
        });
    }
    if opts.mode == Mode::Pack && opts.out_path.is_empty() {
        return Err("pack: missing output <chunk-file>".to_string());
    }
    // Reject flags the selected mode never reads — silently ignoring
    // `--memory` on `wcc stream` (say) would let the user believe the budget
    // was applied when it was not.
    let (mode_name, applicable): (&str, &[&str]) = match opts.mode {
        Mode::Run => (
            "wcc <edge-list-file>",
            &[
                "--algorithm",
                "--lambda",
                "--memory",
                "--seed",
                "--threads",
                "--sizes",
                "--json",
            ],
        ),
        Mode::Stream => (
            "wcc stream",
            &[
                "--lambda",
                "--seed",
                "--threads",
                "--no-fast-path",
                "--sizes",
                "--json",
            ],
        ),
        Mode::Pack => ("wcc pack", &["--batch-size"]),
    };
    if let Some(flag) = flags_seen.iter().find(|f| !applicable.contains(f)) {
        return Err(format!("{flag} is not applicable to `{mode_name}`"));
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: wcc <edge-list-file> [--algorithm wcc|adaptive|sublinear|hash-to-min|union-find]\n\
         \x20          [--lambda <gap>] [--memory <words>] [--seed <u64>]\n\
         \x20          [--threads <n>] [--sizes] [--json]\n\
         \x20      wcc stream <chunk-file> [--lambda <gap>] [--seed <u64>] [--threads <n>]\n\
         \x20          [--no-fast-path] [--sizes] [--json]\n\
         \x20      wcc pack <edge-list-file> <chunk-file> [--batch-size <edges>]\n\
         \x20\n\
         \x20      --threads <n>: worker threads for the persistent-pool backend\n\
         \x20          (1 = sequential, 0 = one worker per available CPU; without\n\
         \x20          the flag, the WCC_THREADS environment variable decides,\n\
         \x20          where 0 likewise means one worker per CPU)"
    );
}

/// Component-size histogram for `--sizes`, largest component first (`None`
/// when the flag is off).
fn sorted_sizes(labels: &ComponentLabels, show_sizes: bool) -> Option<Vec<usize>> {
    show_sizes.then(|| {
        let mut sizes = labels.component_sizes();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    })
}

/// Prints the one-line machine-readable record for `--json`.
fn emit_json(report: &JsonReport) -> ExitCode {
    match serde_json::to_string(report) {
        Ok(line) => {
            println!("{line}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot serialize result: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Prints the truncated `--sizes` histogram of the human-readable output.
fn print_largest_sizes(sizes: &[usize]) {
    println!(
        "largest component sizes: {:?}",
        &sizes[..sizes.len().min(20)]
    );
}

/// `wcc pack`: text edge list → binary chunk stream (original ids are
/// preserved verbatim, one chunk per `--batch-size` edges).
fn run_pack(opts: &Options) -> ExitCode {
    let loaded = match read_edge_list_file(std::path::Path::new(&opts.path)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    let raw_edges: Vec<(u64, u64)> = loaded
        .graph
        .edge_iter()
        .map(|(u, v)| (loaded.original_ids[u], loaded.original_ids[v]))
        .collect();
    let chunks: Vec<&[(u64, u64)]> = raw_edges.chunks(opts.batch_size).collect();
    if let Err(e) = write_edge_chunks_file(&chunks, std::path::Path::new(&opts.out_path)) {
        eprintln!("error: cannot write {}: {e}", opts.out_path);
        return ExitCode::FAILURE;
    }
    println!(
        "packed {} edges into {} chunks of <= {} edges: {}",
        raw_edges.len(),
        chunks.len(),
        opts.batch_size,
        opts.out_path
    );
    ExitCode::SUCCESS
}

/// `wcc stream`: replay a binary batch schedule through the incremental
/// engine, reporting per-batch paths and costs.
fn run_stream(opts: &Options) -> ExitCode {
    let exec = Executor::resolve(opts.threads);
    let batches = match wcc_mpc::stream::read_edge_chunks_file_parallel(
        std::path::Path::new(&opts.path),
        &exec,
    ) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    if !opts.json {
        println!(
            "loaded {}: {} batches, {} edges",
            opts.path,
            batches.len(),
            batches.iter().map(Vec::len).sum::<usize>()
        );
    }

    let params = StreamParams::laptop_scale()
        .with_lambda(opts.lambda)
        .with_fast_path(opts.fast_path)
        .with_threads(opts.threads);
    let mut engine = IncrementalComponents::new(params, opts.seed);
    let started = Instant::now();
    let reports = match engine.apply_schedule(&batches) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wall_time_ms = started.elapsed().as_secs_f64() * 1e3;
    let labels = engine.labels();
    let stats = engine.stats();
    let sizes = sorted_sizes(&labels, opts.show_sizes);

    if opts.json {
        return emit_json(&JsonReport {
            algorithm: "stream".to_string(),
            input: opts.path.clone(),
            vertices: engine.num_vertices(),
            edges: engine.num_edges(),
            seed: opts.seed,
            components: labels.num_components(),
            total_rounds: Some(stats.total_rounds()),
            communication_words: Some(stats.total_communication_words()),
            max_machine_load_words: Some(stats.max_machine_load_words()),
            memory_violations: Some(stats.memory_violations()),
            tuple_width: Some(
                TupleWidth::negotiate(engine.num_vertices())
                    .label()
                    .to_string(),
            ),
            shuffled_bytes: Some(stats.total_shuffled_bytes()),
            wall_time_ms,
            phases: Some(stats.phases().to_vec()),
            batches: Some(reports.iter().map(JsonBatch::from).collect()),
            component_sizes: sizes,
            pool: pool_report(),
            walk: walk_report(),
        });
    }

    for r in &reports {
        println!(
            "batch {:>4}: {:>7} edges, {:>6} new vertices, {:>3} standing merges -> {:<32} \
             ({} rounds, {} words, {:.1} ms)",
            r.batch_index,
            r.edges_in_batch,
            r.new_vertices,
            r.standing_merges,
            r.path.label(),
            r.rounds,
            r.communication_words,
            r.wall_time_ms
        );
    }
    let fast = reports.iter().filter(|r| r.path.is_fast()).count();
    println!(
        "replayed {} batches ({} fast-path, {} recomputes): {} vertices, {} edges",
        reports.len(),
        fast,
        engine.recomputes(),
        engine.num_vertices(),
        engine.num_edges()
    );
    println!("components: {}", labels.num_components());
    println!("simulated MPC rounds: {}", stats.total_rounds());
    if let Some(sizes) = sizes {
        print_largest_sizes(&sizes);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };
    match opts.mode {
        Mode::Run => {}
        Mode::Stream => return run_stream(&opts),
        Mode::Pack => return run_pack(&opts),
    }
    let loaded = match read_edge_list_file(std::path::Path::new(&opts.path)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    let g = loaded.graph;
    if !opts.json {
        println!(
            "loaded {}: {} vertices, {} edges",
            opts.path,
            g.num_vertices(),
            g.num_edges()
        );
    }

    let started = Instant::now();
    let (labels, stats): (ComponentLabels, Option<RoundStats>) = match opts.algorithm.as_str() {
        "wcc" => match well_connected_components(
            &g,
            opts.lambda,
            &Params::laptop_scale().with_threads(opts.threads),
            opts.seed,
        ) {
            Ok(r) => (r.components, Some(r.stats)),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        "adaptive" => match adaptive_components(
            &g,
            &Params::laptop_scale().with_threads(opts.threads),
            opts.seed,
        ) {
            Ok(r) => (r.components, Some(r.stats)),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        "sublinear" => {
            let memory = if opts.memory > 0 {
                opts.memory
            } else {
                (g.num_vertices() as f64).sqrt().ceil() as usize * 8
            };
            match sublinear_components(
                &g,
                memory,
                &SublinearParams::laptop_scale().with_threads(opts.threads),
                opts.seed,
            ) {
                Ok(r) => (r.components, Some(r.stats)),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "hash-to-min" => {
            let mut ctx = MpcContext::new(
                MpcConfig::for_input_size(2 * g.num_edges() + g.num_vertices(), 0.5)
                    .permissive()
                    .with_threads(opts.threads),
            );
            let r = run_baseline("hash-to-min", &g, &mut ctx, opts.seed);
            (r.labels, Some(ctx.into_stats()))
        }
        "union-find" => (wcc_baselines::sequential_components(&g), None),
        other => {
            eprintln!("error: unknown algorithm {other:?}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let wall_time_ms = started.elapsed().as_secs_f64() * 1e3;
    let sizes = sorted_sizes(&labels, opts.show_sizes);

    if opts.json {
        return emit_json(&JsonReport {
            algorithm: opts.algorithm.clone(),
            input: opts.path.clone(),
            vertices: g.num_vertices(),
            edges: g.num_edges(),
            seed: opts.seed,
            components: labels.num_components(),
            total_rounds: stats.as_ref().map(RoundStats::total_rounds),
            communication_words: stats.as_ref().map(RoundStats::total_communication_words),
            max_machine_load_words: stats.as_ref().map(RoundStats::max_machine_load_words),
            memory_violations: stats.as_ref().map(RoundStats::memory_violations),
            tuple_width: stats
                .as_ref()
                .map(|_| TupleWidth::negotiate(g.num_vertices()).label().to_string()),
            shuffled_bytes: stats.as_ref().map(RoundStats::total_shuffled_bytes),
            wall_time_ms,
            phases: stats.as_ref().map(|s| s.phases().to_vec()),
            batches: None,
            component_sizes: sizes,
            pool: pool_report(),
            walk: walk_report(),
        });
    }

    println!("components: {}", labels.num_components());
    match stats.as_ref().map(RoundStats::total_rounds) {
        Some(r) => println!("simulated MPC rounds: {r}"),
        None => println!("simulated MPC rounds: n/a (sequential reference)"),
    }
    if let Some(sizes) = sizes {
        print_largest_sizes(&sizes);
    }
    ExitCode::SUCCESS
}
