//! `wcc` — command-line front end for the connectivity algorithms.
//!
//! ```text
//! USAGE:
//!   wcc <edge-list-file> [--algorithm wcc|adaptive|sublinear|hash-to-min|union-find]
//!                        [--lambda <gap>] [--memory <words>] [--seed <u64>]
//!                        [--threads <n>] [--sizes]
//!
//! The edge-list format is one `u v` pair per line; `#`/`%` lines are comments.
//! Prints the number of components, the simulated MPC rounds, and (with
//! --sizes) the component size histogram.
//! ```
//!
//! Example:
//! ```text
//! cargo run --release -p wcc-bench --bin wcc -- my_graph.txt --algorithm adaptive --sizes
//! ```

use std::process::ExitCode;

use wcc_baselines::run_baseline;
use wcc_core::prelude::*;
use wcc_core::sublinear::{sublinear_components, SublinearParams};
use wcc_graph::prelude::*;
use wcc_mpc::{MpcConfig, MpcContext};

struct Options {
    path: String,
    algorithm: String,
    lambda: f64,
    memory: usize,
    seed: u64,
    /// Execution-backend worker threads (0 = resolve from WCC_THREADS).
    threads: usize,
    show_sizes: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        path: String::new(),
        algorithm: "wcc".to_string(),
        lambda: 0.25,
        memory: 0,
        seed: 7,
        threads: 0,
        show_sizes: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--algorithm" => {
                opts.algorithm = args.next().ok_or("--algorithm needs a value")?;
            }
            "--lambda" => {
                opts.lambda = args
                    .next()
                    .ok_or("--lambda needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --lambda: {e}"))?;
            }
            "--memory" => {
                opts.memory = args
                    .next()
                    .ok_or("--memory needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --memory: {e}"))?;
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--sizes" => opts.show_sizes = true,
            "--help" | "-h" => return Err("help".to_string()),
            other if opts.path.is_empty() && !other.starts_with('-') => {
                opts.path = other.to_string();
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.path.is_empty() {
        return Err("missing <edge-list-file>".to_string());
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: wcc <edge-list-file> [--algorithm wcc|adaptive|sublinear|hash-to-min|union-find]\n\
         \x20          [--lambda <gap>] [--memory <words>] [--seed <u64>]\n\
         \x20          [--threads <n>] [--sizes]"
    );
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };
    let loaded = match read_edge_list_file(std::path::Path::new(&opts.path)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    let g = loaded.graph;
    println!(
        "loaded {}: {} vertices, {} edges",
        opts.path,
        g.num_vertices(),
        g.num_edges()
    );

    let (labels, rounds) = match opts.algorithm.as_str() {
        "wcc" => match well_connected_components(
            &g,
            opts.lambda,
            &Params::laptop_scale().with_threads(opts.threads),
            opts.seed,
        ) {
            Ok(r) => (r.components, Some(r.stats.total_rounds())),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        "adaptive" => match adaptive_components(
            &g,
            &Params::laptop_scale().with_threads(opts.threads),
            opts.seed,
        ) {
            Ok(r) => (r.components, Some(r.stats.total_rounds())),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        "sublinear" => {
            let memory = if opts.memory > 0 {
                opts.memory
            } else {
                (g.num_vertices() as f64).sqrt().ceil() as usize * 8
            };
            match sublinear_components(
                &g,
                memory,
                &SublinearParams::laptop_scale().with_threads(opts.threads),
                opts.seed,
            ) {
                Ok(r) => (r.components, Some(r.stats.total_rounds())),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "hash-to-min" => {
            let mut ctx = MpcContext::new(
                MpcConfig::for_input_size(2 * g.num_edges() + g.num_vertices(), 0.5)
                    .permissive()
                    .with_threads(opts.threads),
            );
            let r = run_baseline("hash-to-min", &g, &mut ctx, opts.seed);
            (r.labels, Some(r.rounds))
        }
        "union-find" => (wcc_baselines::sequential_components(&g), None),
        other => {
            eprintln!("error: unknown algorithm {other:?}");
            usage();
            return ExitCode::FAILURE;
        }
    };

    println!("components: {}", labels.num_components());
    match rounds {
        Some(r) => println!("simulated MPC rounds: {r}"),
        None => println!("simulated MPC rounds: n/a (sequential reference)"),
    }
    if opts.show_sizes {
        let mut sizes = labels.component_sizes();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        println!(
            "largest component sizes: {:?}",
            &sizes[..sizes.len().min(20)]
        );
    }
    ExitCode::SUCCESS
}
