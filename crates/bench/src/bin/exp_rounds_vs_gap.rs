//! E2: rounds vs spectral gap across graph families (Theorem 1/4).
fn main() {
    let table = wcc_bench::exp_rounds_vs_gap(1024);
    if let Ok(path) = table.write_json() {
        eprintln!("wrote {path}");
    }
    println!("{}", table.to_markdown());
}
