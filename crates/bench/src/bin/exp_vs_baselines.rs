//! E10: rounds vs classical O(log n)-round baselines (Sections 1.1/1.3).
fn main() {
    let table = wcc_bench::exp_vs_baselines(1536);
    if let Ok(path) = table.write_json() {
        eprintln!("wrote {path}");
    }
    println!("{}", table.to_markdown());
}
