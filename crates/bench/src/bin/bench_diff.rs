//! `bench_diff` — compares two recorded `BENCH_*.json` snapshots and prints
//! per-group speedup ratios.
//!
//! ```text
//! USAGE:
//!   bench_diff <baseline.json> <candidate.json> [--fail-below <ratio>]
//!   bench_diff --speedup-from-log <log> <old-row> <new-row> [--fail-below <ratio>]
//! ```
//!
//! Both files must follow the workspace's snapshot layout: a top-level
//! `"groups"` object mapping group names to benchmark entries, each entry
//! carrying `"min"` / `"mean"` / `"max"` duration strings (as written by
//! transcribing the criterion shim's output, e.g. `"566.673us"` or
//! `"6.012ms"`). For every benchmark present in *both* files the tool prints
//! `baseline_mean / candidate_mean` — values above 1.0 mean the candidate
//! got faster — plus each group's geometric-mean speedup. Benchmarks present
//! in only one file are listed so renames are visible rather than silently
//! dropped.
//!
//! `--fail-below <ratio>` turns the report into a regression gate: the exit
//! code is failure if *any* compared benchmark's speedup falls below the
//! given ratio (e.g. `--fail-below 0.8` tolerates up to 20% slowdown per
//! row before failing). CI runs a self-comparison with this flag as a
//! parser-and-gate smoke test; release comparisons run it old-vs-new.
//!
//! `--speedup-from-log` compares two rows of a *single* criterion-shim text
//! log instead of two snapshots: it scans for `group: <name>` headers and
//! `  <id>  [<min> <mean> <max>]  (<N> samples)` rows, addresses a row as
//! `<group>/<id>` (the group is everything before the first `/`), and
//! reports `mean(old-row) / mean(new-row)`. With `--fail-below` this gates
//! intra-run ratios — CI uses it to assert the threaded e2e rows actually
//! beat the sequential ones, without recording a snapshot first.
//!
//! The vendored `serde_json` shim is serialise-only, so this binary carries
//! its own minimal JSON reader (objects, arrays, strings, numbers, literals
//! — everything the snapshot files use).

use std::collections::BTreeMap;
use std::process::ExitCode;

/// A minimal JSON value: exactly what the snapshot layout needs, with
/// object keys in sorted order (`BTreeMap`) so the report is stable. The
/// non-object payloads are parsed for completeness but never inspected.
#[derive(Debug, Clone)]
#[allow(dead_code)]
enum Json {
    Object(BTreeMap<String, Json>),
    Array(Vec<Json>),
    String(String),
    Number(f64),
    Bool(bool),
    Null,
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(map) => Some(map),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Recursive-descent JSON reader over a byte slice.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> String {
        format!("{message} at byte {}", self.pos)
    }

    fn skip_whitespace(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        self.skip_whitespace();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied()
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(_) => self.parse_number(),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Json) -> Result<Json, String> {
        self.skip_whitespace();
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{literal}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        self.skip_whitespace();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| self.error("malformed number"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| self.error("truncated escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' | b'\\' | b'/' => out.push(escaped as char),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            // The snapshots are plain ASCII; decode the BMP
                            // escape and move on.
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(self.error(&format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Copy the full UTF-8 scalar starting here.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let ch = text.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing data after JSON value"));
    }
    Ok(value)
}

/// Parses a duration string like `17.3ns`, `566.673us`, `1.807ms` or `2.5s`
/// (also the `µs` spelling the criterion shim's `{:?}` output uses) into
/// seconds.
fn parse_duration_secs(text: &str) -> Option<f64> {
    let text = text.trim();
    let split = text
        .char_indices()
        .find(|&(_, c)| !(c.is_ascii_digit() || c == '.'))
        .map(|(i, _)| i)?;
    let value: f64 = text[..split].parse().ok()?;
    let scale = match &text[split..] {
        "ns" => 1e-9,
        "us" | "µs" => 1e-6,
        "ms" => 1e-3,
        "s" => 1.0,
        _ => return None,
    };
    Some(value * scale)
}

/// Extracts `group/id -> mean seconds` from a criterion-shim text log.
///
/// The shim prints `group: <name>` once per group and one row per benchmark:
/// `  {id:<40} [{min:>12.3?} {mean:>12.3?} {max:>12.3?}]  ({N} samples)`.
/// Rows appearing before any group header (bare `Criterion::bench_function`
/// calls) are keyed by their id alone. Later duplicates win, matching how a
/// rerun of the same group would overwrite a snapshot entry.
fn parse_log_means(text: &str) -> BTreeMap<String, f64> {
    let mut means = BTreeMap::new();
    let mut group = String::new();
    for line in text.lines() {
        if let Some(name) = line.strip_prefix("group: ") {
            group = name.trim().to_string();
            continue;
        }
        // A measurement row: indented id, then "[min mean max]".
        let Some(open) = line.find('[') else { continue };
        let Some(close) = line[open..].find(']').map(|i| open + i) else {
            continue;
        };
        if !line.starts_with("  ") || !line[close..].contains("samples)") {
            continue;
        }
        let id = line[..open].trim();
        if id.is_empty() {
            continue;
        }
        let triple: Vec<&str> = line[open + 1..close].split_whitespace().collect();
        let [_, mean, _] = triple.as_slice() else {
            continue;
        };
        if let Some(seconds) = parse_duration_secs(mean) {
            let key = if group.is_empty() {
                id.to_string()
            } else {
                format!("{group}/{id}")
            };
            means.insert(key, seconds);
        }
    }
    means
}

fn load_groups(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value = parse_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    value
        .get("groups")
        .cloned()
        .ok_or_else(|| format!("{path} has no top-level \"groups\" object"))
}

fn mean_of(entry: &Json) -> Option<f64> {
    parse_duration_secs(entry.get("mean")?.as_str()?)
}

/// The `--fail-below` regression gate: returns the benchmarks (as
/// `(label, speedup)`) whose speedup falls below `threshold`. Empty means
/// the gate passes.
fn gate_failures(ratios: &[(String, f64)], threshold: f64) -> Vec<(String, f64)> {
    ratios
        .iter()
        .filter(|(_, speedup)| *speedup < threshold)
        .cloned()
        .collect()
}

/// What the command line asked for: a two-snapshot diff, or a two-row
/// ratio inside one criterion-shim log.
#[derive(Debug, Clone, PartialEq)]
enum Mode {
    Snapshots {
        baseline: String,
        candidate: String,
    },
    SpeedupFromLog {
        log: String,
        old_row: String,
        new_row: String,
    },
}

fn parse_cli(args: &[String]) -> Result<(Mode, Option<f64>), String> {
    let mut positionals: Vec<&String> = Vec::new();
    let mut fail_below = None;
    let mut from_log = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--fail-below" {
            let value = iter.next().ok_or("--fail-below needs a value")?;
            let ratio: f64 = value
                .parse()
                .map_err(|e| format!("bad --fail-below value {value:?}: {e}"))?;
            if !(ratio.is_finite() && ratio > 0.0) {
                return Err(format!(
                    "--fail-below must be a positive ratio, got {value}"
                ));
            }
            fail_below = Some(ratio);
        } else if arg == "--speedup-from-log" {
            from_log = true;
        } else {
            positionals.push(arg);
        }
    }
    let usage = "usage: bench_diff <baseline.json> <candidate.json> [--fail-below <ratio>]\n\
                 \x20      bench_diff --speedup-from-log <log> <old-row> <new-row> \
                 [--fail-below <ratio>]";
    match (from_log, positionals.as_slice()) {
        (false, [a, b]) => Ok((
            Mode::Snapshots {
                baseline: (*a).clone(),
                candidate: (*b).clone(),
            },
            fail_below,
        )),
        (true, [log, old_row, new_row]) => Ok((
            Mode::SpeedupFromLog {
                log: (*log).clone(),
                old_row: (*old_row).clone(),
                new_row: (*new_row).clone(),
            },
            fail_below,
        )),
        _ => Err(usage.to_string()),
    }
}

/// The `--speedup-from-log` entry point: ratio of two rows of one log.
fn run_speedup_from_log(
    log_path: &str,
    old_row: &str,
    new_row: &str,
    fail_below: Option<f64>,
) -> ExitCode {
    let text = match std::fs::read_to_string(log_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {log_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let means = parse_log_means(&text);
    let lookup = |row: &str| {
        means.get(row).copied().ok_or_else(|| {
            let known: Vec<&str> = means.keys().map(String::as_str).collect();
            format!(
                "row {row:?} not found in {log_path} (rows: {})",
                if known.is_empty() {
                    "none parsed".to_string()
                } else {
                    known.join(", ")
                }
            )
        })
    };
    let (old_mean, new_mean) = match (lookup(old_row), lookup(new_row)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if new_mean <= 0.0 {
        eprintln!("error: row {new_row:?} has a non-positive mean");
        return ExitCode::FAILURE;
    }
    let speedup = old_mean / new_mean;
    println!("log: {log_path}");
    println!("  {old_row:<48} {:>10.3}ms   (old)", old_mean * 1e3);
    println!("  {new_row:<48} {:>10.3}ms   (new)", new_mean * 1e3);
    println!("  speedup: x{speedup:.2}");
    if let Some(threshold) = fail_below {
        if speedup < threshold {
            eprintln!("\nregression gate: x{speedup:.2} is below x{threshold}");
            return ExitCode::FAILURE;
        }
        println!("\nregression gate: x{speedup:.2} at or above x{threshold}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, fail_below) = match parse_cli(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let (baseline_path, candidate_path) = match mode {
        Mode::SpeedupFromLog {
            log,
            old_row,
            new_row,
        } => return run_speedup_from_log(&log, &old_row, &new_row, fail_below),
        Mode::Snapshots {
            baseline,
            candidate,
        } => (baseline, candidate),
    };
    let (baseline, candidate) = match (load_groups(&baseline_path), load_groups(&candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("speedup = baseline mean / candidate mean (>1.0: candidate faster)");
    println!("baseline:  {baseline_path}");
    println!("candidate: {candidate_path}");
    let empty = BTreeMap::new();
    let baseline_groups = baseline.as_object().unwrap_or(&empty);
    let candidate_groups = candidate.as_object().unwrap_or(&empty);
    let mut group_names: Vec<&String> = baseline_groups
        .keys()
        .chain(candidate_groups.keys())
        .collect();
    group_names.sort();
    group_names.dedup();

    let mut compared = 0usize;
    let mut all_ratios: Vec<(String, f64)> = Vec::new();
    for group in group_names {
        let base = baseline_groups
            .get(group)
            .and_then(Json::as_object)
            .cloned()
            .unwrap_or_default();
        let cand = candidate_groups
            .get(group)
            .and_then(Json::as_object)
            .cloned()
            .unwrap_or_default();
        println!("\ngroup: {group}");
        let mut ratios: Vec<f64> = Vec::new();
        let mut names: Vec<&String> = base.keys().chain(cand.keys()).collect();
        names.sort();
        names.dedup();
        for name in names {
            match (
                base.get(name).and_then(mean_of),
                cand.get(name).and_then(mean_of),
            ) {
                (Some(b), Some(c)) if c > 0.0 => {
                    let speedup = b / c;
                    ratios.push(speedup);
                    all_ratios.push((format!("{group}/{name}"), speedup));
                    compared += 1;
                    println!(
                        "  {name:<48} {:>10.3}ms -> {:>10.3}ms   x{speedup:.2}",
                        b * 1e3,
                        c * 1e3
                    );
                }
                (Some(_), None) => println!("  {name:<48} only in baseline"),
                (None, Some(_)) => println!("  {name:<48} only in candidate"),
                _ => println!("  {name:<48} unparseable mean"),
            }
        }
        if !ratios.is_empty() {
            let geo_mean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
            println!("  group geometric-mean speedup: x{geo_mean:.2}");
        }
    }
    if compared == 0 {
        eprintln!("error: no benchmark appears in both files");
        return ExitCode::FAILURE;
    }
    if let Some(threshold) = fail_below {
        let failures = gate_failures(&all_ratios, threshold);
        if !failures.is_empty() {
            eprintln!(
                "\nregression gate: {} benchmark(s) below x{threshold}",
                failures.len()
            );
            for (label, speedup) in &failures {
                eprintln!("  {label:<56} x{speedup:.2}");
            }
            return ExitCode::FAILURE;
        }
        println!("\nregression gate: all {compared} compared benchmarks at or above x{threshold}");
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::{
        gate_failures, mean_of, parse_cli, parse_duration_secs, parse_json, parse_log_means, Mode,
    };

    fn close(actual: Option<f64>, expected: f64) -> bool {
        actual.is_some_and(|a| (a - expected).abs() <= 1e-12 * expected.abs().max(1.0))
    }

    #[test]
    fn parses_all_supported_suffixes() {
        assert!(close(parse_duration_secs("250ns"), 2.5e-7));
        assert!(close(parse_duration_secs("566.5us"), 566.5e-6));
        assert!(close(parse_duration_secs("566.5µs"), 566.5e-6));
        assert!(close(parse_duration_secs("1.807ms"), 1.807e-3));
        assert!(close(parse_duration_secs(" 2.5s "), 2.5));
        assert_eq!(parse_duration_secs("oops"), None);
        assert_eq!(parse_duration_secs("12"), None);
    }

    #[test]
    fn cli_accepts_the_fail_below_flag_anywhere() {
        let args = |s: &[&str]| s.iter().map(|a| a.to_string()).collect::<Vec<_>>();
        let snapshots = |a: &str, b: &str| Mode::Snapshots {
            baseline: a.into(),
            candidate: b.into(),
        };
        assert_eq!(
            parse_cli(&args(&["a.json", "b.json"])).unwrap(),
            (snapshots("a.json", "b.json"), None)
        );
        assert_eq!(
            parse_cli(&args(&["a.json", "b.json", "--fail-below", "0.8"])).unwrap(),
            (snapshots("a.json", "b.json"), Some(0.8))
        );
        assert_eq!(
            parse_cli(&args(&["--fail-below", "1.5", "a.json", "b.json"])).unwrap(),
            (snapshots("a.json", "b.json"), Some(1.5))
        );
        assert!(parse_cli(&args(&["a.json"])).is_err());
        assert!(parse_cli(&args(&["a.json", "b.json", "--fail-below"])).is_err());
        assert!(parse_cli(&args(&["a.json", "b.json", "--fail-below", "zero"])).is_err());
        assert!(parse_cli(&args(&["a.json", "b.json", "--fail-below", "-1"])).is_err());
    }

    #[test]
    fn cli_parses_the_speedup_from_log_mode() {
        let args = |s: &[&str]| s.iter().map(|a| a.to_string()).collect::<Vec<_>>();
        assert_eq!(
            parse_cli(&args(&[
                "--speedup-from-log",
                "bench.log",
                "g/old/100",
                "g/new/100",
                "--fail-below",
                "1.3",
            ]))
            .unwrap(),
            (
                Mode::SpeedupFromLog {
                    log: "bench.log".into(),
                    old_row: "g/old/100".into(),
                    new_row: "g/new/100".into(),
                },
                Some(1.3)
            )
        );
        // The flag changes the expected positional count.
        assert!(parse_cli(&args(&["--speedup-from-log", "bench.log", "g/old"])).is_err());
        assert!(parse_cli(&args(&["bench.log", "g/old", "g/new"])).is_err());
    }

    #[test]
    fn log_parser_extracts_group_qualified_means() {
        let log = [
            "warming up",
            "",
            "group: pipeline_adaptive_e2e",
            "  adaptive_t1/100000                       [     21.500s      21.920s      22.400s]  (10 samples)",
            "  adaptive_t4/100000                       [     12.000s      12.500s      13.100s]  (10 samples)",
            "",
            "group: walk_kernel",
            "  v3/t64                                   [    1.807ms      2.100ms      2.500ms]  (10 samples)",
            "  broken                                   (no samples collected)",
            "  noise [not a row",
        ]
        .join("\n");
        let means = parse_log_means(&log);
        assert_eq!(means.len(), 3);
        let close = |key: &str, want: f64| {
            let got = means[key];
            assert!((got - want).abs() < 1e-9, "{key}: {got} != {want}");
        };
        close("pipeline_adaptive_e2e/adaptive_t1/100000", 21.920);
        close("pipeline_adaptive_e2e/adaptive_t4/100000", 12.500);
        close("walk_kernel/v3/t64", 2.1e-3);
        assert!(!means.contains_key("walk_kernel/broken"));
    }

    #[test]
    fn gate_flags_only_rows_below_threshold() {
        let ratios = vec![
            ("g/fast".to_string(), 1.4),
            ("g/flat".to_string(), 1.0),
            ("g/slow".to_string(), 0.7),
        ];
        assert!(gate_failures(&ratios, 0.5).is_empty());
        let failures = gate_failures(&ratios, 0.9);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "g/slow");
        // Threshold exactly at a row's ratio passes (strictly-below fails).
        assert!(gate_failures(&ratios, 0.7).is_empty());
        assert_eq!(gate_failures(&ratios, 1.2).len(), 2);
    }

    #[test]
    fn parses_the_snapshot_layout() {
        let text = r#"{
            "bench": "x",
            "groups": {
                "g": { "a/100": { "min": "1us", "mean": "2us", "max": "3.5us" } }
            },
            "notes": [1, 2.5, true, null, "µ"]
        }"#;
        let value = parse_json(text).unwrap();
        let entry = value.get("groups").unwrap().get("g").unwrap().get("a/100");
        assert_eq!(mean_of(entry.unwrap()), Some(2e-6));
        assert!(parse_json("{\"unterminated\": ").is_err());
        assert!(parse_json("{} trailing").is_err());
    }
}
