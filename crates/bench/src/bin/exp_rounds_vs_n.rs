//! E1: rounds vs n on planted expander components (Theorem 1/4).
fn main() {
    let table = wcc_bench::exp_rounds_vs_n(&[1 << 9, 1 << 10, 1 << 11, 1 << 12, 1 << 13]);
    if let Ok(path) = table.write_json() {
        eprintln!("wrote {path}");
    }
    println!("{}", table.to_markdown());
}
