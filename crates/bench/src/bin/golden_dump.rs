//! Golden-output dump for refactor gating: runs the three public entry
//! points (`wcc`, `adaptive`, `sublinear`) over a fixed matrix of graph
//! families, seeds and thread counts and prints one line per run with an
//! FNV-1a hash of the raw label vector plus the RoundStats model
//! quantities. Capture the output before a data-plane change and diff it
//! after: labels must be bit-identical, model quantities may move only
//! where DESIGN.md documents why.
//!
//! Usage: `golden_dump [--big] [--threads <n>]`. `--big` adds the
//! 10^5-edge adaptive benchmark workload (which takes minutes on the
//! unoptimised plane). `--threads <n>` replaces the default 1-and-4 thread
//! matrix with the single given count — handy for profiling one backend —
//! with `0` meaning one worker per available CPU; labels are identical for
//! every thread count either way (that equality is what this tool gates).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wcc_core::prelude::*;
use wcc_graph::prelude::*;

fn fnv(labels: &[usize]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &l in labels {
        for b in (l as u64).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn graph(family: &str, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    match family {
        "planted" => generators::planted_expander_components(&[1000, 1000], 8, &mut rng),
        "cliques" => generators::ring_of_cliques(12, 10),
        "bridge" => generators::two_expanders_bridge(800, 8, &mut rng),
        "er" => generators::erdos_renyi(4000, 3.0 / 4000.0, &mut rng),
        "bench" => generators::planted_expander_components(&[12_500, 12_500], 8, &mut rng),
        other => panic!("unknown family {other}"),
    }
}

fn report(
    tag: &str,
    family: &str,
    threads: usize,
    seed: u64,
    labels: &[usize],
    comps: usize,
    stats: &wcc_mpc::RoundStats,
) {
    println!(
        "{tag} family={family} threads={threads} seed={seed} labels_fnv={:016x} comps={comps} \
         rounds={} words={} max_load={} violations={}",
        fnv(labels),
        stats.total_rounds(),
        stats.total_communication_words(),
        stats.max_machine_load_words(),
        stats.memory_violations(),
    );
}

fn main() {
    let mut big = false;
    let mut thread_matrix = vec![1usize, 4];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--big" => big = true,
            "--threads" => {
                let t: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads takes a count (0 = one per available CPU)");
                thread_matrix = vec![if t == 0 {
                    wcc_mpc::Executor::auto_threads()
                } else {
                    t
                }];
            }
            other => {
                panic!("unknown argument {other} (usage: golden_dump [--big] [--threads <n>])")
            }
        }
    }

    for family in ["planted", "cliques", "bridge"] {
        for &threads in &thread_matrix {
            for seed in [3u64, 11] {
                let g = graph(family, 1000 + seed);
                let params = Params::laptop_scale().with_threads(threads);
                let r = well_connected_components(&g, 0.3, &params, seed).expect("wcc");
                report(
                    "wcc",
                    family,
                    threads,
                    seed,
                    r.components.labels(),
                    r.components.num_components(),
                    &r.stats,
                );
            }
        }
    }

    for family in ["planted", "cliques"] {
        for &threads in &thread_matrix {
            let g = graph(family, 1007);
            let params = Params::laptop_scale().with_threads(threads);
            let r = adaptive_components(&g, &params, 7).expect("adaptive");
            report(
                "adaptive",
                family,
                threads,
                7,
                r.components.labels(),
                r.components.num_components(),
                &r.stats,
            );
        }
    }

    for family in ["er", "cliques"] {
        for &threads in &thread_matrix {
            for seed in [5u64, 13] {
                let g = graph(family, 2000 + seed);
                let mem = ((g.num_vertices() as f64).sqrt() as usize * 8).max(64);
                let params = SublinearParams::laptop_scale().with_threads(threads);
                let r = sublinear_components(&g, mem, &params, seed).expect("sublinear");
                report(
                    "sublinear",
                    family,
                    threads,
                    seed,
                    r.components.labels(),
                    r.components.num_components(),
                    &r.stats,
                );
            }
        }
    }

    if big {
        let threads = thread_matrix[0];
        let g = graph("bench", 5);
        let params = Params::laptop_scale().with_threads(threads);
        let start = std::time::Instant::now();
        let r = adaptive_components(&g, &params, 7).expect("adaptive big");
        let secs = start.elapsed().as_secs_f64();
        eprintln!("bench-adaptive wall {secs:.1}s");
        report(
            "adaptive-big",
            "bench",
            threads,
            7,
            r.components.labels(),
            r.components.num_components(),
            &r.stats,
        );
    }
}
