//! `wcc_loadgen` — load generator and checking client for `wcc serve`.
//!
//! ```text
//! USAGE:
//!   wcc_loadgen <addr> [--connections <n>] [--pipeline <depth>]
//!               [--queries <n> | --duration-s <secs>] [--target-qps <rate>]
//!               [--mix <same:of:size>] [--universe <max-raw-id+1>]
//!               [--seed <u64>] [--wait-epoch <e>] [--query-file <path>]
//!               [--check] [--shutdown] [--json]
//! ```
//!
//! Two operating modes share one wire client:
//!
//! * **Random load** (default): `--connections` client threads each open a
//!   TCP connection and drive pipelined windows of `--pipeline` requests —
//!   encode a window, flush once, read the window back, measuring each
//!   response's client-observed latency into a shared log-bucketed
//!   histogram ([`wcc_mpc::LogHistogram`], the same type the server reports
//!   through its STATS reply). Vertex ids are drawn uniformly from
//!   `0..--universe`; ops are drawn from the `--mix` weights
//!   (`same_component : component_of : component_size`, default `8:1:1`).
//!   The run ends after `--queries` total responses (default 100 000) or
//!   `--duration-s` seconds, whichever is specified. `--target-qps <rate>`
//!   paces the workers (open-loop, split evenly across connections) instead
//!   of running full throttle — the mode used to measure ingest slowdown at
//!   a fixed offered load.
//! * **Query file** (`--query-file`): one connection replays a fixed list
//!   of queries, optionally checking every answer (`--check`). Lines are
//!   `same <u> <v> [expect]`, `of <v> [expect]`, `size <c> [expect]`, with
//!   `#` comments; `expect` is `1`/`0` for `same`, a number for `of`/`size`,
//!   `nf` for not-found, `?` for "don't check". This is the CI smoke mode.
//!
//! `--wait-epoch <e>` pings until the server has published epoch `>= e`
//! before starting (so checked answers are computed against a known prefix
//! of the stream); `--shutdown` sends a SHUTDOWN request at the end. The
//! report (human or `--json`) carries achieved qps, client-side latency
//! percentiles and the server's own STATS counters.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use wcc_core::serve::{read_frame, Request, Response, StatsReply};
use wcc_mpc::{HistogramSummary, LogHistogram};

struct Options {
    addr: String,
    connections: usize,
    pipeline: usize,
    queries: u64,
    duration_s: f64,
    target_qps: f64,
    mix: (u32, u32, u32),
    universe: u64,
    seed: u64,
    wait_epoch: u64,
    query_file: String,
    check: bool,
    shutdown: bool,
    json: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        addr: String::new(),
        connections: 2,
        pipeline: 128,
        queries: 100_000,
        duration_s: 0.0,
        target_qps: 0.0,
        mix: (8, 1, 1),
        universe: 0,
        seed: 7,
        wait_epoch: 0,
        query_file: String::new(),
        check: false,
        shutdown: false,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--connections" => {
                opts.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("bad --connections: {e}"))?;
                if opts.connections == 0 {
                    return Err("--connections must be at least 1".into());
                }
            }
            "--pipeline" => {
                opts.pipeline = value("--pipeline")?
                    .parse()
                    .map_err(|e| format!("bad --pipeline: {e}"))?;
                if opts.pipeline == 0 {
                    return Err("--pipeline must be at least 1".into());
                }
            }
            "--queries" => {
                opts.queries = value("--queries")?
                    .parse()
                    .map_err(|e| format!("bad --queries: {e}"))?;
            }
            "--duration-s" => {
                opts.duration_s = value("--duration-s")?
                    .parse()
                    .map_err(|e| format!("bad --duration-s: {e}"))?;
                if !opts.duration_s.is_finite() || opts.duration_s <= 0.0 {
                    return Err("--duration-s must be a positive number".into());
                }
            }
            "--target-qps" => {
                opts.target_qps = value("--target-qps")?
                    .parse()
                    .map_err(|e| format!("bad --target-qps: {e}"))?;
                if !opts.target_qps.is_finite() || opts.target_qps <= 0.0 {
                    return Err("--target-qps must be a positive number".into());
                }
            }
            "--mix" => {
                let raw = value("--mix")?;
                let parts: Vec<u32> = raw
                    .split(':')
                    .map(|p| p.parse().map_err(|e| format!("bad --mix: {e}")))
                    .collect::<Result<_, _>>()?;
                if parts.len() != 3 || parts.iter().sum::<u32>() == 0 {
                    return Err("--mix must be three weights like 8:1:1".into());
                }
                opts.mix = (parts[0], parts[1], parts[2]);
            }
            "--universe" => {
                opts.universe = value("--universe")?
                    .parse()
                    .map_err(|e| format!("bad --universe: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--wait-epoch" => {
                opts.wait_epoch = value("--wait-epoch")?
                    .parse()
                    .map_err(|e| format!("bad --wait-epoch: {e}"))?;
            }
            "--query-file" => opts.query_file = value("--query-file")?,
            "--check" => opts.check = true,
            "--shutdown" => opts.shutdown = true,
            "--json" => opts.json = true,
            "--help" | "-h" => return Err("help".into()),
            other if opts.addr.is_empty() && !other.starts_with('-') => {
                opts.addr = other.to_string();
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.addr.is_empty() {
        return Err("missing <addr>".into());
    }
    if opts.check && opts.query_file.is_empty() {
        return Err("--check requires --query-file".into());
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: wcc_loadgen <addr> [--connections <n>] [--pipeline <depth>]\n\
         \x20          [--queries <n> | --duration-s <secs>] [--target-qps <rate>]\n\
         \x20          [--mix <same:of:size>] [--universe <max-raw-id+1>]\n\
         \x20          [--seed <u64>] [--wait-epoch <e>] [--query-file <path>]\n\
         \x20          [--check] [--shutdown] [--json]"
    );
}

/// One blocking protocol connection with frame buffers.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    frame: Vec<u8>,
    out: Vec<u8>,
}

impl Conn {
    fn open(addr: &str) -> Result<Conn, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::with_capacity(
            1 << 16,
            stream
                .try_clone()
                .map_err(|e| format!("cannot clone socket: {e}"))?,
        );
        Ok(Conn {
            reader,
            writer: BufWriter::with_capacity(1 << 16, stream),
            frame: Vec::new(),
            out: Vec::new(),
        })
    }

    fn queue(&mut self, request: Request) -> Result<(), String> {
        self.out.clear();
        request.encode(&mut self.out);
        self.writer
            .write_all(&self.out)
            .map_err(|e| format!("write failed: {e}"))
    }

    fn flush(&mut self) -> Result<(), String> {
        self.writer
            .flush()
            .map_err(|e| format!("flush failed: {e}"))
    }

    fn recv(&mut self) -> Result<Response, String> {
        match read_frame(&mut self.reader, &mut self.frame) {
            Ok(Some(())) => Response::decode(&self.frame).map_err(|e| format!("bad response: {e}")),
            Ok(None) => Err("server closed the connection".into()),
            Err(e) => Err(format!("read failed: {e}")),
        }
    }

    fn call(&mut self, request: Request) -> Result<Response, String> {
        self.queue(request)?;
        self.flush()?;
        self.recv()
    }
}

/// Pings until the published epoch reaches `target` (60 s timeout).
fn wait_for_epoch(conn: &mut Conn, target: u64) -> Result<u64, String> {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match conn.call(Request::Ping)? {
            Response::Pong { epoch } if epoch >= target => return Ok(epoch),
            Response::Pong { .. } => {}
            other => return Err(format!("expected PONG, got {other:?}")),
        }
        if Instant::now() >= deadline {
            return Err(format!("server did not reach epoch {target} within 60 s"));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A parsed `--query-file` line: the request plus the expected answer.
enum Expect {
    Any,
    NotFound,
    Same(bool),
    Value(u64),
}

fn parse_query_file(path: &str) -> Result<Vec<(Request, Expect)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut queries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let bad = |what: &str| format!("{path}:{}: {what}: {line:?}", lineno + 1);
        let num = |tok: &str| -> Result<u64, String> { tok.parse().map_err(|_| bad("bad number")) };
        let expect = |tok: Option<&&str>, same_op: bool| -> Result<Expect, String> {
            Ok(match tok.copied() {
                None | Some("?") => Expect::Any,
                Some("nf") => Expect::NotFound,
                Some("1") if same_op => Expect::Same(true),
                Some("0") if same_op => Expect::Same(false),
                Some(v) if !same_op => Expect::Value(num(v)?),
                Some(_) => return Err(bad("bad expectation")),
            })
        };
        match toks.as_slice() {
            ["same", u, v, rest @ ..] if rest.len() <= 1 => queries.push((
                Request::SameComponent {
                    u: num(u)?,
                    v: num(v)?,
                },
                expect(rest.first(), true)?,
            )),
            ["of", v, rest @ ..] if rest.len() <= 1 => queries.push((
                Request::ComponentOf { v: num(v)? },
                expect(rest.first(), false)?,
            )),
            ["size", c, rest @ ..] if rest.len() <= 1 => queries.push((
                Request::ComponentSize { c: num(c)? },
                expect(rest.first(), false)?,
            )),
            _ => return Err(bad("unrecognised query")),
        }
    }
    Ok(queries)
}

fn matches_expect(response: &Response, expect: &Expect) -> bool {
    match (expect, response) {
        (Expect::Any, _) => !matches!(response, Response::BadRequest),
        (Expect::NotFound, Response::NotFound { .. }) => true,
        (Expect::Same(want), Response::Same { same, .. }) => want == same,
        (Expect::Value(want), Response::Component { component, .. }) => want == component,
        (Expect::Value(want), Response::Size { size, .. }) => want == size,
        _ => false,
    }
}

/// Replays the query file over one pipelined connection; returns
/// (responses, failures) and records latencies.
fn run_query_file(opts: &Options, hist: &LogHistogram) -> Result<(u64, u64, u64), String> {
    let queries = parse_query_file(&opts.query_file)?;
    let mut conn = Conn::open(&opts.addr)?;
    if opts.wait_epoch > 0 {
        wait_for_epoch(&mut conn, opts.wait_epoch)?;
    }
    let mut failures = 0u64;
    let mut not_found = 0u64;
    for window in queries.chunks(opts.pipeline) {
        let started = Instant::now();
        for (request, _) in window {
            conn.queue(*request)?;
        }
        conn.flush()?;
        for (request, expect) in window {
            let response = conn.recv()?;
            hist.record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
            if matches!(response, Response::NotFound { .. }) {
                not_found += 1;
            }
            if opts.check && !matches_expect(&response, expect) {
                failures += 1;
                eprintln!("check failed: {request:?} -> {response:?}");
            }
        }
    }
    Ok((queries.len() as u64, not_found, failures))
}

/// One random-load worker: pipelined windows until the shared budget or the
/// deadline runs out. Returns (responses, not_found).
#[allow(clippy::too_many_arguments)]
fn run_worker(
    addr: &str,
    pipeline: usize,
    mix: (u32, u32, u32),
    universe: u64,
    seed: u64,
    budget: &AtomicU64,
    deadline: Option<Instant>,
    worker_qps: f64,
    hist: &LogHistogram,
) -> Result<(u64, u64), String> {
    let mut conn = Conn::open(addr)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let total_weight = u64::from(mix.0 + mix.1 + mix.2);
    let mut responses = 0u64;
    let mut not_found = 0u64;
    let mut send_times: Vec<Instant> = Vec::with_capacity(pipeline);
    let paced_start = Instant::now();
    loop {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        // Open-loop pacing: under --target-qps, sleep until this worker's
        // response count falls behind the target rate again, so the load is
        // a steady stream rather than a full-throttle saturation run.
        if worker_qps > 0.0 {
            let due = paced_start + Duration::from_secs_f64(responses as f64 / worker_qps);
            let now = Instant::now();
            if due > now {
                let mut pause = due - now;
                if let Some(d) = deadline {
                    if now >= d {
                        break;
                    }
                    pause = pause.min(d - now);
                }
                std::thread::sleep(pause);
            }
        }
        // Claim a window from the shared budget (deadline mode has none).
        let window = if deadline.is_some() {
            pipeline as u64
        } else {
            let before = budget.fetch_sub(pipeline as u64, Ordering::Relaxed);
            if before == 0 || before > u64::MAX / 2 {
                // Exhausted (or wrapped past zero by a racing worker).
                budget.store(0, Ordering::Relaxed);
                break;
            }
            before.min(pipeline as u64)
        };
        send_times.clear();
        for _ in 0..window {
            let pick = rng.gen_range(0..total_weight);
            let request = if pick < u64::from(mix.0) {
                Request::SameComponent {
                    u: rng.gen_range(0..universe),
                    v: rng.gen_range(0..universe),
                }
            } else if pick < u64::from(mix.0 + mix.1) {
                Request::ComponentOf {
                    v: rng.gen_range(0..universe),
                }
            } else {
                Request::ComponentSize {
                    c: rng.gen_range(0..universe),
                }
            };
            send_times.push(Instant::now());
            conn.queue(request)?;
        }
        conn.flush()?;
        for &sent in send_times.iter() {
            let response = conn.recv()?;
            hist.record(u64::try_from(sent.elapsed().as_nanos()).unwrap_or(u64::MAX));
            responses += 1;
            if matches!(response, Response::NotFound { .. }) {
                not_found += 1;
            }
        }
    }
    Ok((responses, not_found))
}

/// Server-side counters mirrored into the `--json` report.
#[derive(Serialize)]
struct JsonServerStats {
    epoch: u64,
    vertices: u64,
    edges: u64,
    components: u64,
    batches: u64,
    recomputes: u64,
    queries: u64,
    not_found: u64,
    connections: u64,
    latency_ns: HistogramSummary,
}

impl From<&StatsReply> for JsonServerStats {
    fn from(stats: &StatsReply) -> Self {
        JsonServerStats {
            epoch: stats.epoch,
            vertices: stats.vertices,
            edges: stats.edges,
            components: stats.components,
            batches: stats.batches,
            recomputes: stats.recomputes,
            queries: stats.queries,
            not_found: stats.not_found,
            connections: stats.connections,
            latency_ns: HistogramSummary::from_counts(&stats.latency_buckets),
        }
    }
}

/// The `--json` report of a loadgen run.
#[derive(Serialize)]
struct JsonLoadReport {
    addr: String,
    mode: String,
    connections: usize,
    pipeline: usize,
    responses: u64,
    not_found: u64,
    check_failures: u64,
    wall_time_s: f64,
    qps: f64,
    /// Client-observed latency (send to response arrival, pipelined), ns.
    latency_ns: HistogramSummary,
    p50_us: f64,
    p99_us: f64,
    server: Option<JsonServerStats>,
}

fn run(opts: &Options) -> Result<ExitCode, String> {
    let hist = Arc::new(LogHistogram::new());
    let started;
    let (responses, not_found, failures);
    let mode;
    if !opts.query_file.is_empty() {
        mode = "query-file";
        started = Instant::now();
        let (r, nf, f) = run_query_file(opts, &hist)?;
        (responses, not_found, failures) = (r, nf, f);
    } else {
        mode = "random";
        if opts.universe == 0 {
            return Err("random load needs --universe (max raw id + 1)".into());
        }
        // Wait for ingestion progress on a control connection before
        // unleashing the workers.
        if opts.wait_epoch > 0 {
            let mut conn = Conn::open(&opts.addr)?;
            wait_for_epoch(&mut conn, opts.wait_epoch)?;
        }
        let budget = Arc::new(AtomicU64::new(opts.queries));
        started = Instant::now();
        let deadline =
            (opts.duration_s > 0.0).then(|| started + Duration::from_secs_f64(opts.duration_s));
        let workers: Vec<_> = (0..opts.connections)
            .map(|w| {
                let addr = opts.addr.clone();
                let budget = Arc::clone(&budget);
                let hist = Arc::clone(&hist);
                let (pipeline, mix, universe) = (opts.pipeline, opts.mix, opts.universe);
                let seed = opts.seed.wrapping_add(w as u64);
                let worker_qps = opts.target_qps / opts.connections as f64;
                std::thread::spawn(move || {
                    run_worker(
                        &addr, pipeline, mix, universe, seed, &budget, deadline, worker_qps, &hist,
                    )
                })
            })
            .collect();
        let mut totals = (0u64, 0u64);
        let mut worker_error = None;
        for worker in workers {
            match worker.join().expect("worker panicked") {
                Ok((r, nf)) => {
                    totals.0 += r;
                    totals.1 += nf;
                }
                Err(e) => worker_error = Some(e),
            }
        }
        if let Some(e) = worker_error {
            return Err(e);
        }
        (responses, not_found, failures) = (totals.0, totals.1, 0);
    }
    let wall_time_s = started.elapsed().as_secs_f64();

    // Control tail: fetch server stats, optionally request shutdown.
    let mut control = Conn::open(&opts.addr)?;
    let server_stats = match control.call(Request::Stats)? {
        Response::Stats(stats) => Some(stats),
        other => return Err(format!("expected STATS, got {other:?}")),
    };
    if opts.shutdown {
        match control.call(Request::Shutdown)? {
            Response::ShuttingDown => {}
            other => return Err(format!("expected SHUTTING_DOWN, got {other:?}")),
        }
    }

    let latency = hist.summary();
    let qps = if wall_time_s > 0.0 {
        responses as f64 / wall_time_s
    } else {
        0.0
    };
    if opts.json {
        let report = JsonLoadReport {
            addr: opts.addr.clone(),
            mode: mode.to_string(),
            connections: if mode == "random" {
                opts.connections
            } else {
                1
            },
            pipeline: opts.pipeline,
            responses,
            not_found,
            check_failures: failures,
            wall_time_s,
            qps,
            p50_us: latency.p50 as f64 / 1e3,
            p99_us: latency.p99 as f64 / 1e3,
            latency_ns: latency,
            server: server_stats.as_ref().map(JsonServerStats::from),
        };
        match serde_json::to_string(&report) {
            Ok(line) => println!("{line}"),
            Err(e) => return Err(format!("cannot serialize report: {e}")),
        }
    } else {
        println!(
            "{responses} responses ({not_found} not-found) in {wall_time_s:.3} s: {qps:.0} qps"
        );
        println!(
            "client latency: p50 {:.1} us, p99 {:.1} us, p999 {:.1} us, max {:.1} us",
            latency.p50 as f64 / 1e3,
            latency.p99 as f64 / 1e3,
            latency.p999 as f64 / 1e3,
            latency.max as f64 / 1e3
        );
        if let Some(stats) = &server_stats {
            let server_latency = HistogramSummary::from_counts(&stats.latency_buckets);
            println!(
                "server: epoch {}, {} vertices, {} components, {} queries answered \
                 (service time p50 {:.1} us, p99 {:.1} us)",
                stats.epoch,
                stats.vertices,
                stats.components,
                stats.queries,
                server_latency.p50 as f64 / 1e3,
                server_latency.p99 as f64 / 1e3
            );
        }
        if opts.check {
            println!("check: {} passed, {failures} failed", responses - failures);
        }
    }
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
