//! E12: ablations — skip regularization / reuse a single batch (Section 3).
fn main() {
    let table = wcc_bench::exp_ablations(15_000);
    if let Ok(path) = table.write_json() {
        eprintln!("wrote {path}");
    }
    println!("{}", table.to_markdown());
}
