//! Experiment harness: one function per experiment in EXPERIMENTS.md.
//!
//! The paper is a theory paper with no empirical tables or figures, so the
//! "evaluation" reproduced here is the set of measurable claims made by its
//! theorems and lemmas (round complexity shapes, quadratic growth per phase,
//! walk independence, query lower bounds, …). Each `exp_*` function returns
//! an [`ExperimentTable`]; the binaries in `src/bin/` print the table as
//! markdown and write it as JSON under `results/`, and EXPERIMENTS.md records
//! the paper-claimed bound next to the measured value.
//!
//! All experiments are deterministic given their built-in seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use wcc_baselines::run_baseline;
use wcc_core::leader::{grow_components, union_of};
use wcc_core::lower_bound::{greedy_query_game, ExpanderConnInstance};
use wcc_core::pipeline::{adaptive_components, well_connected_components};
use wcc_core::regularize::regularize;
use wcc_core::sublinear::{sublinear_components, SublinearParams};
use wcc_core::walks::layered_walk_bundle;
use wcc_core::Params;
use wcc_graph::generators::GraphFamily;
use wcc_graph::prelude::*;
use wcc_graph::spectral;
use wcc_mpc::{MpcConfig, MpcContext};

/// One table of results: a header row plus data rows of equal arity.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentTable {
    /// Experiment identifier (e.g. "E1").
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The claim of the paper this experiment checks.
    pub paper_claim: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Data rows (stringified values, one per column).
    pub rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    fn new(id: &str, title: &str, paper_claim: &str, columns: &[&str]) -> Self {
        ExperimentTable {
            id: id.to_string(),
            title: title.to_string(),
            paper_claim: paper_claim.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("*Paper claim:* {}\n\n", self.paper_claim));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.columns.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Serialises the table as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("tables are serialisable")
    }

    /// Writes the table to `results/<id>.json` (relative to the workspace
    /// root when run via `cargo run -p wcc-bench`) and returns the path.
    pub fn write_json(&self) -> std::io::Result<String> {
        let dir = std::path::Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(&path, self.to_json())?;
        Ok(path.display().to_string())
    }
}

fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

fn ctx_for_graph(g: &Graph, delta: f64) -> MpcContext {
    MpcContext::new(
        MpcConfig::for_input_size((2 * g.num_edges() + g.num_vertices()).max(64), delta)
            .permissive(),
    )
}

/// E1 — rounds versus `n` on graphs whose components are expanders
/// (Theorem 1/4: `O(log log n + log 1/λ)` rounds).
pub fn exp_rounds_vs_n(sizes: &[usize]) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E1",
        "MPC rounds vs n on planted expander components (λ = Ω(1))",
        "Theorem 1/4: O(log log n + log 1/λ) rounds with n^δ memory per machine; \
         baselines need Ω(log n).",
        &[
            "n",
            "edges",
            "wcc rounds",
            "hash-to-min rounds",
            "random-mate rounds",
            "log2(n)",
            "2^rounds-sanity (log log n)",
        ],
    );
    let params = Params::laptop_scale();
    for (i, &n) in sizes.iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(100 + i as u64);
        let comp = (n / 4).max(8);
        let g = generators::planted_expander_components(&[comp, comp, comp, comp], 8, &mut rng);
        let result = well_connected_components(&g, 0.3, &params, 7 + i as u64).unwrap();
        assert_eq!(result.components.num_components(), 4);
        let mut ctx1 = ctx_for_graph(&g, params.delta);
        let htm = run_baseline("hash-to-min", &g, &mut ctx1, 1);
        let mut ctx2 = ctx_for_graph(&g, params.delta);
        let rm = run_baseline("random-mate", &g, &mut ctx2, 1);
        table.push(vec![
            n.to_string(),
            g.num_edges().to_string(),
            result.stats.total_rounds().to_string(),
            htm.rounds.to_string(),
            rm.rounds.to_string(),
            fmt_f((n as f64).log2()),
            fmt_f((n as f64).log2().log2()),
        ]);
    }
    table
}

/// E2 — rounds versus spectral gap (Theorem 1/4: the `log(1/λ)` term).
pub fn exp_rounds_vs_gap(n: usize) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E2",
        "MPC rounds vs spectral gap λ across graph families",
        "Theorem 1/4: rounds grow like log(1/λ) as the gap shrinks (walk length T = O(log n / λ)).",
        &[
            "family",
            "n",
            "measured λ",
            "promised λ",
            "walk length T",
            "wcc rounds",
            "bfs endgame levels",
        ],
    );
    let params = Params::laptop_scale();
    let families: Vec<(GraphFamily, f64)> = vec![
        (GraphFamily::Expander { degree: 12 }, 0.3),
        (GraphFamily::Expander { degree: 6 }, 0.15),
        (GraphFamily::RingOfCliques { clique_size: 16 }, 0.01),
        (GraphFamily::Grid, 0.003),
        (GraphFamily::Cycle, 0.0005),
    ];
    for (i, (family, promise)) in families.iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(200 + i as u64);
        let g = family.generate(n, &mut rng);
        let measured = spectral::spectral_gap(&g, 400);
        let result = well_connected_components(&g, *promise, &params, 11 + i as u64).unwrap();
        table.push(vec![
            family.name(),
            g.num_vertices().to_string(),
            fmt_f(measured),
            fmt_f(*promise),
            result.report.walk_length.to_string(),
            result.stats.total_rounds().to_string(),
            result.report.bfs_levels.to_string(),
        ]);
    }
    table
}

/// E3 — component size per leader-election phase (Lemma 6.7: sizes square).
pub fn exp_growth_per_phase(n: usize) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E3",
        "Component growth per leader-election phase on random batches",
        "Lemma 6.7 / Remark 1.1: part sizes grow quadratically per phase \
         (Δ, Δ², Δ⁴, …) instead of by a constant factor.",
        &[
            "phase",
            "target Δ_i",
            "parts before",
            "parts after",
            "median part size",
            "max part size",
            "orphans",
        ],
    );
    let params = Params::laptop_scale();
    let mut rng = ChaCha8Rng::seed_from_u64(300);
    let degree = params.batch_degree(n);
    let phases = params.num_phases(n);
    let batches: Vec<Graph> = (0..phases)
        .map(|_| generators::random_out_degree_graph(n, degree, &mut rng))
        .collect();
    let mut ctx = ctx_for_graph(&batches[0], params.delta);
    let grow = grow_components(&batches, &params, &mut ctx, &mut rng).unwrap();
    let union = union_of(&batches);
    assert!(grow.partition.respects(&connected_components(&union)));
    for p in &grow.phases {
        table.push(vec![
            p.phase.to_string(),
            p.target_degree.to_string(),
            p.parts_before.to_string(),
            p.parts_after.to_string(),
            p.median_part_size.to_string(),
            p.max_part_size.to_string(),
            p.orphans.to_string(),
        ]);
    }
    table
}

/// E4 — quality of the Theorem 3 random-walk data structure.
pub fn exp_random_walk_quality(n: usize, t: usize) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E4",
        "Independent random walks via the layered graph (Theorem 3)",
        "Theorem 3 + Lemma 5.3: every vertex obtains a walk endpoint with the true walk \
         distribution, and each walk is certified independent with probability ≥ 1/2 \
         (regular graphs); hub graphs destroy independence, which is why Step 1 regularizes.",
        &[
            "graph",
            "n",
            "walk length",
            "certified independent",
            "fraction",
            "endpoint TVD to uniform",
        ],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(400);
    let cases: Vec<(&str, Graph)> = vec![
        (
            "regular expander (d=8)",
            generators::random_regular_permutation_graph(n, 8, &mut rng),
        ),
        ("star (hub)", generators::star(n)),
    ];
    for (name, g) in cases {
        let mut independent = 0usize;
        let mut counts = vec![0f64; g.num_vertices()];
        let reps = 20;
        for _ in 0..reps {
            let bundle = layered_walk_bundle(&g, t, 2, &mut rng);
            independent += bundle.independent.iter().filter(|&&b| b).count();
            for &target in &bundle.targets {
                counts[target] += 1.0;
            }
        }
        let total: f64 = counts.iter().sum();
        let empirical: Vec<f64> = counts.iter().map(|c| c / total).collect();
        let uniform = vec![1.0 / g.num_vertices() as f64; g.num_vertices()];
        let tvd = spectral::total_variation_distance(&empirical, &uniform);
        let frac = independent as f64 / (reps * g.num_vertices()) as f64;
        table.push(vec![
            name.to_string(),
            g.num_vertices().to_string(),
            t.to_string(),
            independent.to_string(),
            fmt_f(frac),
            fmt_f(tvd),
        ]);
    }
    table
}

/// E5 — the regularization step (Lemma 4.1 / Proposition 4.2).
pub fn exp_regularization(n: usize) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E5",
        "Replacement-product regularization",
        "Lemma 4.1: output is Δ-regular on 2m vertices, components correspond one-to-one, \
         and the spectral gap is preserved up to a constant factor (Proposition 4.2).",
        &[
            "family",
            "max degree before",
            "degree after",
            "components before",
            "components after",
            "gap before",
            "gap after",
        ],
    );
    let params = Params::laptop_scale();
    let families = [
        GraphFamily::Expander { degree: 10 },
        GraphFamily::PreferentialAttachment {
            edges_per_vertex: 2,
        },
        GraphFamily::PlantedExpanders {
            num_components: 3,
            degree: 8,
        },
        GraphFamily::Star,
    ];
    for (i, family) in families.iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(500 + i as u64);
        let g = family.generate(n, &mut rng);
        let gap_before = spectral::min_component_spectral_gap(&g, 300).unwrap_or(0.0);
        let cc_before = connected_components(&g).num_components();
        let mut ctx = ctx_for_graph(&g, params.delta);
        let reg = regularize(&g, &params, &mut ctx, &mut rng).unwrap();
        let gap_after = spectral::min_component_spectral_gap(&reg.graph, 300).unwrap_or(0.0);
        let cc_after = connected_components(&reg.graph).num_components();
        table.push(vec![
            family.name(),
            g.max_degree().to_string(),
            format!(
                "{} (regular: {})",
                reg.graph.max_degree(),
                reg.graph.is_regular(reg.degree)
            ),
            cc_before.to_string(),
            cc_after.to_string(),
            fmt_f(gap_before),
            fmt_f(gap_after),
        ]);
    }
    table
}

/// E6 — the mildly-sublinear-space algorithm (Theorem 2).
pub fn exp_sublinear_space(n: usize, memories: &[usize]) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E6",
        "SublinearConn rounds vs memory per machine on an arbitrary (non-expander) graph",
        "Theorem 2: O(log log n + log(n/s)) rounds on machines of memory s, with no spectral-gap assumption.",
        &["memory s", "densification degree d", "walk length", "contracted vertices", "rounds", "log2(n/s)"],
    );
    let side = (n as f64).sqrt() as usize;
    let g = generators::grid(side, side);
    let truth = connected_components(&g);
    for (i, &s) in memories.iter().enumerate() {
        let result =
            sublinear_components(&g, s, &SublinearParams::laptop_scale(), 13 + i as u64).unwrap();
        assert!(result.components.same_partition(&truth));
        table.push(vec![
            s.to_string(),
            result.report.target_degree.to_string(),
            result.report.walk_length.to_string(),
            result.report.contracted_vertices.to_string(),
            result.stats.total_rounds().to_string(),
            fmt_f((g.num_vertices() as f64 / s as f64).log2().max(0.0)),
        ]);
    }
    table
}

/// E7 — the unknown-gap adaptive algorithm (Corollary 7.1).
pub fn exp_adaptive_unknown_gap(n: usize) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E7",
        "Adaptive algorithm with unknown spectral gaps",
        "Corollary 7.1: components with gap λ are output after O(log log (1/λ)) guess levels \
         (λ' = 1/2, then λ'^1.1, …); well-connected components finish in the first levels.",
        &[
            "level",
            "gap guess λ'",
            "active vertices",
            "rounds this level",
        ],
    );
    let params = Params::laptop_scale();
    let mut rng = ChaCha8Rng::seed_from_u64(700);
    let expander = generators::random_regular_permutation_graph(n / 2, 10, &mut rng);
    let cliques = generators::ring_of_cliques((n / 4 / 12).max(3), 12);
    let cycle = generators::cycle(n / 4);
    let (g, _) = generators::disjoint_union_of(&[expander, cliques, cycle]);
    let truth = connected_components(&g);
    let result = adaptive_components(&g, &params, 77).unwrap();
    assert!(result.components.same_partition(&truth));
    for (i, lambda) in result.lambda_levels.iter().enumerate() {
        table.push(vec![
            (i + 1).to_string(),
            fmt_f(*lambda),
            result.active_vertices_per_level[i].to_string(),
            result.rounds_per_level[i].to_string(),
        ]);
    }
    table
}

/// E8 — the expander-connectivity query game (Section 9).
pub fn exp_lower_bound_game(sizes: &[usize]) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E8",
        "Decision-tree adversary for ExpanderConn",
        "Lemma 9.3 / Claim 9.4: the adversary forces Ω(n / log n) edge queries; \
         with s-word machines this yields the Ω(log_s n) round bound of Theorem 5.",
        &[
            "n",
            "candidates k",
            "max edge multiplicity",
            "forced queries (greedy)",
            "k / multiplicity",
            "n / log2 n",
        ],
    );
    for (i, &n) in sizes.iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(800 + i as u64);
        let inst = ExpanderConnInstance::build(n, 8, 4, &mut rng);
        let mult = inst.max_edge_multiplicity();
        let forced = greedy_query_game(&inst);
        table.push(vec![
            n.to_string(),
            inst.num_candidates().to_string(),
            mult.to_string(),
            forced.to_string(),
            fmt_f(inst.num_candidates() as f64 / mult.max(1) as f64),
            fmt_f(n as f64 / (n as f64).log2()),
        ]);
    }
    table
}

/// E9 — memory and machine accounting (the resource side of Theorem 4).
pub fn exp_memory_accounting(sizes: &[usize]) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E9",
        "Per-machine memory and total communication of the pipeline",
        "Theorem 4: O(m^δ polylog) memory per machine, Õ(m/λ²) total memory; the simulator \
         records the realised maxima.",
        &[
            "n",
            "memory budget/machine",
            "max machine load",
            "violations",
            "total shuffled words",
            "rounds",
        ],
    );
    let params = Params::laptop_scale();
    for (i, &n) in sizes.iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(900 + i as u64);
        let g = generators::planted_expander_components(&[n / 2, n / 2], 8, &mut rng);
        let result = well_connected_components(&g, 0.3, &params, 31 + i as u64).unwrap();
        let budget = MpcConfig::for_input_size(2 * g.num_edges() + g.num_vertices(), params.delta)
            .memory_per_machine;
        table.push(vec![
            n.to_string(),
            budget.to_string(),
            result.stats.max_machine_load_words().to_string(),
            result.stats.memory_violations().to_string(),
            result.stats.total_communication_words().to_string(),
            result.stats.total_rounds().to_string(),
        ]);
    }
    table
}

/// E10 — head-to-head against the `Θ(log n)`-round baselines, including the
/// bridge-of-two-expanders instance discussed in Section 1.3.
pub fn exp_vs_baselines(n: usize) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E10",
        "Rounds: this paper vs classical baselines",
        "Sections 1.1/1.3: exponential round improvement over label-propagation / \
         constant-growth leader election on well-connected graphs; the two-expanders-with-a-bridge \
         instance has a tiny gap, where the guarantee degrades gracefully.",
        &[
            "instance",
            "wcc rounds",
            "min-label rounds",
            "hash-to-min rounds",
            "random-mate rounds",
            "shiloach-vishkin rounds",
        ],
    );
    let params = Params::laptop_scale();
    let mut rng = ChaCha8Rng::seed_from_u64(1000);
    let instances: Vec<(&str, Graph, f64)> = vec![
        (
            "4 expander components",
            generators::planted_expander_components(&[n / 4; 4], 8, &mut rng),
            0.3,
        ),
        (
            "two expanders + bridge",
            generators::two_expanders_bridge(n / 2, 8, &mut rng),
            0.01,
        ),
    ];
    for (j, (name, g, lambda)) in instances.into_iter().enumerate() {
        let result = well_connected_components(&g, lambda, &params, 41 + j as u64).unwrap();
        let mut rounds = vec![result.stats.total_rounds().to_string()];
        for b in [
            "min-label",
            "hash-to-min",
            "random-mate",
            "shiloach-vishkin",
        ] {
            let mut ctx = ctx_for_graph(&g, params.delta);
            let r = run_baseline(b, &g, &mut ctx, 5);
            assert!(r.labels.same_partition(&connected_components(&g)));
            rounds.push(r.rounds.to_string());
        }
        let mut row = vec![name.to_string()];
        row.extend(rounds);
        table.push(row);
    }
    table
}

/// E11 — properties of the random-graph family `G(n, d)` and the
/// balls-and-bins bound (Propositions 2.3–2.5 and B.1).
pub fn exp_random_graph_props(n: usize) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E11",
        "Random-graph family G(n, d) and balls-and-bins concentration",
        "Prop. 2.3 (almost-regularity), 2.4 (connectivity for d ≥ c log n), 2.5 (expansion), \
         B.1 (non-empty bins ≈ (1±2ε)N).",
        &["check", "parameters", "predicted", "measured"],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(1100);
    let ln_n = (n as f64).ln();
    // Almost-regularity with eps = 0.5.
    let d_reg = ((4.0 * ln_n / 0.25).ceil() as usize).next_multiple_of(2);
    let g = generators::random_out_degree_graph(n, d_reg, &mut rng);
    table.push(vec![
        "almost-regular (Prop 2.3)".into(),
        format!("n={n}, d={d_reg}, ε=0.5"),
        "all degrees in (1±0.5)d".into(),
        format!(
            "min {} / max {} (target [{}, {}])",
            g.min_degree(),
            g.max_degree(),
            (0.5 * d_reg as f64) as usize,
            (1.5 * d_reg as f64) as usize
        ),
    ]);
    // Connectivity at d = 4 ln n vs d = 2.
    let d_conn = (4.0 * ln_n).ceil() as usize;
    let connected_trials = 20;
    let mut connected = 0;
    for _ in 0..connected_trials {
        let h = generators::random_out_degree_graph(n, d_conn, &mut rng);
        if connected_components(&h).num_components() == 1 {
            connected += 1;
        }
    }
    table.push(vec![
        "connectivity (Prop 2.4)".into(),
        format!("n={n}, d={d_conn}, {connected_trials} trials"),
        "connected w.h.p.".into(),
        format!("{connected}/{connected_trials} connected"),
    ]);
    // Expansion / mixing (Prop 2.5): mixing time should be polylog.
    let h = generators::random_out_degree_graph(n.min(2000), d_conn, &mut rng);
    let mix = spectral::estimate_mixing_time(&h, 0.1, 1 << 14, 3, &mut rng);
    table.push(vec![
        "mixing time (Prop 2.5)".into(),
        format!("n={}, d={d_conn}", h.num_vertices()),
        "O(d² log n) (polylog)".into(),
        format!("{:?} lazy steps", mix),
    ]);
    // Balls and bins (Prop B.1).
    let bins = 200_000;
    let eps = 0.05f64;
    let balls = (eps * bins as f64) as usize;
    let outcome = wcc_core::concentration::balls_and_bins(balls, bins, eps, &mut rng);
    let (lo, hi, _) = wcc_core::concentration::balls_and_bins_prediction(balls, eps);
    table.push(vec![
        "balls & bins (Prop B.1)".into(),
        format!("N={balls}, B={bins}, ε={eps}"),
        format!("non-empty ∈ [{:.0}, {:.0}]", lo, hi),
        outcome.non_empty.to_string(),
    ]);
    table
}

/// E12 — ablations: skip regularization (hub collisions) and reuse a single
/// batch across phases (growth stalls).
pub fn exp_ablations(n: usize) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E12",
        "Ablations of the design choices",
        "Section 3: (a) without regularization, hub vertices correlate the walks \
         (few independent walks survive); (b) without fresh batches per phase, the contraction \
         correlates with the graph and growth stalls relative to fresh randomness.",
        &["ablation", "configuration", "metric", "value"],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(1200);

    // (a) Walk independence with and without regularization on a hub graph.
    let star = generators::star(n.min(2000));
    let params = Params::laptop_scale();
    let bundle = layered_walk_bundle(&star, 8, 2, &mut rng);
    let ind_raw = bundle.independent.iter().filter(|&&b| b).count();
    let mut ctx = ctx_for_graph(&star, params.delta);
    let reg = regularize(&star, &params, &mut ctx, &mut rng).unwrap();
    let bundle_reg = layered_walk_bundle(&reg.graph, 8, 2, &mut rng);
    let ind_reg = bundle_reg.independent.iter().filter(|&&b| b).count();
    table.push(vec![
        "(a) skip regularization".into(),
        format!("star, n={}", star.num_vertices()),
        "certified-independent walks".into(),
        format!("{ind_raw} / {}", star.num_vertices()),
    ]);
    table.push(vec![
        "(a) with regularization".into(),
        format!("replacement product, n={}", reg.graph.num_vertices()),
        "certified-independent walks".into(),
        format!("{ind_reg} / {}", reg.graph.num_vertices()),
    ]);

    // (b) Fresh batches vs one reused batch.
    let params = Params::laptop_scale();
    let degree = params.batch_degree(n);
    let phases = params.num_phases(n);
    let fresh: Vec<Graph> = (0..phases)
        .map(|_| generators::random_out_degree_graph(n, degree, &mut rng))
        .collect();
    let reused: Vec<Graph> = {
        let b = generators::random_out_degree_graph(n, degree, &mut rng);
        (0..phases).map(|_| b.clone()).collect()
    };
    for (name, batches) in [
        ("fresh batch per phase", fresh),
        ("single batch reused", reused),
    ] {
        let mut ctx = ctx_for_graph(&batches[0], params.delta);
        let grow = grow_components(&batches, &params, &mut ctx, &mut rng).unwrap();
        let last = grow.phases.last().unwrap();
        table.push(vec![
            "(b) batch freshness".into(),
            format!("{name}, n={n}, F={phases}"),
            "median part size after last phase".into(),
            last.median_part_size.to_string(),
        ]);
    }
    table
}

/// Runs every experiment with its default (laptop-scale) parameters.
/// Used by the `run_all_experiments` binary and by EXPERIMENTS.md generation.
pub fn run_all() -> Vec<ExperimentTable> {
    vec![
        exp_rounds_vs_n(&[1 << 9, 1 << 10, 1 << 11, 1 << 12, 1 << 13]),
        exp_rounds_vs_gap(1024),
        exp_growth_per_phase(30_000),
        exp_random_walk_quality(300, 16),
        exp_regularization(600),
        exp_sublinear_space(1024, &[32, 128, 512, 2048]),
        exp_adaptive_unknown_gap(2000),
        exp_lower_bound_game(&[512, 1024, 2048, 4096]),
        exp_memory_accounting(&[1 << 9, 1 << 11, 1 << 13]),
        exp_vs_baselines(1536),
        exp_random_graph_props(3000),
        exp_ablations(15_000),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_markdown_and_json() {
        let mut t = ExperimentTable::new("E0", "smoke", "none", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("E0"));
        assert!(md.contains("| 1 | 2 |"));
        let json = t.to_json();
        assert!(json.contains("\"rows\""));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn mismatched_rows_are_rejected() {
        let mut t = ExperimentTable::new("E0", "smoke", "none", &["a", "b"]);
        t.push(vec!["only one".into()]);
    }

    #[test]
    fn small_experiments_run_quickly() {
        // Smoke-test a few experiments at reduced sizes so `cargo test`
        // exercises the harness end to end.
        let e8 = exp_lower_bound_game(&[128, 256]);
        assert_eq!(e8.rows.len(), 2);
        let e4 = exp_random_walk_quality(60, 8);
        assert_eq!(e4.rows.len(), 2);
        let e11 = exp_random_graph_props(400);
        assert_eq!(e11.rows.len(), 4);
    }
}
