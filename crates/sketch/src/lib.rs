//! Linear graph sketches for connectivity.
//!
//! Section 8 of the paper (the mildly-sublinear-space algorithm, Theorem 2)
//! finishes by invoking Proposition 8.1 — the linear-sketching connectivity
//! algorithm of Ahn, Guha and McGregor (SODA 2012): every vertex can compress
//! its incident edge list into a `polylog(n)`-bit message such that a central
//! coordinator can recover the connected components from the messages alone.
//!
//! This crate implements that substrate from scratch:
//!
//! * [`OneSparseRecovery`] — exact recovery of a vector that has exactly one
//!   non-zero coordinate, with a fingerprint test to detect the other cases;
//! * [`L0Sampler`] — samples a non-zero coordinate of a dynamically updated
//!   vector, built from geometrically sub-sampled one-sparse recoveries;
//! * [`ConnectivitySketch`] — the AGM sketch: each vertex sketches its signed
//!   edge-incidence vector with `O(log n)` independent L0 samplers; sketches
//!   are *linear*, so the sketch of a component is the sum of its vertices'
//!   sketches, and Borůvka can be run entirely in sketch space.
//!
//! ```
//! use wcc_sketch::ConnectivitySketch;
//! use wcc_graph::prelude::*;
//!
//! let g = generators::cycle(12);
//! let mut sketch = ConnectivitySketch::new(g.num_vertices(), 7);
//! for (u, v) in g.edge_iter() {
//!     sketch.add_edge(u, v);
//! }
//! let labels = sketch.components();
//! assert_eq!(labels.num_components(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connectivity;
pub mod dynamic;
pub mod l0;
pub mod one_sparse;

pub use crate::connectivity::ConnectivitySketch;
pub use crate::dynamic::{DynamicConnectivitySketch, SubsetPartition};
pub use crate::l0::L0Sampler;
pub use crate::one_sparse::{OneSparseRecovery, RecoveryOutcome};
