//! Exact recovery of 1-sparse vectors with a fingerprint test.
//!
//! A *1-sparse* vector has exactly one non-zero coordinate. The classic
//! recovery structure keeps three linear measurements of the stream of
//! updates `(index, delta)`:
//!
//! * `w  = Σ delta`                      (total weight),
//! * `iw = Σ index · delta`              (index-weighted sum),
//! * `f  = Σ delta · z^index  (mod p)`   (a polynomial fingerprint at a
//!   random evaluation point `z`),
//!
//! all of which are linear in the vector, so two structures can be added
//! coordinate-wise. If the vector is 1-sparse with support `{i}` and weight
//! `w`, then `iw / w = i` and the fingerprint equals `w · z^i`; a vector that
//! is *not* 1-sparse passes this test with probability at most
//! `(max index)/p` over the choice of `z` (Schwartz–Zippel on a degree-
//! `max index` polynomial).

use serde::{Deserialize, Serialize};

/// The Mersenne prime `2^61 - 1` used as the fingerprint field.
pub const FINGERPRINT_PRIME: u64 = (1 << 61) - 1;

fn mod_p(x: u128) -> u64 {
    (x % FINGERPRINT_PRIME as u128) as u64
}

fn mul_mod(a: u64, b: u64) -> u64 {
    mod_p(a as u128 * b as u128)
}

fn add_mod(a: u64, b: u64) -> u64 {
    mod_p(a as u128 + b as u128)
}

fn pow_mod(mut base: u64, mut exp: u64) -> u64 {
    let mut acc = 1u64;
    base %= FINGERPRINT_PRIME;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base);
        }
        base = mul_mod(base, base);
        exp >>= 1;
    }
    acc
}

/// Result of attempting to recover the sketched vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryOutcome {
    /// The sketched vector is (verifiably) the zero vector.
    Zero,
    /// The sketched vector is 1-sparse: coordinate `index` holds `weight`.
    OneSparse {
        /// The unique non-zero coordinate.
        index: u64,
        /// Its (signed) value.
        weight: i64,
    },
    /// The sketched vector has two or more non-zero coordinates (or the
    /// fingerprint test failed).
    NotOneSparse,
}

/// A linear sketch that exactly recovers 1-sparse vectors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OneSparseRecovery {
    weight_sum: i64,
    index_weight_sum: i128,
    fingerprint: u64,
    /// Random evaluation point of the fingerprint polynomial; two structures
    /// may only be merged if they share it.
    z: u64,
}

impl OneSparseRecovery {
    /// Creates an empty structure with fingerprint evaluation point `z`
    /// (callers should draw `z` uniformly from `[1, p)`; see
    /// [`L0Sampler`](crate::L0Sampler) for how this is seeded).
    pub fn new(z: u64) -> Self {
        OneSparseRecovery {
            weight_sum: 0,
            index_weight_sum: 0,
            fingerprint: 0,
            z: z % FINGERPRINT_PRIME,
        }
    }

    /// Applies the update `vector[index] += delta`.
    pub fn update(&mut self, index: u64, delta: i64) {
        self.weight_sum += delta;
        self.index_weight_sum += index as i128 * delta as i128;
        let delta_mod = delta.rem_euclid(FINGERPRINT_PRIME as i64) as u64;
        self.fingerprint = add_mod(self.fingerprint, mul_mod(delta_mod, pow_mod(self.z, index)));
    }

    /// Adds another structure (vector addition). Both must share the same
    /// fingerprint point.
    ///
    /// # Panics
    ///
    /// Panics if the two structures were created with different `z`.
    pub fn merge(&mut self, other: &OneSparseRecovery) {
        assert_eq!(
            self.z, other.z,
            "cannot merge one-sparse recoveries with different fingerprint points"
        );
        self.weight_sum += other.weight_sum;
        self.index_weight_sum += other.index_weight_sum;
        self.fingerprint = add_mod(self.fingerprint, other.fingerprint);
    }

    /// Attempts to recover the sketched vector.
    pub fn recover(&self) -> RecoveryOutcome {
        if self.weight_sum == 0 && self.index_weight_sum == 0 && self.fingerprint == 0 {
            return RecoveryOutcome::Zero;
        }
        if self.weight_sum == 0 {
            return RecoveryOutcome::NotOneSparse;
        }
        if self.index_weight_sum % self.weight_sum as i128 != 0 {
            return RecoveryOutcome::NotOneSparse;
        }
        let index = self.index_weight_sum / self.weight_sum as i128;
        if index < 0 || index > u64::MAX as i128 {
            return RecoveryOutcome::NotOneSparse;
        }
        let index = index as u64;
        let w_mod = self.weight_sum.rem_euclid(FINGERPRINT_PRIME as i64) as u64;
        let expected = mul_mod(w_mod, pow_mod(self.z, index));
        if expected != self.fingerprint {
            return RecoveryOutcome::NotOneSparse;
        }
        RecoveryOutcome::OneSparse {
            index,
            weight: self.weight_sum,
        }
    }

    /// Number of machine words this structure occupies (for the message-size
    /// accounting of Proposition 8.1).
    pub fn size_in_words(&self) -> usize {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Z: u64 = 0x1234_5678_9abc_def1 % FINGERPRINT_PRIME;

    #[test]
    fn zero_vector_recovers_as_zero() {
        let s = OneSparseRecovery::new(Z);
        assert_eq!(s.recover(), RecoveryOutcome::Zero);
    }

    #[test]
    fn single_update_recovers_exactly() {
        let mut s = OneSparseRecovery::new(Z);
        s.update(42, 7);
        assert_eq!(
            s.recover(),
            RecoveryOutcome::OneSparse {
                index: 42,
                weight: 7
            }
        );
    }

    #[test]
    fn cancelling_updates_return_to_zero() {
        let mut s = OneSparseRecovery::new(Z);
        s.update(10, 3);
        s.update(10, -3);
        assert_eq!(s.recover(), RecoveryOutcome::Zero);
    }

    #[test]
    fn insert_then_delete_other_coordinate_recovers_survivor() {
        let mut s = OneSparseRecovery::new(Z);
        s.update(5, 1);
        s.update(9, 1);
        s.update(9, -1);
        assert_eq!(
            s.recover(),
            RecoveryOutcome::OneSparse {
                index: 5,
                weight: 1
            }
        );
    }

    #[test]
    fn two_sparse_vector_is_rejected() {
        let mut s = OneSparseRecovery::new(Z);
        s.update(3, 1);
        s.update(8, 1);
        assert_eq!(s.recover(), RecoveryOutcome::NotOneSparse);
        // Also with weights that average to an integer index.
        let mut t = OneSparseRecovery::new(Z);
        t.update(2, 1);
        t.update(4, 1);
        assert_eq!(t.recover(), RecoveryOutcome::NotOneSparse);
    }

    #[test]
    fn negative_weight_single_coordinate() {
        let mut s = OneSparseRecovery::new(Z);
        s.update(17, -4);
        assert_eq!(
            s.recover(),
            RecoveryOutcome::OneSparse {
                index: 17,
                weight: -4
            }
        );
    }

    #[test]
    fn merge_is_vector_addition() {
        let mut a = OneSparseRecovery::new(Z);
        let mut b = OneSparseRecovery::new(Z);
        a.update(6, 2);
        a.update(11, 1);
        b.update(11, -1);
        a.merge(&b);
        assert_eq!(
            a.recover(),
            RecoveryOutcome::OneSparse {
                index: 6,
                weight: 2
            }
        );
    }

    #[test]
    #[should_panic(expected = "different fingerprint points")]
    fn merge_with_mismatched_z_panics() {
        let mut a = OneSparseRecovery::new(1);
        let b = OneSparseRecovery::new(2);
        a.merge(&b);
    }

    #[test]
    fn large_indices_are_supported() {
        // Edge slots are encoded as u*n + v which can approach 2^40 and more.
        let mut s = OneSparseRecovery::new(Z);
        let idx = (1u64 << 45) + 12345;
        s.update(idx, 1);
        assert_eq!(
            s.recover(),
            RecoveryOutcome::OneSparse {
                index: idx,
                weight: 1
            }
        );
    }
}
