//! ℓ0-sampling: return (some) non-zero coordinate of a dynamically updated
//! vector using polylogarithmic space.
//!
//! The sampler keeps one [`OneSparseRecovery`] per geometric level
//! `j = 0, …, L`. A pairwise-independent hash assigns every coordinate a
//! level `ℓ(i)` with `Pr[ℓ(i) ≥ j] = 2^{-j}`; level `j` receives exactly the
//! updates of coordinates with `ℓ(i) ≥ j`. If the vector has `k` non-zero
//! coordinates then the level with `2^j ≈ k` contains exactly one of them
//! with constant probability, and its one-sparse recovery succeeds. Sampling
//! fails (returns `None`) with constant probability; callers that need high
//! success probability keep `O(log n)` independent samplers (as
//! [`ConnectivitySketch`](crate::ConnectivitySketch) does).
//!
//! The structure is linear: two samplers built with the same seed can be
//! merged coordinate-wise, which is exactly what sketch-space Borůvka needs.

use crate::one_sparse::{OneSparseRecovery, RecoveryOutcome, FINGERPRINT_PRIME};

use serde::{Deserialize, Serialize};

/// Number of geometric sub-sampling levels (supports universes up to `2^60`).
const NUM_LEVELS: usize = 61;

/// An ℓ0-sampler over a vector indexed by `u64` coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct L0Sampler {
    levels: Vec<OneSparseRecovery>,
    /// Seed of the level-assignment hash; two samplers can only be merged if
    /// they agree on it.
    seed: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl L0Sampler {
    /// Creates an empty sampler whose level hash and fingerprints are derived
    /// deterministically from `seed`.
    pub fn new(seed: u64) -> Self {
        let z = splitmix64(seed ^ 0xA5A5_A5A5_A5A5_A5A5) % (FINGERPRINT_PRIME - 2) + 1;
        L0Sampler {
            levels: (0..NUM_LEVELS).map(|_| OneSparseRecovery::new(z)).collect(),
            seed,
        }
    }

    /// The level of coordinate `i`: geometric with ratio 1/2.
    fn level_of(&self, index: u64) -> usize {
        let h = splitmix64(index ^ self.seed);
        (h.trailing_ones() as usize).min(NUM_LEVELS - 1)
    }

    /// Applies the update `vector[index] += delta`.
    pub fn update(&mut self, index: u64, delta: i64) {
        let level = self.level_of(index);
        // Coordinate i participates in levels 0..=level.
        for l in 0..=level {
            self.levels[l].update(index, delta);
        }
    }

    /// Adds another sampler (vector addition).
    ///
    /// # Panics
    ///
    /// Panics if the samplers were created with different seeds.
    pub fn merge(&mut self, other: &L0Sampler) {
        assert_eq!(
            self.seed, other.seed,
            "cannot merge samplers with different seeds"
        );
        for (a, b) in self.levels.iter_mut().zip(other.levels.iter()) {
            a.merge(b);
        }
    }

    /// Attempts to return a non-zero coordinate of the sketched vector.
    ///
    /// Returns `Some((index, weight))` if some level recovers a 1-sparse
    /// vector, `None` if the vector appears to be zero or sampling failed at
    /// every level.
    pub fn sample(&self) -> Option<(u64, i64)> {
        // Prefer deeper levels (sparser sub-samples) but accept any success.
        for level in self.levels.iter() {
            if let RecoveryOutcome::OneSparse { index, weight } = level.recover() {
                return Some((index, weight));
            }
        }
        None
    }

    /// Returns `true` if every level is verifiably zero, i.e. the sketched
    /// vector is (with certainty, since level 0 contains all coordinates)
    /// the zero vector.
    pub fn is_zero(&self) -> bool {
        matches!(self.levels[0].recover(), RecoveryOutcome::Zero)
    }

    /// Seed used for level assignment.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of machine words this sampler occupies.
    pub fn size_in_words(&self) -> usize {
        1 + self.levels.iter().map(|l| l.size_in_words()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn empty_sampler_is_zero_and_samples_none() {
        let s = L0Sampler::new(1);
        assert!(s.is_zero());
        assert_eq!(s.sample(), None);
    }

    #[test]
    fn single_coordinate_is_always_recovered() {
        for seed in 0..20 {
            let mut s = L0Sampler::new(seed);
            s.update(seed * 1000 + 3, 5);
            assert_eq!(s.sample(), Some((seed * 1000 + 3, 5)));
        }
    }

    #[test]
    fn sampled_coordinate_is_a_true_nonzero() {
        let coords: Vec<u64> = (0..200).map(|i| i * 17 + 1).collect();
        let coord_set: HashSet<u64> = coords.iter().copied().collect();
        let mut successes = 0;
        for seed in 0..50 {
            let mut s = L0Sampler::new(seed);
            for &c in &coords {
                s.update(c, 1);
            }
            if let Some((idx, w)) = s.sample() {
                successes += 1;
                assert!(
                    coord_set.contains(&idx),
                    "sampled a phantom coordinate {idx}"
                );
                assert_eq!(w, 1);
            }
        }
        // Success probability is constant; 50 trials virtually never all fail.
        assert!(successes > 25, "only {successes}/50 samples succeeded");
    }

    #[test]
    fn deletions_remove_coordinates_from_sampling() {
        let mut s = L0Sampler::new(99);
        for c in 0..100u64 {
            s.update(c, 1);
        }
        for c in 0..99u64 {
            s.update(c, -1);
        }
        // Only coordinate 99 is left.
        assert_eq!(s.sample(), Some((99, 1)));
        s.update(99, -1);
        assert!(s.is_zero());
    }

    #[test]
    fn merge_acts_like_updating_one_sampler() {
        let mut a = L0Sampler::new(7);
        let mut b = L0Sampler::new(7);
        let mut c = L0Sampler::new(7);
        for i in 0..50u64 {
            a.update(i, 1);
            c.update(i, 1);
        }
        for i in 25..75u64 {
            b.update(i, -1);
            c.update(i, -1);
        }
        a.merge(&b);
        assert_eq!(a.sample(), c.sample());
    }

    #[test]
    fn different_seeds_give_different_level_assignments() {
        // Statistical smoke test: with different seeds the samplers should not
        // behave identically on a fixed adversarial input.
        let mut distinct = HashSet::new();
        for seed in 0..10 {
            let mut s = L0Sampler::new(seed);
            for i in 0..500u64 {
                s.update(i, 1);
            }
            distinct.insert(s.sample());
        }
        assert!(distinct.len() > 1);
    }

    #[test]
    #[should_panic(expected = "different seeds")]
    fn merging_different_seeds_panics() {
        let mut a = L0Sampler::new(1);
        let b = L0Sampler::new(2);
        a.merge(&b);
    }

    #[test]
    fn size_in_words_is_polylog() {
        let s = L0Sampler::new(0);
        assert!(s.size_in_words() < 400);
    }
}
