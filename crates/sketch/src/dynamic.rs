//! Turnstile AGM sketches over a growing vertex universe.
//!
//! [`ConnectivitySketch`](crate::ConnectivitySketch) is built for a fixed
//! vertex count `n`: its edge coordinates are `u·n + v`, so the sketch cannot
//! absorb vertices that arrive after construction without re-indexing every
//! coordinate. A streaming engine discovers vertices as edges arrive, so this
//! module keeps the same per-vertex signed edge-incidence sketches but indexes
//! the coordinate space by the *pair itself*: edge `{u, v}` with `u < v` lives
//! at coordinate `(u << 32) | v`. That makes the coordinate independent of the
//! current vertex count — [`DynamicConnectivitySketch::push_vertex`] appends a
//! fresh empty vertex sketch and every existing coordinate stays valid.
//!
//! The price is a coordinate universe of size `2^64` instead of `n²`, which
//! costs nothing in space (the samplers are universe-size oblivious) and only
//! weakens the one-sparse fingerprint bound from `O(n²/p)` to `O(m·2^64/p·…)`
//! — still negligible because the fingerprint test is evaluated over
//! `p = 2^61 − 1` on the *actual support* (at most `m` coordinates), giving a
//! collision probability of `O(m/p)` per recovery. The construction is valid
//! for dense vertex ids below `2^32`; the streaming engine interns raw ids to
//! dense `u32`s, so this always holds.
//!
//! The turnstile property is inherited from linearity: a deletion is a `−1`
//! update on the same coordinate, so after any interleaving of inserts and
//! deletes the sketch equals the sketch of the surviving edge multiset.
//!
//! [`DynamicConnectivitySketch::subset_components`] is the repair primitive
//! the streaming engine runs after a deletion: sketch-space Borůvka restricted
//! to the members of one (possibly no-longer-connected) component, returning
//! the exact partition into connected parts when a phase *certifies* it (every
//! part's summed sampler is zero on level 0 — a randomness-independent test),
//! or `None` on sampling failure so the caller can escalate to a full
//! recompute.

use crate::connectivity::VertexSketch;
use crate::l0::L0Sampler;

use serde::{Deserialize, Serialize};

/// Encodes the unordered edge `{u, v}` as an ℓ0 coordinate independent of the
/// vertex count: the smaller endpoint in the high 32 bits.
fn edge_coordinate(u: u32, v: u32) -> u64 {
    debug_assert_ne!(u, v);
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    ((a as u64) << 32) | b as u64
}

fn decode_edge_coordinate(idx: u64) -> (u32, u32) {
    ((idx >> 32) as u32, (idx & 0xFFFF_FFFF) as u32)
}

/// A certified partition of a member set into its exact connected parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubsetPartition {
    /// The connected parts, ordered by smallest member; each part's members
    /// are ascending. A deterministic function of the sketch state and the
    /// member set.
    pub parts: Vec<Vec<u32>>,
    /// Number of Borůvka phases consumed before certification succeeded.
    pub phases_used: usize,
}

/// An AGM connectivity sketch whose vertex set can grow and whose edge
/// multiset supports turnstile updates (inserts and deletes).
///
/// All vertices share the same per-phase hash seeds (the shared-randomness
/// requirement of Proposition 8.1), so per-vertex sketches remain addable and
/// a component's sketch is the sum of its members' sketches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynamicConnectivitySketch {
    num_phases: usize,
    seed: u64,
    words_per_vertex: usize,
    vertices: Vec<VertexSketch>,
}

impl DynamicConnectivitySketch {
    /// Creates an empty sketch (zero vertices) with `num_phases` independent
    /// Borůvka phases. More phases raise the certification probability of
    /// [`subset_components`](Self::subset_components) and the message size.
    pub fn new(num_phases: usize, seed: u64) -> Self {
        assert!(num_phases > 0, "at least one Borůvka phase required");
        let words_per_vertex = VertexSketch::new(num_phases, seed).size_in_words();
        DynamicConnectivitySketch {
            num_phases,
            seed,
            words_per_vertex,
            vertices: Vec::new(),
        }
    }

    /// Number of vertices currently tracked.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of Borůvka phases per vertex.
    pub fn num_phases(&self) -> usize {
        self.num_phases
    }

    /// Size of one vertex's message in machine words (constant: samplers are
    /// fixed-size regardless of content).
    pub fn words_per_vertex(&self) -> usize {
        self.words_per_vertex
    }

    /// Appends one fresh (edge-less) vertex; its dense id is the previous
    /// vertex count. Existing coordinates are unaffected.
    pub fn push_vertex(&mut self) {
        self.vertices
            .push(VertexSketch::new(self.num_phases, self.seed));
    }

    /// Inserts the undirected edge `{u, v}`. Self-loops are ignored (no slot
    /// in the incidence vector). Parallel edges accumulate multiplicity.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        self.apply_edge(u, v, 1);
    }

    /// Deletes one copy of the undirected edge `{u, v}` — a `−1` turnstile
    /// update on the same coordinate. The caller is responsible for only
    /// deleting live edges; the sketch itself cannot detect over-deletion.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn remove_edge(&mut self, u: u32, v: u32) {
        self.apply_edge(u, v, -1);
    }

    fn apply_edge(&mut self, u: u32, v: u32, delta: i64) {
        let n = self.vertices.len();
        assert!(
            (u as usize) < n && (v as usize) < n,
            "endpoint out of range"
        );
        if u == v {
            return;
        }
        let idx = edge_coordinate(u, v);
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.vertices[a as usize].update(idx, delta);
        self.vertices[b as usize].update(idx, -delta);
    }

    /// Sketch-space Borůvka restricted to `members` (sorted ascending, no
    /// duplicates), which must be a union of whole connected components of
    /// the current edge multiset — then every edge incident to a member stays
    /// inside the set and the signed coordinates of any sub-part's sum are
    /// exactly its outgoing edges within the set.
    ///
    /// Returns the certified exact partition of `members` into connected
    /// parts, or `None` when the phase budget is exhausted before a phase
    /// certifies (every part's summed sampler reads zero on level 0, which
    /// holds all coordinates — a false zero needs a fingerprint collision).
    /// `None` means "sampling failure, escalate"; it never silently returns
    /// an uncertified partition.
    ///
    /// Deterministic: parts are discovered in first-seen member order and
    /// reported ordered by smallest member.
    ///
    /// # Panics
    ///
    /// Panics if `members` is unsorted, has duplicates, or contains an
    /// out-of-range vertex.
    pub fn subset_components(&self, members: &[u32]) -> Option<SubsetPartition> {
        let k = members.len();
        assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "members must be sorted ascending without duplicates"
        );
        if let Some(&last) = members.last() {
            assert!((last as usize) < self.vertices.len(), "member out of range");
        }
        if k <= 1 {
            return Some(SubsetPartition {
                parts: members.iter().map(|&m| vec![m]).collect(),
                phases_used: 0,
            });
        }

        // Local union-find over member positions; global ids map back via
        // binary search in the sorted member slice.
        let mut parent: Vec<u32> = (0..k as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                let g = parent[parent[x as usize] as usize];
                parent[x as usize] = g;
                x = g;
            }
            x
        }

        let mut slot_of_root = vec![usize::MAX; k];
        // One extra iteration past the last phase: the final phase's unions
        // may complete the partition, and the zero test is valid on any
        // phase's samplers (level 0 holds every coordinate regardless of the
        // phase's sub-sampling randomness).
        for round in 0..=self.num_phases {
            let phase = round.min(self.num_phases - 1);
            let mut acc: Vec<(u32, L0Sampler)> = Vec::new();
            for (pos, &m) in members.iter().enumerate() {
                let root = find(&mut parent, pos as u32);
                let sampler = self.vertices[m as usize].phase_sampler(phase);
                if slot_of_root[root as usize] == usize::MAX {
                    slot_of_root[root as usize] = acc.len();
                    acc.push((root, sampler.clone()));
                } else {
                    acc[slot_of_root[root as usize]].1.merge(sampler);
                }
            }
            for &(root, _) in &acc {
                slot_of_root[root as usize] = usize::MAX;
            }
            let all_zero = acc.iter().all(|(_, s)| s.is_zero());
            if all_zero {
                // Certified: every current part has no edge leaving it within
                // the member set, so the parts are exact connected components.
                let mut parts: Vec<Vec<u32>> = Vec::new();
                let mut part_of_root = vec![usize::MAX; k];
                for (pos, &m) in members.iter().enumerate() {
                    let root = find(&mut parent, pos as u32) as usize;
                    if part_of_root[root] == usize::MAX {
                        part_of_root[root] = parts.len();
                        parts.push(Vec::new());
                    }
                    parts[part_of_root[root]].push(m);
                }
                // First-seen order over ascending members already orders parts
                // by smallest member and each part ascending.
                return Some(SubsetPartition {
                    parts,
                    phases_used: round,
                });
            }
            if round == self.num_phases {
                return None;
            }
            for (_, sampler) in acc {
                if sampler.is_zero() {
                    continue;
                }
                if let Some((idx, _weight)) = sampler.sample() {
                    let (u, v) = decode_edge_coordinate(idx);
                    // A fingerprint collision can surface a garbage
                    // coordinate; only union endpoints that are both members.
                    if let (Ok(pu), Ok(pv)) = (members.binary_search(&u), members.binary_search(&v))
                    {
                        let (ru, rv) = (find(&mut parent, pu as u32), find(&mut parent, pv as u32));
                        if ru != rv {
                            // Union by smaller root id keeps the structure a
                            // pure function of the union sequence.
                            let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
                            parent[hi as usize] = lo;
                        }
                    }
                }
            }
        }
        unreachable!("loop returns on certification or exhaustion");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_with(n: usize, edges: &[(u32, u32)]) -> DynamicConnectivitySketch {
        let mut sk = DynamicConnectivitySketch::new(24, 42);
        for _ in 0..n {
            sk.push_vertex();
        }
        for &(u, v) in edges {
            sk.add_edge(u, v);
        }
        sk
    }

    fn all_members(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn empty_member_set_certifies_trivially() {
        let sk = sketch_with(4, &[]);
        let p = sk.subset_components(&[]).unwrap();
        assert!(p.parts.is_empty());
        let p = sk.subset_components(&[2]).unwrap();
        assert_eq!(p.parts, vec![vec![2]]);
    }

    #[test]
    fn connected_subset_certifies_as_one_part() {
        let sk = sketch_with(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p = sk.subset_components(&all_members(6)).unwrap();
        assert_eq!(p.parts, vec![all_members(6)]);
    }

    #[test]
    fn deletion_splits_a_cycle() {
        let n = 20u32;
        let mut sk = sketch_with(
            n as usize,
            &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>(),
        );
        sk.remove_edge(0, 1);
        // Still a path: one part.
        let p = sk.subset_components(&all_members(n as usize)).unwrap();
        assert_eq!(p.parts.len(), 1);
        sk.remove_edge(10, 11);
        let p = sk.subset_components(&all_members(n as usize)).unwrap();
        assert_eq!(p.parts.len(), 2);
        // Ordered by smallest member: the part containing vertex 0 first.
        let mut first: Vec<u32> = (11..n).collect();
        first.insert(0, 0);
        assert_eq!(p.parts[0], first);
        assert_eq!(p.parts[1], (1..=10).collect::<Vec<u32>>());
    }

    #[test]
    fn full_teardown_yields_singletons() {
        let edges = [(0, 1), (1, 2), (0, 2)];
        let mut sk = sketch_with(3, &edges);
        for &(u, v) in &edges {
            sk.remove_edge(u, v);
        }
        let p = sk.subset_components(&[0, 1, 2]).unwrap();
        assert_eq!(p.parts, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn delete_reinsert_cancels_exactly() {
        let base = sketch_with(5, &[(0, 1), (2, 3)]);
        let mut churned = base.clone();
        churned.add_edge(1, 2);
        churned.add_edge(3, 4);
        churned.remove_edge(3, 4);
        churned.remove_edge(1, 2);
        assert_eq!(base, churned);
    }

    #[test]
    fn parallel_edges_need_matching_deletes() {
        let mut sk = sketch_with(2, &[(0, 1), (0, 1)]);
        sk.remove_edge(0, 1);
        // One copy survives: still connected.
        let p = sk.subset_components(&[0, 1]).unwrap();
        assert_eq!(p.parts.len(), 1);
        sk.remove_edge(0, 1);
        let p = sk.subset_components(&[0, 1]).unwrap();
        assert_eq!(p.parts.len(), 2);
    }

    #[test]
    fn pushed_vertices_join_later() {
        let mut sk = sketch_with(2, &[(0, 1)]);
        sk.push_vertex();
        sk.add_edge(1, 2);
        let p = sk.subset_components(&[0, 1, 2]).unwrap();
        assert_eq!(p.parts, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn subset_restricted_to_whole_components_is_exact() {
        // Two triangles; querying one triangle's members must not see the other.
        let sk = sketch_with(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let p = sk.subset_components(&[0, 1, 2]).unwrap();
        assert_eq!(p.parts, vec![vec![0, 1, 2]]);
        let p = sk.subset_components(&[3, 4, 5]).unwrap();
        assert_eq!(p.parts, vec![vec![3, 4, 5]]);
        // The union of both components is also a valid member set.
        let p = sk.subset_components(&all_members(6)).unwrap();
        assert_eq!(p.parts, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn subset_components_is_deterministic() {
        let sk = sketch_with(12, &[(0, 1), (2, 3), (4, 5), (6, 7), (8, 9), (10, 11)]);
        let a = sk.subset_components(&all_members(12)).unwrap();
        let b = sk.subset_components(&all_members(12)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn words_per_vertex_is_constant_and_positive() {
        let mut sk = DynamicConnectivitySketch::new(8, 7);
        let w = sk.words_per_vertex();
        assert!(w > 0);
        sk.push_vertex();
        sk.push_vertex();
        sk.add_edge(0, 1);
        assert_eq!(sk.words_per_vertex(), w);
    }

    #[test]
    #[should_panic(expected = "sorted ascending")]
    fn unsorted_members_panic() {
        let sk = sketch_with(3, &[]);
        let _ = sk.subset_components(&[2, 0]);
    }
}
