//! The Ahn–Guha–McGregor connectivity sketch (Proposition 8.1).
//!
//! Every vertex `v` owns the *signed edge-incidence vector* `a_v`, indexed by
//! ordered vertex pairs: for an edge `{u, v}` with `u < v`, coordinate
//! `(u, v)` of `a_u` is `+1` and of `a_v` is `−1`; all other coordinates are
//! zero. The crucial linearity property: for any vertex set `S`, the non-zero
//! coordinates of `Σ_{v∈S} a_v` are exactly the edges with one endpoint in
//! `S` — internal edges cancel.
//!
//! Each vertex keeps `t = O(log n)` independent [`L0Sampler`]s of `a_v`.
//! Borůvka then runs entirely in sketch space: in phase `i`, every current
//! component sums its members' `i`-th samplers, samples one outgoing edge
//! (if any), and the sampled edges merge components. Using a *fresh* sampler
//! per phase keeps the samples independent of the merging decisions — the
//! same "fresh randomness per phase" idea the paper reuses for its
//! leader-election algorithm in Section 6. After `O(log n)` phases no
//! component has an outgoing edge and the components are exactly the
//! connected components of the graph.

use crate::l0::L0Sampler;

use serde::{Deserialize, Serialize};
use wcc_graph::{ComponentLabels, UnionFind};

/// The per-vertex message of Proposition 8.1: `num_phases` independent
/// ℓ0-samplers of the vertex's signed edge-incidence vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexSketch {
    samplers: Vec<L0Sampler>,
}

impl VertexSketch {
    pub(crate) fn new(num_phases: usize, base_seed: u64) -> Self {
        VertexSketch {
            samplers: (0..num_phases)
                .map(|p| L0Sampler::new(base_seed.wrapping_add(0x9E37_79B9 * (p as u64 + 1))))
                .collect(),
        }
    }

    pub(crate) fn update(&mut self, index: u64, delta: i64) {
        for s in &mut self.samplers {
            s.update(index, delta);
        }
    }

    /// The phase-`phase` ℓ0-sampler of this vertex (one independent sampler
    /// per Borůvka phase).
    pub(crate) fn phase_sampler(&self, phase: usize) -> &L0Sampler {
        &self.samplers[phase]
    }

    /// Adds another vertex's message to this one (sketches are linear, so the
    /// sum is the sketch of the combined incidence vector). Used when several
    /// original vertices are contracted into one super-vertex before their
    /// messages are sent to the coordinator.
    pub fn merge(&mut self, other: &VertexSketch) {
        for (a, b) in self.samplers.iter_mut().zip(other.samplers.iter()) {
            a.merge(b);
        }
    }

    /// Size of this message in machine words (the quantity Proposition 8.1
    /// bounds by `O(log³ n)` bits).
    pub fn size_in_words(&self) -> usize {
        self.samplers.iter().map(|s| s.size_in_words()).sum()
    }
}

/// The full AGM connectivity sketch of a graph on `n` vertices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectivitySketch {
    n: usize,
    num_phases: usize,
    vertices: Vec<VertexSketch>,
}

impl ConnectivitySketch {
    /// Creates a sketch for a graph on `n` vertices using a default number of
    /// Borůvka phases (`2·⌈log₂ n⌉ + 2`) and a fixed seed.
    pub fn new(n: usize, seed: u64) -> Self {
        let phases = 2 * (usize::BITS - n.max(2).leading_zeros()) as usize + 2;
        Self::with_phases(n, phases, seed)
    }

    /// Creates a sketch with an explicit number of Borůvka phases. More
    /// phases increase both the success probability and the message size.
    ///
    /// All vertices share the same per-phase hash seeds — this is the
    /// "players have access to `polylog(n)` shared random bits" requirement
    /// of Proposition 8.1, and it is what makes sketches of different
    /// vertices addable.
    pub fn with_phases(n: usize, num_phases: usize, seed: u64) -> Self {
        ConnectivitySketch {
            n,
            num_phases,
            vertices: (0..n)
                .map(|_| VertexSketch::new(num_phases, seed))
                .collect(),
        }
    }

    /// Reassembles a sketch from per-vertex messages built independently
    /// with [`ConnectivitySketch::vertex_sketch_for`] — the fan-in half of a
    /// per-vertex parallel construction. Equivalent to feeding every edge
    /// through [`ConnectivitySketch::add_edge`] (sketch updates are linear,
    /// so per-vertex construction order cannot matter).
    ///
    /// # Panics
    ///
    /// Panics if `vertices.len() != n`.
    pub fn from_vertex_sketches(n: usize, num_phases: usize, vertices: Vec<VertexSketch>) -> Self {
        assert_eq!(vertices.len(), n, "one message per vertex required");
        ConnectivitySketch {
            n,
            num_phases,
            vertices,
        }
    }

    /// Builds the message of a single vertex of an `n`-vertex graph from its
    /// neighbour list (as stored by
    /// [`Graph::neighbors`](wcc_graph::Graph::neighbors); self-loops are
    /// ignored, parallel edges counted with multiplicity). A pure function
    /// of `(v, neighbors)`, so callers can fan the per-vertex work out on
    /// any execution backend and reassemble with
    /// [`ConnectivitySketch::from_vertex_sketches`].
    pub fn vertex_sketch_for(
        n: usize,
        num_phases: usize,
        seed: u64,
        v: usize,
        neighbors: &[u32],
    ) -> VertexSketch {
        assert!(v < n, "vertex out of range");
        let mut sketch = VertexSketch::new(num_phases, seed);
        for &w in neighbors {
            let w = w as usize;
            if w == v {
                continue;
            }
            let (a, b) = if v < w { (v, w) } else { (w, v) };
            let idx = a as u64 * n as u64 + b as u64;
            sketch.update(idx, if v == a { 1 } else { -1 });
        }
        sketch
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Encodes the ordered pair `(u, v)`, `u < v`, as an ℓ0 coordinate.
    fn edge_index(&self, u: usize, v: usize) -> u64 {
        debug_assert!(u < v);
        u as u64 * self.n as u64 + v as u64
    }

    fn decode_edge(&self, index: u64) -> (usize, usize) {
        (
            (index / self.n as u64) as usize,
            (index % self.n as u64) as usize,
        )
    }

    /// Inserts the undirected edge `{u, v}`. Self-loops are ignored (they are
    /// irrelevant for connectivity and have no slot in the incidence vector).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        if u == v {
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let idx = self.edge_index(a, b);
        self.vertices[a].update(idx, 1);
        self.vertices[b].update(idx, -1);
    }

    /// Deletes the undirected edge `{u, v}` (the sketch is linear, so
    /// deletions are just negative updates).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn remove_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        if u == v {
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let idx = self.edge_index(a, b);
        self.vertices[a].update(idx, -1);
        self.vertices[b].update(idx, 1);
    }

    /// The per-vertex message for vertex `v` (what each "player" sends to the
    /// coordinator in Proposition 8.1).
    pub fn vertex_sketch(&self, v: usize) -> &VertexSketch {
        &self.vertices[v]
    }

    /// Total size of all messages, in words.
    pub fn total_size_in_words(&self) -> usize {
        self.vertices.iter().map(|v| v.size_in_words()).sum()
    }

    /// The coordinator's computation: recovers the connected components from
    /// the vertex sketches alone by sketch-space Borůvka.
    ///
    /// With the default number of phases the output equals the true
    /// components with high probability; it is always a *refinement* of the
    /// true components (the sketch can fail to merge, but a sampled edge is
    /// always a real edge thanks to the fingerprint test).
    pub fn components(&self) -> ComponentLabels {
        let mut uf = UnionFind::new(self.n);
        // Scratch map from component representative to its accumulator slot,
        // reused across phases (roots are vertex ids, so a flat vector
        // replaces the hash map and keeps the iteration order deterministic:
        // components are visited in first-seen vertex order).
        let mut slot_of_root = vec![usize::MAX; self.n];
        for phase in 0..self.num_phases {
            // Sum the phase-th sampler of each component.
            let mut acc: Vec<(usize, L0Sampler)> = Vec::new();
            for v in 0..self.n {
                let root = uf.find(v);
                let sampler = &self.vertices[v].samplers[phase];
                if slot_of_root[root] == usize::MAX {
                    slot_of_root[root] = acc.len();
                    acc.push((root, sampler.clone()));
                } else {
                    acc[slot_of_root[root]].1.merge(sampler);
                }
            }
            for &(root, _) in &acc {
                slot_of_root[root] = usize::MAX;
            }
            // A phase may merge nothing just because every component's sample
            // failed (each fails with constant probability) — that is not
            // convergence, and later phases have fresh randomness. Exit early
            // only when no component has an outgoing edge: `is_zero` tests
            // level 0 (which holds every coordinate), so a false "zero"
            // requires a fingerprint collision, probability O(n²/p) per check.
            let mut all_zero = true;
            for (_root, sampler) in acc {
                if sampler.is_zero() {
                    continue;
                }
                all_zero = false;
                if let Some((idx, _weight)) = sampler.sample() {
                    let (u, v) = self.decode_edge(idx);
                    if u < self.n && v < self.n {
                        uf.union(u, v);
                    }
                }
            }
            if all_zero {
                break;
            }
        }
        uf.into_labels()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wcc_graph::prelude::*;

    fn sketch_components(g: &Graph, seed: u64) -> ComponentLabels {
        let mut sk = ConnectivitySketch::new(g.num_vertices(), seed);
        for (u, v) in g.edge_iter() {
            sk.add_edge(u, v);
        }
        sk.components()
    }

    #[test]
    fn per_vertex_construction_matches_add_edge() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let g = generators::random_out_degree_graph(80, 6, &mut rng);
        let n = g.num_vertices();
        let (phases, seed) = (20, 99);
        let mut incremental = ConnectivitySketch::with_phases(n, phases, seed);
        for (u, v) in g.edge_iter() {
            incremental.add_edge(u, v);
        }
        let messages: Vec<VertexSketch> = (0..n)
            .map(|v| ConnectivitySketch::vertex_sketch_for(n, phases, seed, v, g.neighbors(v)))
            .collect();
        let assembled = ConnectivitySketch::from_vertex_sketches(n, phases, messages);
        assert_eq!(incremental, assembled);
    }

    #[test]
    fn empty_graph_has_all_singletons() {
        let g = Graph::empty(10);
        let labels = sketch_components(&g, 1);
        assert_eq!(labels.num_components(), 10);
    }

    #[test]
    fn cycle_is_one_component() {
        let g = generators::cycle(50);
        assert_eq!(sketch_components(&g, 2).num_components(), 1);
    }

    #[test]
    fn two_cliques_stay_separate() {
        let (g, _) =
            generators::disjoint_union_of(&[generators::complete(8), generators::complete(9)]);
        let truth = connected_components(&g);
        let got = sketch_components(&g, 3);
        assert!(got.same_partition(&truth));
    }

    #[test]
    fn random_graphs_match_ground_truth() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for seed in 0..5u64 {
            let g = generators::erdos_renyi(120, 0.02, &mut rng);
            let truth = connected_components(&g);
            let got = sketch_components(&g, seed);
            assert!(
                got.same_partition(&truth),
                "seed {seed}: sketch {} vs truth {} components",
                got.num_components(),
                truth.num_components()
            );
        }
    }

    #[test]
    fn output_is_always_a_refinement_even_with_too_few_phases() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::random_out_degree_graph(200, 8, &mut rng);
        let truth = connected_components(&g);
        let mut sk = ConnectivitySketch::with_phases(g.num_vertices(), 1, 7);
        for (u, v) in g.edge_iter() {
            sk.add_edge(u, v);
        }
        let got = sk.components();
        assert!(got.is_refinement_of(&truth));
    }

    #[test]
    fn deletion_stream_is_supported() {
        // Build a cycle, then delete one edge: still connected. Delete another: splits.
        let n = 30;
        let mut sk = ConnectivitySketch::new(n, 9);
        for i in 0..n {
            sk.add_edge(i, (i + 1) % n);
        }
        sk.remove_edge(0, 1);
        assert_eq!(sk.components().num_components(), 1);
        sk.remove_edge(15, 16);
        assert_eq!(sk.components().num_components(), 2);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut sk = ConnectivitySketch::new(5, 4);
        sk.add_edge(2, 2);
        assert_eq!(sk.components().num_components(), 5);
    }

    #[test]
    fn message_size_is_polylogarithmic() {
        let sk = ConnectivitySketch::new(1 << 12, 0);
        let per_vertex = sk.vertex_sketch(0).size_in_words();
        // O(log^2)-ish words per vertex; definitely far below n.
        assert!(per_vertex < 10_000, "per-vertex message {per_vertex} words");
        assert_eq!(sk.total_size_in_words(), per_vertex * (1 << 12));
    }

    #[test]
    fn planted_expanders_recovered() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let g = generators::planted_expander_components(&[40, 60, 80], 8, &mut rng);
        let truth = connected_components(&g);
        let got = sketch_components(&g, 13);
        assert!(got.same_partition(&truth));
    }
}
