//! # wcc-core — Well-Connected Components in the MPC model
//!
//! A from-scratch Rust implementation of
//! *"Massively Parallel Algorithms for Finding Well-Connected Components in
//! Sparse Graphs"* (Assadi, Sun, Weinstein — PODC 2019, arXiv:1805.02974).
//!
//! The paper's headline result (Theorem 1 / Theorem 4): all connected
//! components of a sparse graph whose components have spectral gap at least
//! `λ` can be identified in `O(log log n + log(1/λ))` MPC rounds using
//! `n^{Ω(1)}` memory per machine and `Õ(n/λ²)` total memory — an exponential
//! improvement over the classical `O(log n)`-round algorithms when the
//! components are well connected (expanders, random graphs, …).
//!
//! ## Crate layout (paper section → module)
//!
//! | Paper | Module | What it provides |
//! |---|---|---|
//! | §4, Lemma 4.1 | [`regularize`] | replacement-product regularization |
//! | App. C | [`products`] | replacement & zig-zag products on non-regular graphs |
//! | §5, Thm 3, Lemma 5.1 | [`walks`] | layered-graph independent random walks, randomization |
//! | §6 | [`leader`] | quadratic-growth leader election, contraction, BFS endgame |
//! | §7, Thm 4, Cor 7.1 | [`pipeline`] | the full algorithm and the unknown-gap adaptive loop |
//! | §8, Thm 2 | [`sublinear`] | mildly-sublinear-space connectivity via AGM sketches |
//! | §9, Thm 5 | [`lower_bound`] | the expander-connectivity query-game adversary |
//! | App. A/B | [`concentration`] | Chernoff / bounded-difference helpers, balls & bins |
//! | Eq. (3) | [`params`] | all constants, paper values and laptop-scale presets |
//!
//! ## Quickstart
//!
//! ```
//! use wcc_core::prelude::*;
//! use wcc_graph::prelude::*;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), wcc_core::CoreError> {
//! // A graph whose two components are constant-degree expanders.
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let g = generators::planted_expander_components(&[300, 200], 8, &mut rng);
//!
//! // The components have constant spectral gap, so promise λ = 0.3.
//! let result = well_connected_components(&g, 0.3, &Params::laptop_scale(), 42)?;
//! assert_eq!(result.components.num_components(), 2);
//! println!("{} MPC rounds", result.stats.total_rounds());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concentration;
pub mod leader;
pub mod lower_bound;
pub mod params;
pub mod pipeline;
pub mod products;
pub mod regularize;
pub mod serve;
pub mod stream;
pub mod sublinear;
pub mod walks;

pub use crate::params::Params;
pub use crate::pipeline::{
    adaptive_components, well_connected_components, AdaptiveResult, PipelineReport, WccResult,
};
pub use crate::regularize::{CoreError, RegularizedGraph};
pub use crate::serve::{ComponentSnapshot, Server, SnapshotCell, SnapshotReader};
pub use crate::stream::{
    BatchPath, BatchReport, IncrementalComponents, RecomputeReason, StreamParams,
};
pub use crate::sublinear::{sublinear_components, SublinearParams, SublinearResult};
pub use crate::walks::WalkKernel;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::params::Params;
    pub use crate::pipeline::{
        adaptive_components, well_connected_components, AdaptiveResult, PipelineReport, WccResult,
    };
    pub use crate::regularize::{regularize, CoreError, RegularizedGraph};
    pub use crate::serve::{ComponentSnapshot, Server, SnapshotCell, SnapshotReader};
    pub use crate::stream::{
        BatchPath, BatchReport, IncrementalComponents, RecomputeReason, StreamParams,
    };
    pub use crate::sublinear::{sublinear_components, SublinearParams, SublinearResult};
    pub use crate::walks::WalkKernel;
}
