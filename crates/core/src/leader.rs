//! Step 3 — Connectivity on random graphs (Section 6).
//!
//! The centrepiece of the paper: a leader-election algorithm whose components
//! grow *quadratically* per phase instead of by a constant factor. Phase `i`
//! works on the contraction graph `H_i` of the `i`-th fresh random batch
//! `G̃_i` with respect to the current component-partition `C_i`:
//!
//! 1. every super-vertex (part) becomes a **leader** independently with
//!    probability `≈ 1/Δ_i`;
//! 2. every non-leader that has a leader neighbour in `H_i` attaches to a
//!    uniformly random one (`M(v)`), forming stars of expected size `Δ_i`
//!    (Equipartition Lemma 6.4);
//! 3. the stars are contracted, squaring the part size
//!    (`Δ_{i+1} = Δ_i²`, Lemma 6.7) while the *fresh* batch used in the next
//!    phase keeps the contracted graph distributed like a random graph.
//!
//! After `F = O(log log n)` phases the parts have size `n^{Ω(1)}`, the
//! contraction of the full graph has `O(1)` diameter (Claim 6.13), and a
//! level-by-level BFS finishes the job (Claim 6.14). Every phase costs `O(1)`
//! MPC rounds (a constant number of shuffles / sort batches).

use crate::params::Params;
use crate::regularize::CoreError;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use wcc_graph::{components, ComponentLabels, Graph, GraphBuilder, Partition};
use wcc_mpc::{derive_stream_seed, pack_edge, Executor, MpcContext, TupleWidth};

/// The grouping decided by one leader-election round on a contraction graph.
#[derive(Debug, Clone)]
pub struct LeaderElectionOutcome {
    /// For every vertex of the contraction graph, the index (in
    /// `0..num_groups`) of the star it joined. Leaders and orphans form their
    /// own groups.
    pub group_of: Vec<usize>,
    /// Number of groups (= leaders + orphans).
    pub num_groups: usize,
    /// Number of vertices elected leader.
    pub num_leaders: usize,
    /// Number of non-leaders with no leader neighbour (`M(v) = ⊥`); the paper
    /// shows this is empty w.h.p. in the parameter regime of Lemma 6.4.
    pub orphans: usize,
}

/// One leader-election round (`LeaderElection(H, d)` in the paper, with the
/// corrected leader probability `1/d`): vertices of `h` become leaders with
/// probability `leader_prob`; every non-leader joins a uniformly random
/// leader neighbour.
///
/// Charges two MPC rounds (one to announce leaders to neighbours, one for the
/// join messages). Both per-vertex passes — the leader coins and the
/// reservoir-sampled attachments — run on the context's execution backend,
/// each vertex on its own ChaCha8 stream derived from one draw of the master
/// generator, so the outcome is bit-identical for every backend and thread
/// count.
pub fn leader_election<R: Rng + ?Sized>(
    h: &Graph,
    leader_prob: f64,
    ctx: &mut MpcContext,
    rng: &mut R,
) -> LeaderElectionOutcome {
    let k = h.num_vertices();
    let p = leader_prob.clamp(0.0, 1.0);
    let executor = ctx.executor();
    let coin_base = rng.gen::<u64>();
    let is_leader: Vec<bool> = executor.map_indexed(k, |v| {
        ChaCha8Rng::seed_from_u64(derive_stream_seed(coin_base, v as u64)).gen_bool(p)
    });
    ctx.charge_shuffle(2 * h.num_edges());
    let _ = ctx.record_balanced_load(2 * h.num_edges());

    // M(v): a uniformly random leader neighbour (reservoir sampling over the
    // adjacency list so parallel edges weight leaders proportionally, exactly
    // like the paper's uniform choice over N_L(v)).
    ctx.charge_shuffle(2 * h.num_edges());
    let attach_base = rng.gen::<u64>();
    let choices: Vec<usize> = executor.map_indexed(k, |v| {
        if is_leader[v] {
            return v;
        }
        let mut vrng = ChaCha8Rng::seed_from_u64(derive_stream_seed(attach_base, v as u64));
        let mut chosen: Option<usize> = None;
        let mut seen = 0usize;
        for &w in h.neighbors(v) {
            let w = w as usize;
            if w != v && is_leader[w] {
                seen += 1;
                if vrng.gen_range(0..seen) == 0 {
                    chosen = Some(w);
                }
            }
        }
        // M(v) = ⊥ (no leader neighbour): stay a singleton group this phase.
        chosen.unwrap_or(v)
    });
    let num_leaders = is_leader.iter().filter(|&&b| b).count();
    let orphans = choices
        .iter()
        .enumerate()
        .filter(|&(v, &c)| c == v && !is_leader[v])
        .count();
    let canonical = ComponentLabels::from_raw_labels(&choices);
    LeaderElectionOutcome {
        num_groups: canonical.num_components(),
        group_of: canonical.labels().to_vec(),
        num_leaders,
        orphans,
    }
}

/// Builds the contraction graph (Definition 2) of `g` with respect to
/// `partition`: one vertex per part, one edge per pair of parts joined by at
/// least one edge of `g` (no self-loops, no parallel edges).
///
/// Charges one sort over the edge list (contract + dedup). See
/// [`contraction_graph_of_refs`] for the data-plane layout.
pub fn contraction_graph(g: &Graph, partition: &Partition, ctx: &mut MpcContext) -> Graph {
    contraction_graph_of_refs(&[g], partition, ctx)
}

/// [`contraction_graph`] over the disjoint edge-set union of `graphs`
/// (all on `partition`'s vertex set) **without materialising the union**:
/// the contraction only needs to see every edge once, so building the
/// union's CSR (the single largest allocation of the old endgame) is pure
/// waste.
///
/// The tuple width negotiated via [`TupleWidth::negotiate`] over the part
/// count decides the path: compact — always, unless the vertex set exceeds
/// `u32` range, which the `(u32, u32)`-backed [`Graph`] only allows via
/// isolated vertices — packs each relabelled edge `(a, b)`, `a ≤ b`, into
/// the key [`pack_edge`]`(a, b)` and hands the unsorted key multiset to
/// [`Graph::from_packed_edge_multiset`], whose bucket-by-endpoint build
/// (histogram + scatter + per-row sort/dedup) reproduces the wide path's
/// global `sort_unstable` + `dedup` bit for bit while replacing the full
/// multi-pass sort with one scatter and cache-resident row sorts. The wide
/// `(usize, usize)` path ([`contract_edges_wide`]) is the executable spec
/// and the fallback for part counts beyond the compact identifier space —
/// negotiation, never truncation.
///
/// Charges one sort over the *total* edge count, exactly what one call on
/// the materialised union charged, with the byte column at the negotiated
/// width (the bucket build performs the same grouping work the charged
/// sort models). The per-edge relabelling fans out over contiguous edge
/// chunks on the context's backend; the grouping that follows erases the
/// (already deterministic) chunk order.
pub fn contraction_graph_of_refs(
    graphs: &[&Graph],
    partition: &Partition,
    ctx: &mut MpcContext,
) -> Graph {
    let total_edges: usize = graphs.iter().map(|g| g.num_edges()).sum();
    let width = TupleWidth::negotiate(partition.num_parts());
    ctx.charge_sort_with_bytes(total_edges.max(1), width.edge_bytes());
    if width.is_compact() {
        let packed = contract_edges_compact(graphs, partition, &ctx.executor());
        Graph::from_packed_edge_multiset(partition.num_parts(), &packed)
    } else {
        let edges = contract_edges_wide(graphs, partition, &ctx.executor());
        Graph::from_edges_unchecked(partition.num_parts(), edges)
    }
}

/// The compact contraction data plane's relabel pass: each surviving edge
/// becomes one `u64`-packed key, `(a << 32) | b` with `a ≤ b`, self-loops
/// dropped. The key **multiset** is returned in deterministic chunk order
/// but otherwise unsorted — sorting and deduplication happen inside
/// [`Graph::from_packed_edge_multiset`], bucketed per endpoint instead of
/// globally. No wide tuples are ever materialised. Caller must have
/// negotiated [`TupleWidth::Compact`] for `partition.num_parts()`.
fn contract_edges_compact(
    graphs: &[&Graph],
    partition: &Partition,
    executor: &Executor,
) -> Vec<u64> {
    let total_edges: usize = graphs.iter().map(|g| g.num_edges()).sum();
    // Compact-width labels in a flat u32 table: the relabel pass makes two
    // random lookups per edge, and halving the table's bytes (vs the
    // usize-backed `part_of`) keeps it cache-resident at the vertex counts
    // where this path is hot. Negotiated width guarantees the cast is
    // lossless.
    let labels: Vec<u32> = partition
        .part_of_slice()
        .iter()
        .map(|&p| p as u32)
        .collect();
    let mut packed: Vec<u64> = Vec::new();
    for (gi, g) in graphs.iter().enumerate() {
        let raw = g.edges();
        let chunk: Vec<u64> = executor.flat_map_ranges(raw.len(), |range| {
            raw[range]
                .iter()
                .filter_map(|&(u, v)| {
                    let a = labels[u as usize];
                    let b = labels[v as usize];
                    match a.cmp(&b) {
                        std::cmp::Ordering::Less => Some(pack_edge(a as usize, b as usize)),
                        std::cmp::Ordering::Greater => Some(pack_edge(b as usize, a as usize)),
                        std::cmp::Ordering::Equal => None,
                    }
                })
                .collect()
        });
        if gi == 0 {
            packed = chunk;
            packed.reserve(total_edges.saturating_sub(packed.len()));
        } else {
            packed.extend_from_slice(&chunk);
        }
    }
    packed
}

/// The wide contraction data plane, kept as the executable specification of
/// [`contract_edges_compact`] (differentially tested below) and the
/// fallback when the part count exceeds the compact identifier space.
fn contract_edges_wide(
    graphs: &[&Graph],
    partition: &Partition,
    executor: &Executor,
) -> Vec<(usize, usize)> {
    let total_edges: usize = graphs.iter().map(|g| g.num_edges()).sum();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (gi, g) in graphs.iter().enumerate() {
        let raw = g.edges();
        let chunk: Vec<(usize, usize)> = executor.flat_map_ranges(raw.len(), |range| {
            raw[range]
                .iter()
                .map(|&(u, v)| {
                    let (a, b) = (partition.part_of(u as usize), partition.part_of(v as usize));
                    if a <= b {
                        (a, b)
                    } else {
                        (b, a)
                    }
                })
                .filter(|&(a, b)| a != b)
                .collect()
        });
        if gi == 0 {
            edges = chunk;
            edges.reserve(total_edges.saturating_sub(edges.len()));
        } else {
            edges.extend_from_slice(&chunk);
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Per-phase statistics recorded by [`grow_components`] — the measurements
/// behind experiment E3 (quadratic growth) and the discrepancy drift the
/// proof of Lemma 6.7 tracks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GrowPhaseStats {
    /// Phase index (1-based, as in the paper).
    pub phase: usize,
    /// The schedule degree `Δ_i` the phase targeted.
    pub target_degree: u64,
    /// Number of parts before the phase.
    pub parts_before: usize,
    /// Number of parts after the phase.
    pub parts_after: usize,
    /// Largest part size after the phase.
    pub max_part_size: usize,
    /// Median part size after the phase.
    pub median_part_size: usize,
    /// Mean degree of the contraction graph the phase worked on.
    pub mean_contraction_degree: f64,
    /// Leaders elected in the phase.
    pub leaders: usize,
    /// Non-leaders that found no leader neighbour.
    pub orphans: usize,
}

/// The outcome of the growth stage.
#[derive(Debug, Clone)]
pub struct GrowOutcome {
    /// The component-partition after the last phase (a refinement of the true
    /// components; usually much coarser than singletons).
    pub partition: Partition,
    /// Per-phase statistics.
    pub phases: Vec<GrowPhaseStats>,
}

/// `GrowComponents(G̃, Δ)` (Section 6.1): one leader-election phase per fresh
/// batch, with the degree schedule `Δ_i = Δ^{2^{i-1}}`.
///
/// `batches` are the edge batches `G̃_1, …, G̃_F` (all on the same vertex
/// set). The returned partition never merges vertices from different true
/// components of the union of the batches, because every merge follows an
/// actual edge.
///
/// # Errors
///
/// Returns [`CoreError::BadParams`] if the batches disagree on the vertex
/// count or there are none.
pub fn grow_components<R: Rng + ?Sized>(
    batches: &[Graph],
    params: &Params,
    ctx: &mut MpcContext,
    rng: &mut R,
) -> Result<GrowOutcome, CoreError> {
    let n = match batches.first() {
        Some(b) => b.num_vertices(),
        None => {
            return Err(CoreError::BadParams(
                "grow_components needs at least one batch".to_string(),
            ))
        }
    };
    if batches.iter().any(|b| b.num_vertices() != n) {
        return Err(CoreError::BadParams(
            "all batches must share one vertex set".to_string(),
        ));
    }
    ctx.begin_phase("grow-components");
    let schedule = params.degree_schedule(n);
    let s = params.s_factor(n) as f64;
    let mut partition = Partition::singletons(n);
    let mut phases = Vec::new();

    for (i, batch) in batches.iter().enumerate() {
        let target_degree = *schedule.get(i).unwrap_or(schedule.last().unwrap_or(&2));
        let h = contraction_graph(batch, &partition, ctx);
        let mean_degree = if h.num_vertices() == 0 {
            0.0
        } else {
            h.degree_sum() as f64 / h.num_vertices() as f64
        };
        // Leader probability 1/Δ_i, but never so small that the expected
        // number of leaders drops below a handful (the endgame BFS picks up
        // any slack, exactly as the paper stops growing at Δ_F ≈ n^{1/100}).
        let leader_prob = (1.0 / target_degree as f64)
            .max(s / h.num_vertices().max(1) as f64)
            .min(1.0);
        let outcome = leader_election(&h, leader_prob, ctx, rng);
        partition = partition.coarsen(&outcome.group_of);

        let mut sizes = partition.part_sizes();
        sizes.sort_unstable();
        phases.push(GrowPhaseStats {
            phase: i + 1,
            target_degree,
            parts_before: h.num_vertices(),
            parts_after: partition.num_parts(),
            max_part_size: *sizes.last().unwrap_or(&0),
            median_part_size: sizes.get(sizes.len() / 2).copied().unwrap_or(0),
            mean_contraction_degree: mean_degree,
            leaders: outcome.num_leaders,
            orphans: outcome.orphans,
        });
    }
    ctx.end_phase();
    Ok(GrowOutcome { partition, phases })
}

/// The endgame (Claims 6.13 / 6.14): contract the *whole* graph `g` with
/// respect to `partition`, compute the connected components of the contracted
/// graph by level-by-level BFS — charging one MPC round per BFS level, i.e.
/// `O(diameter)` rounds, which is `O(1)` when the growth stage did its job —
/// and coarsen the partition accordingly.
///
/// The result is exactly the component-partition of `g` (BFS finishes any
/// merges the randomized phases left undone, so correctness never depends on
/// the probabilistic analysis).
pub fn finish_with_bfs(
    g: &Graph,
    partition: &Partition,
    ctx: &mut MpcContext,
) -> (Partition, usize) {
    finish_with_bfs_over_refs(&[g], partition, ctx)
}

/// [`finish_with_bfs`] on the disjoint union of `graphs` without ever
/// materialising the union: the endgame only reads the union through its
/// contraction, so [`contraction_graph_of_refs`] feeds the BFS directly.
/// Rounds and words charged are identical to building the union first
/// (one sort over the total edge count, then one round per BFS level).
pub fn finish_with_bfs_over_refs(
    graphs: &[&Graph],
    partition: &Partition,
    ctx: &mut MpcContext,
) -> (Partition, usize) {
    ctx.begin_phase("low-diameter-bfs");
    let h = contraction_graph_of_refs(graphs, partition, ctx);
    let k = h.num_vertices();
    let mut label = vec![usize::MAX; k];
    let mut num_components = 0usize;
    let mut max_levels = 0usize;
    for start in 0..k {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = num_components;
        let mut frontier = vec![start];
        let mut levels = 0usize;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                for &w in h.neighbors(v) {
                    let w = w as usize;
                    if label[w] == usize::MAX {
                        label[w] = num_components;
                        next.push(w);
                    }
                }
            }
            if !next.is_empty() {
                levels += 1;
            }
            frontier = next;
        }
        max_levels = max_levels.max(levels);
        num_components += 1;
    }
    // One MPC round per BFS level (all components proceed in parallel, so the
    // cost is the maximum level count, not the sum).
    ctx.charge(max_levels.max(1) as u64, 2 * h.num_edges() as u64);
    ctx.end_phase();
    (partition.coarsen(&label), max_levels)
}

/// Convenience: the exact connected components of a union of random batches,
/// i.e. `grow_components` followed by [`finish_with_bfs`] on the union —
/// Lemma 6.2 / Lemma 6.1 packaged together.
///
/// # Errors
///
/// Propagates [`CoreError`] from [`grow_components`].
pub fn components_of_random_union<R: Rng + ?Sized>(
    batches: &[Graph],
    params: &Params,
    ctx: &mut MpcContext,
    rng: &mut R,
) -> Result<(ComponentLabels, GrowOutcome, usize), CoreError> {
    let grow = grow_components(batches, params, ctx, rng)?;
    let refs: Vec<&Graph> = batches.iter().collect();
    let (final_partition, bfs_levels) = finish_with_bfs_over_refs(&refs, &grow.partition, ctx);
    Ok((final_partition.to_component_labels(), grow, bfs_levels))
}

/// Disjoint-edge-set union of batches sharing a vertex set.
pub fn union_of(batches: &[Graph]) -> Graph {
    union_of_refs(&batches.iter().collect::<Vec<_>>())
}

/// Like [`union_of`] but over borrowed graphs, so callers can union batches
/// with another graph (the pipeline's exact endgame adds the regularized
/// graph itself) without cloning anything.
pub fn union_of_refs(batches: &[&Graph]) -> Graph {
    let n = batches.first().map_or(0, |g| g.num_vertices());
    let total_edges: usize = batches.iter().map(|g| g.num_edges()).sum();
    let mut builder = GraphBuilder::with_capacity(n, total_edges);
    for b in batches {
        for (u, v) in b.edge_iter() {
            builder.add_edge(u, v).expect("batch edges in range");
        }
    }
    builder.build()
}

/// Sanity helper used by tests and experiments: `true` iff `partition` never
/// merges two vertices that lie in different components of `g`.
pub fn respects_components(g: &Graph, partition: &Partition) -> bool {
    partition.respects(&components::connected_components(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wcc_graph::prelude::*;
    use wcc_mpc::{unpack_edge, MpcConfig};

    fn ctx() -> MpcContext {
        MpcContext::new(MpcConfig::for_input_size(1 << 16, 0.5).permissive())
    }

    fn batches_for(n: usize, degree: usize, count: usize, rng: &mut ChaCha8Rng) -> Vec<Graph> {
        (0..count)
            .map(|_| generators::random_out_degree_graph(n, degree, rng))
            .collect()
    }

    #[test]
    fn leader_election_partitions_all_vertices() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let h = generators::random_out_degree_graph(500, 40, &mut rng);
        let mut c = ctx();
        let out = leader_election(&h, 1.0 / 10.0, &mut c, &mut rng);
        assert_eq!(out.group_of.len(), 500);
        assert_eq!(
            out.num_groups,
            *out.group_of.iter().max().unwrap() + 1,
            "group ids must be contiguous"
        );
        assert!(out.num_leaders > 10);
        // With degree ~40 and leader probability 1/10 orphans are rare.
        assert!(out.orphans < 25, "too many orphans: {}", out.orphans);
        // Groups are stars around leaders: every group is a component of H.
        let part = Partition::from_raw_labels(&out.group_of);
        assert!(respects_components(&h, &part));
    }

    #[test]
    fn leader_election_with_probability_one_keeps_singletons() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let h = generators::cycle(20);
        let mut c = ctx();
        let out = leader_election(&h, 1.0, &mut c, &mut rng);
        assert_eq!(out.num_groups, 20);
        assert_eq!(out.num_leaders, 20);
    }

    #[test]
    fn leader_election_grows_stars_of_expected_size() {
        // Equipartition Lemma 6.4 (qualitatively): on a d·s-regular random
        // graph with leader probability 1/d, star sizes concentrate around d.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let d = 8usize;
        let s = 16usize;
        let h = generators::random_out_degree_graph(4000, d * s, &mut rng);
        let mut c = ctx();
        let out = leader_election(&h, 1.0 / d as f64, &mut c, &mut rng);
        let part = Partition::from_raw_labels(&out.group_of);
        let sizes = part.part_sizes();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(
            (mean - d as f64).abs() < 0.5 * d as f64,
            "mean star size {mean}, expected about {d}"
        );
        assert!(
            out.orphans == 0,
            "orphans on a dense random graph: {}",
            out.orphans
        );
    }

    #[test]
    fn contraction_graph_drops_loops_and_parallels() {
        let g =
            Graph::from_edges_unchecked(6, vec![(0, 1), (1, 2), (3, 4), (4, 5), (2, 3), (0, 2)]);
        let part = Partition::from_raw_labels(&[0, 0, 0, 1, 1, 1]);
        let mut c = ctx();
        let h = contraction_graph(&g, &part, &mut c);
        assert_eq!(h.num_vertices(), 2);
        assert_eq!(
            h.num_edges(),
            1,
            "parallel contracted edges must be deduplicated"
        );
        assert!(!h.has_self_loops());
    }

    #[test]
    fn compact_contraction_matches_wide_spec() {
        // The u64-packed path (relabel to an unsorted key multiset, then
        // the bucket-by-endpoint graph build) and the wide (usize, usize)
        // spec (global sort + dedup) must produce identical graphs on the
        // same inputs, across thread counts, graph shapes and seeds.
        for threads in [1usize, 2, 8] {
            let executor = Executor::threaded(threads);
            for seed in [3u64, 11, 29] {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let g1 = generators::planted_expander_components(&[90, 70], 6, &mut rng);
                let g2 = generators::random_out_degree_graph(160, 5, &mut rng);
                let labels: Vec<usize> = (0..160).map(|v| v % 37).collect();
                let part = Partition::from_raw_labels(&labels);
                let refs = [&g1, &g2];
                let packed = contract_edges_compact(&refs, &part, &executor);
                {
                    let mut sorted = packed.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    let unpacked: Vec<(usize, usize)> =
                        sorted.iter().map(|&k| unpack_edge(k)).collect();
                    let wide = contract_edges_wide(&refs, &part, &executor);
                    assert_eq!(
                        unpacked, wide,
                        "compact/wide divergence at threads={threads}, seed={seed}"
                    );
                }
                let compact_graph = Graph::from_packed_edge_multiset(part.num_parts(), &packed);
                let wide_graph = Graph::from_edges_unchecked(
                    part.num_parts(),
                    contract_edges_wide(&refs, &part, &executor),
                );
                assert_eq!(
                    compact_graph.edges(),
                    wide_graph.edges(),
                    "bucket-build/wide edge divergence at threads={threads}, seed={seed}"
                );
                for v in 0..part.num_parts() {
                    assert_eq!(
                        compact_graph.neighbors(v),
                        wide_graph.neighbors(v),
                        "adjacency row divergence at v={v}, threads={threads}, seed={seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn contraction_negotiates_compact_width_for_graph_scale_parts() {
        // Any partition a (u32, u32)-backed Graph can produce fits the
        // compact identifier space; the byte column of the charged sort
        // reflects the packed-u64 representation.
        let g = Graph::from_edges_unchecked(4, vec![(0, 1), (2, 3)]);
        let part = Partition::from_raw_labels(&[0, 0, 1, 1]);
        assert!(TupleWidth::negotiate(part.num_parts()).is_compact());
        let mut c = ctx();
        c.begin_phase("contract");
        let h = contraction_graph(&g, &part, &mut c);
        c.end_phase();
        assert_eq!(h.num_vertices(), 2);
        let stats = c.into_stats();
        let words = stats.total_communication_words();
        assert_eq!(
            stats.shuffled_bytes_in_phase("contract"),
            words * TupleWidth::Compact.edge_bytes() as u64,
            "compact contraction must charge 8 bytes per sorted item-word"
        );
    }

    #[test]
    fn grow_components_squares_part_sizes_per_phase() {
        // E3 in miniature: with batches of degree Δ·s and the schedule
        // Δ, Δ², …, the max part size should grow super-linearly per phase.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let params = Params::laptop_scale();
        let n = 6000;
        let degree = params.batch_degree(n);
        let f = params.num_phases(n);
        let batches = batches_for(n, degree, f, &mut rng);
        let mut c = ctx();
        let grow = grow_components(&batches, &params, &mut c, &mut rng).unwrap();
        assert_eq!(grow.phases.len(), f);
        // Sizes grow phase over phase, and by more than a constant factor.
        let sizes: Vec<usize> = grow.phases.iter().map(|p| p.median_part_size).collect();
        assert!(
            sizes.windows(2).all(|w| w[1] >= w[0]),
            "median part sizes must be monotone: {sizes:?}"
        );
        let growth_first = grow.phases[0].median_part_size.max(1);
        let growth_last = grow.phases.last().unwrap().median_part_size;
        assert!(
            growth_last >= growth_first * growth_first / 2,
            "expected roughly quadratic growth, got {growth_first} -> {growth_last}"
        );
        // Safety: never merges across true components.
        let union = union_of(&batches);
        assert!(respects_components(&union, &grow.partition));
    }

    #[test]
    fn grow_components_rejects_mismatched_batches() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let params = Params::test_scale();
        let mut c = ctx();
        let batches = vec![generators::cycle(10), generators::cycle(12)];
        assert!(matches!(
            grow_components(&batches, &params, &mut c, &mut rng),
            Err(CoreError::BadParams(_))
        ));
        let empty: Vec<Graph> = Vec::new();
        assert!(matches!(
            grow_components(&empty, &params, &mut c, &mut rng),
            Err(CoreError::BadParams(_))
        ));
    }

    #[test]
    fn finish_with_bfs_recovers_exact_components() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = generators::planted_expander_components(&[80, 60, 40], 8, &mut rng);
        let truth = connected_components(&g);
        let mut c = ctx();
        // Start from singletons: BFS alone must still find the exact answer
        // (just in diameter many rounds).
        let (part, levels) = finish_with_bfs(&g, &Partition::singletons(g.num_vertices()), &mut c);
        assert!(part.equals_components(&truth));
        assert!(levels >= 1);
    }

    #[test]
    fn components_of_random_union_matches_ground_truth() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let params = Params::laptop_scale();
        let n = 1500;
        let degree = params.batch_degree(n);
        let f = params.num_phases(n);
        let batches = batches_for(n, degree, f, &mut rng);
        let mut c = ctx();
        let (labels, _grow, bfs_levels) =
            components_of_random_union(&batches, &params, &mut c, &mut rng).unwrap();
        let truth = connected_components(&union_of(&batches));
        assert!(labels.same_partition(&truth));
        // The endgame on a dense random union must be very shallow.
        assert!(bfs_levels <= 4, "endgame BFS took {bfs_levels} levels");
    }

    #[test]
    fn grow_components_round_cost_is_constant_per_phase() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let params = Params::laptop_scale();
        let n = 2000;
        let degree = params.batch_degree(n);
        let f = params.num_phases(n);
        let batches = batches_for(n, degree, f, &mut rng);
        let mut c = ctx();
        let _ = grow_components(&batches, &params, &mut c, &mut rng).unwrap();
        let rounds = c.stats().rounds_in_phase("grow-components");
        // A constant number of shuffles/sorts per phase; generous bound.
        assert!(
            rounds <= 8 * f as u64,
            "{rounds} rounds for {f} phases is not O(1) per phase"
        );
    }

    #[test]
    fn union_respects_vertex_set() {
        let a = generators::cycle(10);
        let b = generators::path(10);
        let u = union_of(&[a.clone(), b.clone()]);
        assert_eq!(u.num_vertices(), 10);
        assert_eq!(u.num_edges(), a.num_edges() + b.num_edges());
    }
}
