//! Replacement and zig-zag products for (possibly non-regular) base graphs
//! (Section 4 and Appendix C of the paper).
//!
//! Given a base graph `G` and a family `H = {H_v}` where `H_v` is a
//! `d`-regular graph on `deg_G(v)` vertices, the replacement product
//! `G ⓡ H` replaces every vertex by its "cloud" `H_v` and connects clouds
//! along the edges of `G` using a fixed *port numbering*: if the edge
//! `{u, v}` is `u`'s `i`-th edge and `v`'s `j`-th edge, then cloud vertex
//! `(u, i)` is joined to `(v, j)`. The result is `(d+1)`-regular on
//! `Σ_v deg(v)` vertices, preserves connected components one-to-one, and
//! preserves the spectral gap up to a factor `Θ(1/d)` (Proposition 4.2 /
//! Appendix C) — which is exactly what the regularization step needs.
//!
//! The zig-zag product `G ⓩ H` (Appendix C) connects `(u, i)` to `(v, j)`
//! whenever a cloud-step/inter-cloud-step/cloud-step path joins them in
//! `G ⓡ H`; it is `d²`-regular and preserves the gap up to `λ_G · λ_H²`
//! (Proposition C.1). It is not needed by the pipeline but is implemented
//! (and numerically checked) because the paper's Appendix C proof is stated
//! for it first and the replacement-product bound is derived from it.

use wcc_graph::{Graph, GraphBuilder};

/// The vertex layout of a product graph: cloud vertex `(v, port)` of the base
/// graph maps to the flat index `offsets[v] + port`.
#[derive(Debug, Clone)]
pub struct ProductLayout {
    /// Prefix sums of base-graph degrees; `offsets[v]` is the first flat
    /// index of `v`'s cloud and `offsets[n]` is the total vertex count.
    pub offsets: Vec<usize>,
    /// For every flat index, the base vertex whose cloud it belongs to.
    pub cloud_of: Vec<usize>,
}

impl ProductLayout {
    /// Builds the layout for base graph `g`.
    pub fn new(g: &Graph) -> Self {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for v in 0..n {
            offsets.push(offsets[v] + g.degree(v));
        }
        let mut cloud_of = vec![0usize; offsets[n]];
        for v in 0..n {
            cloud_of[offsets[v]..offsets[v + 1]].fill(v);
        }
        ProductLayout { offsets, cloud_of }
    }

    /// Flat index of cloud vertex `(v, port)`.
    pub fn index(&self, v: usize, port: usize) -> usize {
        self.offsets[v] + port
    }

    /// Total number of product vertices (`2m` for a base graph with `m`
    /// non-loop edges plus loops counted once).
    pub fn num_vertices(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }
}

/// Port numbering of the base graph: for every edge (in edge-list order), the
/// position it occupies in each endpoint's adjacency list. Matches the order
/// in which [`Graph::neighbors`] lists neighbours.
fn port_assignment(g: &Graph) -> Vec<(usize, usize)> {
    let mut next_port = vec![0usize; g.num_vertices()];
    let mut ports = Vec::with_capacity(g.num_edges());
    for &(u, v) in g.edges() {
        let (u, v) = (u as usize, v as usize);
        if u == v {
            let p = next_port[u];
            next_port[u] += 1;
            ports.push((p, p));
        } else {
            let pu = next_port[u];
            next_port[u] += 1;
            let pv = next_port[v];
            next_port[v] += 1;
            ports.push((pu, pv));
        }
    }
    ports
}

fn check_cloud_family(g: &Graph, clouds: &[Graph]) {
    assert_eq!(
        clouds.len(),
        g.num_vertices(),
        "need exactly one cloud per base vertex"
    );
    for (v, cloud) in clouds.iter().enumerate() {
        assert_eq!(
            cloud.num_vertices(),
            g.degree(v),
            "cloud of vertex {v} must have deg({v}) = {} vertices, got {}",
            g.degree(v),
            cloud.num_vertices()
        );
    }
}

/// The replacement product `G ⓡ H`.
///
/// `clouds[v]` must be a graph on exactly `deg_G(v)` vertices; if every cloud
/// is `d`-regular, the product is `(d+1)`-regular (with this crate's
/// convention that a base self-loop becomes a product self-loop contributing
/// one to the degree).
///
/// Returns the product graph together with its [`ProductLayout`].
///
/// # Panics
///
/// Panics if `clouds` has the wrong length or a cloud has the wrong size.
pub fn replacement_product(g: &Graph, clouds: &[Graph]) -> (Graph, ProductLayout) {
    check_cloud_family(g, clouds);
    let layout = ProductLayout::new(g);
    let total = layout.num_vertices();
    let intra_edges: usize = clouds.iter().map(Graph::num_edges).sum();
    let mut builder = GraphBuilder::with_capacity(total, intra_edges + g.num_edges());

    // Intra-cloud edges: a copy of H_v on v's ports.
    for (v, cloud) in clouds.iter().enumerate() {
        for (a, b) in cloud.edge_iter() {
            builder
                .add_edge(layout.index(v, a), layout.index(v, b))
                .expect("cloud indices in range");
        }
    }
    // Inter-cloud edges along the port numbering.
    for (&(u, v), &(pu, pv)) in g.edges().iter().zip(port_assignment(g).iter()) {
        let (u, v) = (u as usize, v as usize);
        builder
            .add_edge(layout.index(u, pu), layout.index(v, pv))
            .expect("port indices in range");
    }
    (builder.build(), layout)
}

/// The zig-zag product `G ⓩ H` (Appendix C).
///
/// `clouds[v]` must be a graph on exactly `deg_G(v)` vertices. If every cloud
/// is `d`-regular the product is `d²`-regular. Intended for analysis-scale
/// graphs (its edge count is `d²` per base edge).
///
/// # Panics
///
/// Panics if `clouds` has the wrong length or a cloud has the wrong size.
pub fn zigzag_product(g: &Graph, clouds: &[Graph]) -> (Graph, ProductLayout) {
    check_cloud_family(g, clouds);
    let layout = ProductLayout::new(g);
    let mut builder = GraphBuilder::new(layout.num_vertices());
    for (&(u, v), &(pu, pv)) in g.edges().iter().zip(port_assignment(g).iter()) {
        let (u, v) = (u as usize, v as usize);
        // A zig-zag edge is cloud-step in H_u, the inter-cloud edge, then a
        // cloud-step in H_v.
        for &i in clouds[u].neighbors(pu) {
            for &j in clouds[v].neighbors(pv) {
                builder
                    .add_edge(layout.index(u, i as usize), layout.index(v, j as usize))
                    .expect("port indices in range");
            }
        }
    }
    (builder.build(), layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wcc_graph::prelude::*;

    /// A d-regular cloud on `size` vertices for tests (complete-ish multigraph
    /// via the permutation model; handles the tiny sizes specially).
    fn cloud(size: usize, d: usize, rng: &mut ChaCha8Rng) -> Graph {
        match size {
            0 => Graph::empty(0),
            1 => Graph::from_edges_unchecked(1, (0..d).map(|_| (0, 0))),
            2 => Graph::from_edges_unchecked(
                2,
                (0..d / 2).map(|_| (0, 1)).chain((0..d / 2).map(|_| (0, 1))),
            ),
            _ => generators::random_regular_permutation_graph(size, d, rng),
        }
    }

    fn cloud_family(g: &Graph, d: usize, seed: u64) -> Vec<Graph> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..g.num_vertices())
            .map(|v| cloud(g.degree(v), d, &mut rng))
            .collect()
    }

    #[test]
    fn layout_offsets_match_degrees() {
        let g = generators::star(5);
        let layout = ProductLayout::new(&g);
        assert_eq!(layout.num_vertices(), 2 * g.num_edges());
        assert_eq!(layout.cloud_of[0], 0);
        assert_eq!(layout.offsets[1] - layout.offsets[0], 4); // centre has degree 4
    }

    #[test]
    fn replacement_product_is_d_plus_1_regular() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::random_out_degree_graph(60, 10, &mut rng);
        let d = 4;
        let clouds = cloud_family(&g, d, 2);
        let (product, layout) = replacement_product(&g, &clouds);
        assert_eq!(product.num_vertices(), layout.num_vertices());
        assert_eq!(
            product.num_vertices(),
            2 * g.num_edges() - g.edges().iter().filter(|&&(u, v)| u == v).count()
        );
        assert!(
            product.is_regular(d + 1),
            "degrees: min {} max {}",
            product.min_degree(),
            product.max_degree()
        );
    }

    #[test]
    fn replacement_product_preserves_components_one_to_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::planted_expander_components(&[20, 30, 15], 6, &mut rng);
        let clouds = cloud_family(&g, 4, 4);
        let (product, layout) = replacement_product(&g, &clouds);
        let base_cc = connected_components(&g);
        let prod_cc = connected_components(&product);
        assert_eq!(base_cc.num_components(), prod_cc.num_components());
        // Two product vertices are in the same product component iff their
        // base vertices are in the same base component.
        for idx in 0..product.num_vertices() {
            for jdx in (idx + 1)..product.num_vertices().min(idx + 50) {
                let same_base = base_cc.same_component(layout.cloud_of[idx], layout.cloud_of[jdx]);
                let same_prod = prod_cc.same_component(idx, jdx);
                assert_eq!(same_base, same_prod, "vertices {idx},{jdx}");
            }
        }
    }

    #[test]
    fn replacement_product_roughly_preserves_spectral_gap_of_expanders() {
        // Proposition 4.2: λ₂(G ⓡ H) = Ω(λ_G · λ_H² / d). With constant-degree
        // expander clouds the product gap must stay bounded away from zero.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::random_regular_permutation_graph(80, 12, &mut rng);
        let gap_g = spectral::spectral_gap(&g, 300);
        let clouds = cloud_family(&g, 6, 6);
        let (product, _) = replacement_product(&g, &clouds);
        let gap_p = spectral::spectral_gap(&product, 600);
        assert!(gap_g > 0.2);
        assert!(
            gap_p > 0.01,
            "product gap collapsed: base {gap_g}, product {gap_p}"
        );
    }

    #[test]
    fn replacement_product_handles_self_loops_and_degree_one_vertices() {
        // A path with a pendant self-loop: degrees 1, 2, 2 (loop counts once).
        let g = Graph::from_edges_unchecked(3, vec![(0, 1), (1, 2), (2, 2)]);
        let clouds = vec![
            cloud(1, 4, &mut ChaCha8Rng::seed_from_u64(0)),
            cloud(2, 4, &mut ChaCha8Rng::seed_from_u64(0)),
            cloud(2, 4, &mut ChaCha8Rng::seed_from_u64(0)),
        ];
        let (product, _) = replacement_product(&g, &clouds);
        assert_eq!(product.num_vertices(), 5);
        assert_eq!(connected_components(&product).num_components(), 1);
        assert!(
            product.is_regular(5),
            "max {} min {}",
            product.max_degree(),
            product.min_degree()
        );
    }

    #[test]
    #[should_panic(expected = "one cloud per base vertex")]
    fn wrong_cloud_count_panics() {
        let g = generators::cycle(4);
        let _ = replacement_product(&g, &[]);
    }

    #[test]
    #[should_panic(expected = "must have deg")]
    fn wrong_cloud_size_panics() {
        let g = generators::cycle(4);
        let clouds: Vec<Graph> = (0..4).map(|_| Graph::empty(3)).collect();
        let _ = replacement_product(&g, &clouds);
    }

    #[test]
    fn zigzag_product_is_d_squared_regular_and_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = generators::random_regular_permutation_graph(40, 8, &mut rng);
        let d = 4;
        let clouds = cloud_family(&g, d, 8);
        let (zz, _) = zigzag_product(&g, &clouds);
        assert!(
            zz.is_regular(d * d),
            "max {} min {}",
            zz.max_degree(),
            zz.min_degree()
        );
        assert_eq!(connected_components(&zz).num_components(), 1);
        let gap = spectral::spectral_gap(&zz, 400);
        assert!(gap > 0.02, "zig-zag gap {gap}");
    }

    #[test]
    fn zigzag_keeps_components_separate() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = generators::planted_expander_components(&[16, 24], 6, &mut rng);
        let clouds = cloud_family(&g, 4, 10);
        let (zz, layout) = zigzag_product(&g, &clouds);
        let base_cc = connected_components(&g);
        let zz_cc = connected_components(&zz);
        assert_eq!(zz_cc.num_components(), base_cc.num_components());
        for idx in (0..zz.num_vertices()).step_by(7) {
            for jdx in (0..zz.num_vertices()).step_by(11) {
                assert_eq!(
                    zz_cc.same_component(idx, jdx),
                    base_cc.same_component(layout.cloud_of[idx], layout.cloud_of[jdx])
                );
            }
        }
    }
}
