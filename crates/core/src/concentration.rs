//! Concentration helpers and the balls-and-bins experiment
//! (Appendices A and B).
//!
//! The analysis of the leader-election phases repeatedly uses the Chernoff
//! bound (Proposition A.1), the method of bounded differences
//! (Proposition A.2) and the balls-and-bins count of non-empty bins
//! (Proposition B.1, used in Claim 6.9 to show contraction degrees stay
//! concentrated). The experiment harness re-checks these bounds numerically
//! (experiment E11); the helpers live here so both tests and experiments
//! share one implementation.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The Chernoff upper bound of Proposition A.1: for a sum of independent
/// `[0,1]` variables with mean `mu`, `Pr[|X − mu| ≥ eps·mu] ≤ 2·exp(−eps²·mu/2)`.
pub fn chernoff_bound(mu: f64, eps: f64) -> f64 {
    if mu <= 0.0 || eps <= 0.0 {
        return 1.0;
    }
    (2.0 * (-eps * eps * mu / 2.0).exp()).min(1.0)
}

/// The bounded-differences (McDiarmid) bound of Proposition A.2 for an
/// `n`-variable function that is `lipschitz`-Lipschitz in every coordinate:
/// `Pr[|f − E f| > t] ≤ exp(−2 t² / (n · lipschitz²))`.
pub fn bounded_differences_bound(n: usize, lipschitz: f64, t: f64) -> f64 {
    if n == 0 || lipschitz <= 0.0 || t <= 0.0 {
        return 1.0;
    }
    (-2.0 * t * t / (n as f64 * lipschitz * lipschitz))
        .exp()
        .min(1.0)
}

/// Outcome of one balls-and-bins experiment (Proposition B.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BallsAndBins {
    /// Number of balls thrown.
    pub balls: usize,
    /// Number of bins.
    pub bins: usize,
    /// Number of non-empty bins after all throws.
    pub non_empty: usize,
}

/// Throws `balls` balls into `bins` bins, each bin chosen with probability
/// within `(1 ± skew)/bins` (the "almost uniform" setting of Proposition
/// B.1), and reports the number of non-empty bins.
///
/// # Panics
///
/// Panics if `bins == 0` or `skew` is not in `[0, 1)`.
pub fn balls_and_bins<R: Rng + ?Sized>(
    balls: usize,
    bins: usize,
    skew: f64,
    rng: &mut R,
) -> BallsAndBins {
    assert!(bins > 0, "need at least one bin");
    assert!((0.0..1.0).contains(&skew), "skew must be in [0,1)");
    // Build an (un-normalised) weight per bin inside the allowed band.
    let weights: Vec<f64> = (0..bins)
        .map(|_| 1.0 + skew * (2.0 * rng.gen::<f64>() - 1.0))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(bins);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cumulative.push(acc);
    }
    let mut occupied = vec![false; bins];
    for _ in 0..balls {
        let r: f64 = rng.gen();
        let idx = cumulative.partition_point(|&c| c < r).min(bins - 1);
        occupied[idx] = true;
    }
    BallsAndBins {
        balls,
        bins,
        non_empty: occupied.iter().filter(|&&o| o).count(),
    }
}

/// The Proposition B.1 prediction: when `balls ≤ eps·bins`, the number of
/// non-empty bins lies in `(1 ± 2 eps)·balls` except with probability
/// `exp(−eps²·balls/2)`.
pub fn balls_and_bins_prediction(balls: usize, eps: f64) -> (f64, f64, f64) {
    let lo = (1.0 - 2.0 * eps) * balls as f64;
    let hi = (1.0 + 2.0 * eps) * balls as f64;
    let failure = (-eps * eps * balls as f64 / 2.0).exp();
    (lo, hi, failure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn chernoff_bound_is_monotone_and_bounded() {
        assert!(chernoff_bound(10_000.0, 0.1) < chernoff_bound(1_000.0, 0.1));
        assert!(chernoff_bound(100.0, 0.9) < chernoff_bound(100.0, 0.3));
        assert!(chernoff_bound(0.0, 0.1) <= 1.0);
        assert!(chernoff_bound(1e9, 0.5) < 1e-12);
    }

    #[test]
    fn bounded_differences_bound_behaves() {
        let loose = bounded_differences_bound(1000, 1.0, 10.0);
        let tight = bounded_differences_bound(1000, 1.0, 100.0);
        assert!(tight < loose);
        assert_eq!(bounded_differences_bound(0, 1.0, 5.0), 1.0);
    }

    #[test]
    fn empirical_chernoff_failure_rate_is_below_the_bound() {
        // Sum of 400 fair coins, eps = 0.25: bound = 2 exp(-0.25^2*200/2) ≈ 0.0038.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let trials = 2000;
        let n = 400;
        let eps = 0.25;
        let mu = n as f64 * 0.5;
        let mut failures = 0;
        for _ in 0..trials {
            let x: usize = (0..n).filter(|_| rng.gen_bool(0.5)).count();
            if (x as f64 - mu).abs() >= eps * mu {
                failures += 1;
            }
        }
        let empirical = failures as f64 / trials as f64;
        assert!(empirical <= chernoff_bound(mu, eps) + 0.01);
    }

    #[test]
    fn balls_and_bins_matches_proposition_b1() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let bins = 100_000;
        let eps = 0.05;
        let balls = (eps * bins as f64) as usize; // N = eps*B
        let outcome = balls_and_bins(balls, bins, eps, &mut rng);
        let (lo, hi, _) = balls_and_bins_prediction(balls, eps);
        assert!(
            (outcome.non_empty as f64) >= lo && (outcome.non_empty as f64) <= hi,
            "non-empty bins {} outside [{lo}, {hi}]",
            outcome.non_empty
        );
    }

    #[test]
    fn balls_and_bins_with_few_bins_saturates() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let outcome = balls_and_bins(10_000, 8, 0.0, &mut rng);
        assert_eq!(outcome.non_empty, 8);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let _ = balls_and_bins(10, 0, 0.0, &mut rng);
    }
}
