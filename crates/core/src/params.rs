//! Algorithm parameters.
//!
//! The paper fixes its constants in Eq. (3) of Section 6:
//!
//! ```text
//! ε = (100 log n)^{-2}     discrepancy budget for almost-regular graphs
//! s = 10^6 · log n / ε²    concentration ("scaling") factor
//! Δ = 100 · s              base degree of the random batches
//! F = argmin_i { Δ^{2^i} ≥ n^{1/100} }   number of leader-election phases
//! ```
//!
//! together with expander degree `d = 100`, spectral-gap threshold `4/5`
//! (Corollary 4.4), randomized-graph degree `100 log n` and walk count
//! `50 log n` (Lemma 5.1).
//!
//! Those constants are tuned for the asymptotic analysis, not for running on
//! graphs with `10³–10⁶` vertices — with them, the "random batch" degree
//! `Δ·s` already exceeds `n` for any feasible `n`. [`Params::paper`] records
//! them faithfully; [`Params::laptop_scale`] keeps every *ratio* the proofs
//! rely on (leader probability `1/Δ_i`, batch degree `Δ_i·s`, phase count
//! `F = Θ(log log n)`, squaring schedule `Δ_{i+1} = Δ_i²`) while shrinking
//! the absolute constants so the algorithm runs comfortably on one machine.
//! DESIGN.md documents this substitution; every experiment states which
//! preset it uses.

use serde::{Deserialize, Serialize};

use crate::walks::WalkKernel;

/// Tunable constants of the full pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Memory exponent `δ`: machines have `≈ N^δ` words of memory.
    pub delta: f64,
    /// Degree `d` of the expander clouds used by the replacement product
    /// (paper: 100). Must be even.
    pub expander_degree: usize,
    /// Spectral-gap threshold a sampled cloud must reach (paper: 4/5).
    pub expander_min_gap: f64,
    /// Power-iteration count used when verifying cloud expanders.
    pub expander_gap_iters: usize,
    /// Attempts allowed when rejection-sampling a cloud expander.
    pub expander_max_attempts: usize,
    /// Multiplier `c` in the walk length `T = c · ln(n/γ) / λ`
    /// (Proposition 2.2; paper treats `c` as an absolute constant).
    pub mixing_time_constant: f64,
    /// The total-variation target `γ` of the randomization step, expressed as
    /// `γ = n^{-gamma_exponent}` (paper: `γ* = n^{-10}`).
    pub gamma_exponent: f64,
    /// Concentration factor `s`, expressed as a multiple of `ln n`
    /// (paper: `10⁶ · log n / ε²`, i.e. an enormous multiple; laptop preset
    /// uses a small constant).
    pub s_log_multiplier: f64,
    /// Base degree `Δ` of the leader-election schedule: phase `i` works at
    /// degree `Δ_i = Δ^{2^{i-1}}` (paper: `Δ = 100·s`).
    pub base_degree: usize,
    /// Stop growing once `Δ_F ≥ n^{stop_exponent}` and switch to the O(1)-
    /// diameter BFS endgame (paper: 1/100).
    pub stop_exponent: f64,
    /// Hard cap on the number of leader-election phases.
    pub max_phases: usize,
    /// When `true`, the randomization step runs the faithful layered-graph
    /// data structure of Theorem 3 (with independence detection); when
    /// `false` it simulates each walk directly, which produces exactly the
    /// same product distribution and is what the pipeline uses at scale.
    pub faithful_walks: bool,
    /// Copies per layer in the faithful layered graph, as a multiple of the
    /// walk length `t` (paper: 2, i.e. `2t` copies).
    pub layer_copies_multiplier: usize,
    /// Upper cap on the walk length `T` used by the randomization step. The
    /// paper needs no cap (its `T` is `polylog(n)` by assumption on `λ`);
    /// the cap keeps the direct simulation affordable when a caller passes a
    /// tiny `λ`, and correctness is unaffected because the pipeline's endgame
    /// is exact regardless of mixing.
    pub max_walk_length: usize,
    /// Worker threads of the execution backend (forwarded to
    /// [`MpcConfig::threads`](wcc_mpc::MpcConfig::threads) when the pipeline
    /// sizes its own cluster): `1` = sequential, `n > 1` = the persistent
    /// worker pool, `0` = resolve from the `WCC_THREADS` environment
    /// variable (whose own `0` means one worker per available CPU). Results
    /// are bit-identical for every value — see DESIGN.md, "The executor
    /// seam" and "The persistent pool".
    pub threads: usize,
    /// Which batched walk kernel simulates the Direct randomization fan-out
    /// (overridable at run time via `WCC_WALK_KERNEL`). Kernels realise the
    /// same walk distribution but consume per-vertex keystreams differently,
    /// so fixed-seed outputs are pinned per kernel — see DESIGN.md §10.
    pub walk_kernel: WalkKernel,
}

impl Params {
    /// The constants exactly as printed in the paper (Eq. (3), Section 4–5).
    ///
    /// These are intended for resource *accounting* and for asymptotic
    /// discussion; instantiating the algorithm with them on a laptop-sized
    /// graph would build random batches denser than the complete graph.
    pub fn paper(n: usize) -> Self {
        let ln_n = (n.max(2) as f64).ln();
        let eps = (100.0 * ln_n).powi(-2);
        let s = 1e6 * ln_n / (eps * eps);
        Params {
            delta: 0.3,
            expander_degree: 100,
            expander_min_gap: 0.8,
            expander_gap_iters: 200,
            expander_max_attempts: 50,
            mixing_time_constant: 1.0,
            gamma_exponent: 10.0,
            s_log_multiplier: s / ln_n,
            base_degree: (100.0 * s) as usize,
            stop_exponent: 1.0 / 100.0,
            max_phases: 64,
            faithful_walks: false,
            layer_copies_multiplier: 2,
            max_walk_length: 1 << 20,
            threads: 0,
            walk_kernel: WalkKernel::V3,
        }
    }

    /// Laptop-scale preset: same structure, small constants.
    pub fn laptop_scale() -> Self {
        Params {
            delta: 0.5,
            expander_degree: 8,
            expander_min_gap: 0.3,
            expander_gap_iters: 120,
            expander_max_attempts: 60,
            mixing_time_constant: 2.0,
            gamma_exponent: 2.0,
            s_log_multiplier: 1.5,
            base_degree: 4,
            stop_exponent: 0.25,
            max_phases: 8,
            faithful_walks: false,
            layer_copies_multiplier: 2,
            max_walk_length: 4096,
            threads: 0,
            walk_kernel: WalkKernel::V3,
        }
    }

    /// A smaller/faster preset used by unit tests.
    pub fn test_scale() -> Self {
        Params {
            expander_gap_iters: 60,
            mixing_time_constant: 1.5,
            max_walk_length: 1024,
            ..Params::laptop_scale()
        }
    }

    /// Returns a copy using the given number of worker threads (`1` =
    /// sequential backend, `0` = resolve from `WCC_THREADS`, whose own `0`
    /// means one worker per available CPU).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns a copy using the given walk kernel (still subject to the
    /// `WCC_WALK_KERNEL` environment override at run time).
    pub fn with_walk_kernel(mut self, kernel: WalkKernel) -> Self {
        self.walk_kernel = kernel;
        self
    }

    /// The concentration factor `s` for an `n`-vertex instance: at least 2.
    pub fn s_factor(&self, n: usize) -> usize {
        ((self.s_log_multiplier * (n.max(3) as f64).ln()).ceil() as usize).max(2)
    }

    /// Per-batch random-graph degree `Δ·s` (always even).
    pub fn batch_degree(&self, n: usize) -> usize {
        let d = self.base_degree.max(2) * self.s_factor(n);
        if d.is_multiple_of(2) {
            d
        } else {
            d + 1
        }
    }

    /// The leader-election degree schedule `Δ_1, Δ_2, …, Δ_F` with
    /// `Δ_i = Δ^{2^{i-1}}`, truncated at `n^{stop_exponent}` (and by
    /// `max_phases`). This is `F = O(log log n)` long.
    pub fn degree_schedule(&self, n: usize) -> Vec<u64> {
        let stop = (n.max(4) as f64).powf(self.stop_exponent).max(2.0);
        let base = self.base_degree.max(2) as f64;
        let mut schedule = Vec::new();
        let mut exponent = 1.0f64;
        for _ in 0..self.max_phases {
            let delta_i = base.powf(exponent);
            schedule.push(delta_i.min(u64::MAX as f64 / 4.0) as u64);
            if delta_i >= stop {
                break;
            }
            exponent *= 2.0;
        }
        schedule
    }

    /// The number of phases `F` of the degree schedule.
    pub fn num_phases(&self, n: usize) -> usize {
        self.degree_schedule(n).len()
    }

    /// Target total-variation distance `γ = n^{-gamma_exponent}` of the
    /// randomization step.
    pub fn gamma(&self, n: usize) -> f64 {
        (n.max(2) as f64).powf(-self.gamma_exponent)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.expander_degree.is_multiple_of(2) || self.expander_degree < 2 {
            return Err(format!(
                "expander_degree must be even and >= 2, got {}",
                self.expander_degree
            ));
        }
        if !(0.0 < self.delta && self.delta < 1.0) {
            return Err(format!("delta must be in (0,1), got {}", self.delta));
        }
        if self.base_degree < 2 {
            return Err(format!(
                "base_degree must be >= 2, got {}",
                self.base_degree
            ));
        }
        if !(self.stop_exponent > 0.0 && self.stop_exponent <= 1.0) {
            return Err(format!(
                "stop_exponent must be in (0,1], got {}",
                self.stop_exponent
            ));
        }
        if self.s_log_multiplier <= 0.0 {
            return Err("s_log_multiplier must be positive".to_string());
        }
        if self.max_phases == 0 {
            return Err("max_phases must be at least 1".to_string());
        }
        Ok(())
    }
}

impl Default for Params {
    fn default() -> Self {
        Params::laptop_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(Params::laptop_scale().validate().is_ok());
        assert!(Params::test_scale().validate().is_ok());
        assert!(Params::paper(1_000_000).validate().is_ok());
    }

    #[test]
    fn degree_schedule_squares_until_threshold() {
        let p = Params::laptop_scale();
        let schedule = p.degree_schedule(100_000);
        assert!(schedule.len() >= 2);
        for w in schedule.windows(2) {
            assert_eq!(w[1], w[0] * w[0], "schedule must square: {schedule:?}");
        }
        let stop = (100_000f64).powf(p.stop_exponent);
        assert!(*schedule.last().unwrap() as f64 >= stop);
        // F is tiny — the whole point of the paper.
        assert!(schedule.len() <= 6);
    }

    #[test]
    fn phase_count_grows_like_log_log_n() {
        let p = Params::laptop_scale();
        let f_small = p.num_phases(1 << 10);
        let f_large = p.num_phases(1 << 20);
        assert!(f_large >= f_small);
        assert!(
            f_large <= f_small + 2,
            "F should barely grow: {f_small} -> {f_large}"
        );
    }

    #[test]
    fn batch_degree_is_even_and_scales_with_log_n() {
        let p = Params::laptop_scale();
        assert_eq!(p.batch_degree(1000) % 2, 0);
        assert!(p.batch_degree(1_000_000) >= p.batch_degree(1000));
    }

    #[test]
    fn paper_preset_records_the_published_constants() {
        let p = Params::paper(1000);
        assert_eq!(p.expander_degree, 100);
        assert!((p.stop_exponent - 0.01).abs() < 1e-12);
        assert!(p.base_degree > 1_000_000); // Δ = 100·s is astronomically large.
    }

    #[test]
    fn invalid_params_are_rejected() {
        let mut p = Params::laptop_scale();
        p.expander_degree = 7;
        assert!(p.validate().is_err());
        let mut q = Params::laptop_scale();
        q.delta = 1.5;
        assert!(q.validate().is_err());
        let mut r = Params::laptop_scale();
        r.stop_exponent = 0.0;
        assert!(r.validate().is_err());
    }

    #[test]
    fn gamma_shrinks_polynomially() {
        let p = Params::laptop_scale();
        assert!(p.gamma(100) > p.gamma(10_000));
        assert!(p.gamma(10_000) > 0.0);
    }
}
