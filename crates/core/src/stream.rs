//! Streaming ingestion: incremental maintenance of the component labelling
//! (and its well-connectedness certificate) under batched edge arrivals.
//!
//! Every other entry point in this workspace is one-shot — load a graph, run
//! the pipeline once, print. [`IncrementalComponents`] instead *keeps* the
//! decomposition alive between edge batches, following the classic
//! fast-path/slow-path split for dynamic connectivity:
//!
//! * **Fast path** — a deterministic union–find pass over the current labels,
//!   modelling the cheap concurrent label-merging of Liu–Tarjan (*Simple
//!   Concurrent Labeling Algorithms for Connected Components*): each batch is
//!   charged `O(1)` simulated rounds (route every edge to its endpoints'
//!   label holders, broadcast the merge responses) and touches no walk or
//!   leader-election machinery. The fast path is taken exactly when the batch
//!   provably cannot have changed the maintained structure: no union joins
//!   two *standing* components (components that both existed before the batch
//!   began) and the well-connectedness certificate still holds.
//! * **Slow path** — a full pipeline recompute
//!   ([`well_connected_components_with_ctx`]) on the accumulated graph, i.e.
//!   the paper's Theorem 4 run end to end, in the spirit of Behnezhad et
//!   al.'s near-optimal recompute bound. The recompute's labels are adopted
//!   as the authoritative decomposition, and the certificate thresholds are
//!   refreshed from the new graph.
//!
//! ## The well-connectedness certificate
//!
//! The pipeline's guarantees rest on the components being well connected,
//! and its Step-1 regularization rests on them being *almost regular*
//! (Section 2 of the paper: degrees within `(1 ± ε)·d`). The certificate is
//! the cheap incremental proxy for that premise: at every recompute, each
//! component of at least [`StreamParams::certificate_min_component`] vertices
//! is assigned a degree **cap** (`max(skew · avg + slack, current max)`)
//! and a degree **floor** (`min(avg / skew, current min)`). Between
//! recomputes three kinds of vertices can cross a fixed threshold:
//!
//! * an *existing* vertex can violate the **cap** on an insertion (a forming
//!   hub: parallel-edge pile-ups that skew the degree distribution),
//! * a *newly arrived* vertex can violate the **floor** (a pendant
//!   tendril: attachments too sparse to preserve almost-regularity), and
//! * a *deletion endpoint* can drop below the **floor** (erosion of a
//!   certified component's regularity).
//!
//! Either violation escalates the batch to the slow path. Components built
//! purely on the fast path since the last recompute (fresh arrivals that
//! never merged into a standing component) carry trivial thresholds until
//! the next recompute certifies them — the certificate tracks *degradation
//! of certified structure*, not absolute quality of brand-new structure.
//!
//! ## Deletions: the turnstile sketch path
//!
//! The stream is *fully dynamic*: batches may carry edge deletions
//! ([`IncrementalComponents::apply_ops_batch`], fed from version-2 `WCCS`
//! streams). Deleting an edge can only *split* the component it lived in, so
//! between the fast path and the full recompute sits a third, component-local
//! path built on the paper's own AGM linear sketches (Proposition 8.1, which
//! are turnstile by construction — a deletion is a `−1` update on the same
//! ℓ0 samplers):
//!
//! * The engine lazily maintains one
//!   [`DynamicConnectivitySketch`](wcc_sketch::DynamicConnectivitySketch)
//!   over the live edge multiset. It is built the first time a deletion is
//!   ever seen and updated per-op afterwards, so insert-only workloads pay
//!   nothing for the machinery.
//! * A deletion of the **last live copy** of an edge is *structural*: it may
//!   have disconnected its component. At the end of the batch, each touched
//!   component runs sketch-space Borůvka over its members only
//!   ([`wcc_sketch::DynamicConnectivitySketch::subset_components`]). If a
//!   phase certifies the resulting partition (every part's summed sampler is
//!   zero — a randomness-independent test), the component is either
//!   *re-certified* connected (one part) or *split* into its exact new
//!   components ([`BatchPath::SketchRepair`]); splits rebuild the union–find
//!   and mint new component ids through the usual oldest-member rule.
//! * Only when the sketch cannot certify (sampling failure,
//!   [`RecomputeReason::SketchUncertified`]) — or the batch independently
//!   escalates (standing merge, certificate violation) — does the engine fall
//!   back to the full Theorem-4 recompute.
//!
//! Deleting an edge that was never inserted (or already deleted) is a hard
//! error that leaves the engine untouched — over-deletion would silently
//! corrupt the sketch's linearity, so the batch is validated against the
//! live multiset before any state changes.
//!
//! Replaying a batch schedule and then asking for
//! [`IncrementalComponents::labels`] is guaranteed to produce the exact
//! connected components of the surviving edge multiset — the differential
//! suites in `tests/streaming_differential.rs` (insert-only) and
//! `tests/dynamic_differential.rs` (insert+delete) pin this against
//! from-scratch pipeline runs for every tested family, seed and thread
//! count.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use crate::params::Params;
use crate::pipeline::{recommended_config, well_connected_components_with_ctx};
use crate::regularize::CoreError;
use crate::serve::snapshot::ComponentSnapshot;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wcc_graph::io::{EdgeOp, OpKind};
use wcc_graph::{ComponentLabels, Graph, UnionFind};
use wcc_mpc::{MpcConfig, MpcContext, RoundStats};
use wcc_sketch::DynamicConnectivitySketch;

/// Tunables of the streaming engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamParams {
    /// Parameters of the slow-path pipeline recompute (also carries the
    /// worker-thread count used by both paths).
    pub pipeline: Params,
    /// Spectral-gap promise handed to every recompute.
    pub lambda: f64,
    /// Certificate skew `σ`: a certified component's degree cap is
    /// `σ · avg + slack` and its floor is `avg / σ` (clamped so the state at
    /// certification time is never already in violation).
    pub certificate_degree_skew: f64,
    /// Additive slack on the degree cap, in edges.
    pub certificate_degree_slack: u32,
    /// Components smaller than this are never certificate-checked (tiny
    /// components are trivially irregular and trivially cheap to recompute).
    pub certificate_min_component: usize,
    /// When `false`, every non-empty batch escalates to a full recompute.
    /// This exists for differential testing and benchmarking — it is the
    /// "no incremental maintenance" strawman the fast path is measured
    /// against.
    pub fast_path: bool,
    /// Independent Borůvka phases of the lazily built turnstile sketch (see
    /// the module docs). More phases raise the probability that a deletion
    /// is absorbed by the sketch-repair path instead of escalating to a
    /// full recompute, at `O(phases · log n)` words per vertex.
    pub sketch_phases: usize,
}

impl StreamParams {
    /// Laptop-scale preset mirroring [`Params::laptop_scale`].
    pub fn laptop_scale() -> Self {
        StreamParams {
            pipeline: Params::laptop_scale(),
            lambda: 0.25,
            certificate_degree_skew: 4.0,
            certificate_degree_slack: 8,
            certificate_min_component: 8,
            fast_path: true,
            sketch_phases: 26,
        }
    }

    /// Test-scale preset mirroring [`Params::test_scale`].
    pub fn test_scale() -> Self {
        StreamParams {
            pipeline: Params::test_scale(),
            ..StreamParams::laptop_scale()
        }
    }

    /// Returns a copy using the given number of worker threads (`1` =
    /// sequential backend, `0` = resolve from `WCC_THREADS`, whose own `0`
    /// means one worker per available CPU).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pipeline.threads = threads;
        self
    }

    /// Returns a copy with the given spectral-gap promise.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Returns a copy with the fast path enabled or disabled.
    pub fn with_fast_path(mut self, enabled: bool) -> Self {
        self.fast_path = enabled;
        self
    }

    /// Returns a copy with the given number of turnstile-sketch phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is zero.
    pub fn with_sketch_phases(mut self, phases: usize) -> Self {
        assert!(phases > 0, "at least one sketch phase required");
        self.sketch_phases = phases;
        self
    }
}

/// Why a batch escalated to the slow path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecomputeReason {
    /// The first non-empty batch: establishes the initial decomposition and
    /// certificate.
    Bootstrap,
    /// The batch merged two standing components (components that both
    /// existed before the batch began).
    StandingMerge,
    /// The batch pushed a certified component outside its degree cap/floor.
    CertificateViolation,
    /// The fast path is disabled ([`StreamParams::fast_path`] is `false`).
    FastPathDisabled,
    /// A deletion-touched component could not be re-certified by the sketch
    /// within its phase budget (sampling failure).
    SketchUncertified,
}

/// Which path a batch took through the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPath {
    /// Union–find label maintenance only; no pipeline work.
    FastPath,
    /// Component-local sketch-Borůvka re-certify-or-split of the components
    /// touched by structural deletions; no pipeline work.
    SketchRepair,
    /// Full pipeline recompute on the accumulated graph.
    Recompute(RecomputeReason),
}

impl BatchPath {
    /// `true` for [`BatchPath::FastPath`].
    pub fn is_fast(&self) -> bool {
        matches!(self, BatchPath::FastPath)
    }

    /// A short machine-readable label (used by `wcc stream --json`).
    pub fn label(&self) -> &'static str {
        match self {
            BatchPath::FastPath => "fast-path",
            BatchPath::SketchRepair => "sketch-repair",
            BatchPath::Recompute(RecomputeReason::Bootstrap) => "recompute:bootstrap",
            BatchPath::Recompute(RecomputeReason::StandingMerge) => "recompute:standing-merge",
            BatchPath::Recompute(RecomputeReason::CertificateViolation) => {
                "recompute:certificate-violation"
            }
            BatchPath::Recompute(RecomputeReason::FastPathDisabled) => {
                "recompute:fast-path-disabled"
            }
            BatchPath::Recompute(RecomputeReason::SketchUncertified) => {
                "recompute:sketch-uncertified"
            }
        }
    }
}

/// Per-batch measurements, in the same shape `wcc --json` reports run-level
/// quantities (rounds, words, wall time).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// 0-based index of the batch in the schedule.
    pub batch_index: usize,
    /// Ops contained in the batch (insertions + deletions, including
    /// duplicates and self-loops).
    pub edges_in_batch: usize,
    /// Edge insertions in the batch.
    pub insertions: usize,
    /// Edge deletions in the batch.
    pub deletions: usize,
    /// Vertex ids seen for the first time in this batch.
    pub new_vertices: usize,
    /// Unions that joined two standing components (any non-zero count
    /// escalates).
    pub standing_merges: usize,
    /// Components minted by sketch-repair splits in this batch (a component
    /// splitting into `k` parts counts `k − 1`).
    pub splits: usize,
    /// Deletion-touched components the sketch re-certified as still
    /// connected in this batch.
    pub sketch_recertifies: usize,
    /// The path the batch took.
    pub path: BatchPath,
    /// Components after the batch.
    pub components_after: usize,
    /// Vertices after the batch.
    pub vertices_after: usize,
    /// Live (surviving) edges after the batch.
    pub edges_after: usize,
    /// Simulated MPC rounds charged by this batch (fast-path charge or the
    /// full recompute).
    pub rounds: u64,
    /// Words of simulated communication charged by this batch.
    pub communication_words: u64,
    /// Wall-clock time of the batch, in milliseconds.
    pub wall_time_ms: f64,
}

/// Sentinel certificate: a floor no degree is below and a cap no degree is
/// above — uncertified components carry these and trivially pass every check.
const UNCERTIFIED: (u32, u32) = (0, u32::MAX);

/// The streaming engine: see the module docs for the fast/slow path
/// contract.
#[derive(Debug, Clone)]
pub struct IncrementalComponents {
    params: StreamParams,
    /// Master RNG; each slow-path recompute draws from it in sequence, so a
    /// replay is deterministic for a fixed seed and batch schedule.
    rng: ChaCha8Rng,
    /// Raw (external) vertex id → dense id.
    interner: HashMap<u64, u32>,
    /// `original_ids[dense] = raw`, in order of first appearance.
    original_ids: Vec<u64>,
    /// Accumulated dense edge list in arrival order. Slots are never
    /// removed — a deletion clears the slot's `edge_alive` bit instead, so
    /// the live edge *order* (what [`current_graph`] iterates) stays a pure
    /// function of the op schedule.
    ///
    /// [`current_graph`]: IncrementalComponents::current_graph
    edges: Vec<(u32, u32)>,
    /// `edge_alive[i]` — slot `i` of `edges` has not been deleted.
    edge_alive: Vec<bool>,
    /// Number of live slots.
    live_edges: usize,
    /// Live slot indices per normalized dense endpoint pair, used as a
    /// stack: an insertion pushes its slot, a deletion pops one (most
    /// recently inserted copy first). A deletion whose stack is empty has no
    /// live copy to remove and is a hard error.
    edge_slots: HashMap<(u32, u32), Vec<u32>>,
    /// The lazily built turnstile sketch over the live edge multiset:
    /// `None` until the first deletion ever seen, then maintained per-op.
    sketch: Option<DynamicConnectivitySketch>,
    /// Seed of the sketch's shared hash functions, derived once from the
    /// engine seed so replays are deterministic.
    sketch_seed: u64,
    /// Cumulative components minted by sketch-repair splits.
    splits_total: usize,
    /// Cumulative sketch re-certifications.
    sketch_recertifies_total: usize,
    /// Current degree of every dense vertex (self-loops count once, matching
    /// [`Graph::degree`]).
    degrees: Vec<u32>,
    /// The maintained labelling.
    uf: UnionFind,
    /// Smallest dense id in each set (valid at roots) — the "how old is this
    /// component" tag the standing-merge test reads.
    oldest: Vec<u32>,
    /// Certificate degree floor per set (valid at roots).
    cert_floor: Vec<u32>,
    /// Certificate degree cap per set (valid at roots).
    cert_cap: Vec<u32>,
    /// The accounting context charged by both paths. Replaced (and absorbed
    /// into `prior_stats`) when the grown input outsizes its cluster.
    ctx: MpcContext,
    /// Statistics of retired contexts.
    prior_stats: RoundStats,
    batches_applied: usize,
    recomputes: usize,
    bootstrapped: bool,
    /// Cached `Arc`-shared parts of the last built snapshot, so quiet
    /// batches republish in O(1) (see [`IncrementalComponents::snapshot`]).
    snap_cache: Option<SnapCache>,
    /// New vertices arrived since the cache was built (forces an index
    /// rebuild).
    snap_vertices_dirty: bool,
    /// The decomposition changed since the cache was built — an effective
    /// union, a new vertex (a new singleton component), or a recompute.
    snap_structure_dirty: bool,
}

/// A uniform, allocation-free view over the two batch encodings: legacy
/// insert-only edge slices and signed op slices. Keeps the hot insert-only
/// path free of per-batch op materialisation.
#[derive(Clone, Copy)]
enum OpsView<'a> {
    Edges(&'a [(u64, u64)]),
    Ops(&'a [EdgeOp]),
}

impl OpsView<'_> {
    fn len(&self) -> usize {
        match self {
            OpsView::Edges(e) => e.len(),
            OpsView::Ops(o) => o.len(),
        }
    }

    fn has_delete(&self) -> bool {
        match self {
            OpsView::Edges(_) => false,
            OpsView::Ops(o) => o.iter().any(|op| op.kind == OpKind::Delete),
        }
    }

    fn get(&self, i: usize) -> EdgeOp {
        match self {
            OpsView::Edges(e) => EdgeOp::insert(e[i].0, e[i].1),
            OpsView::Ops(o) => o[i],
        }
    }
}

/// The `Arc`-shared payloads of the last snapshot build — see
/// [`IncrementalComponents::snapshot`] for the reuse contract.
#[derive(Debug, Clone)]
struct SnapCache {
    index: Arc<HashMap<u64, u32>>,
    raw_of: Arc<Vec<u64>>,
    rep: Arc<Vec<u32>>,
    size: Arc<Vec<u32>>,
    num_components: usize,
}

impl IncrementalComponents {
    /// Creates an empty engine. The first non-empty batch bootstraps the
    /// decomposition with a full pipeline run.
    pub fn new(params: StreamParams, seed: u64) -> Self {
        // A placeholder cluster for the pre-bootstrap fast-path charges; the
        // first recompute resizes it to `recommended_config` for the real
        // input.
        let config = MpcConfig::with_memory(1024, 64)
            .permissive()
            .with_threads(params.pipeline.threads);
        IncrementalComponents {
            params,
            rng: ChaCha8Rng::seed_from_u64(seed),
            interner: HashMap::new(),
            original_ids: Vec::new(),
            edges: Vec::new(),
            edge_alive: Vec::new(),
            live_edges: 0,
            edge_slots: HashMap::new(),
            sketch: None,
            sketch_seed: seed ^ 0xA6D1_5EED_0F57_u64,
            splits_total: 0,
            sketch_recertifies_total: 0,
            degrees: Vec::new(),
            uf: UnionFind::new(0),
            oldest: Vec::new(),
            cert_floor: Vec::new(),
            cert_cap: Vec::new(),
            ctx: MpcContext::new(config),
            prior_stats: RoundStats::default(),
            batches_applied: 0,
            recomputes: 0,
            bootstrapped: false,
            snap_cache: None,
            snap_vertices_dirty: true,
            snap_structure_dirty: true,
        }
    }

    /// Applies one insert-only edge batch (raw `u64` vertex ids, as decoded
    /// from the version-1 binary chunk format) and reports which path it
    /// took and what it cost.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if a slow-path recompute fails (bad parameters,
    /// infeasible cluster) or the dense vertex space overflows `u32`. The
    /// labelling itself remains correct after an error — only the
    /// certificate refresh is missed, and the next escalation retries it.
    pub fn apply_batch(&mut self, batch: &[(u64, u64)]) -> Result<BatchReport, CoreError> {
        self.apply_ops_impl(OpsView::Edges(batch))
    }

    /// Applies one turnstile op batch (insertions and deletions on raw
    /// vertex ids, as decoded from the version-2 binary chunk format).
    ///
    /// # Errors
    ///
    /// In addition to the [`apply_batch`](Self::apply_batch) errors, a
    /// deletion with no live copy to remove — an edge never inserted, or
    /// already deleted, accounting for earlier ops *in the same batch* —
    /// returns [`CoreError::BadParams`] **before any state changes**: the
    /// whole batch is validated against the live multiset first, so a
    /// rejected batch leaves the engine exactly as it was.
    pub fn apply_ops_batch(&mut self, batch: &[EdgeOp]) -> Result<BatchReport, CoreError> {
        self.validate_deletions(batch)?;
        self.apply_ops_impl(OpsView::Ops(batch))
    }

    /// Rejects any delete op that would over-delete: at its position in the
    /// batch there must be a live copy of the edge, counting the batch's own
    /// earlier inserts/deletes (prefix semantics).
    fn validate_deletions(&self, batch: &[EdgeOp]) -> Result<(), CoreError> {
        if !batch.iter().any(|op| op.kind == OpKind::Delete) {
            return Ok(());
        }
        // Running per-pair delta over the batch prefix, on raw-id pairs.
        let mut delta: HashMap<(u64, u64), i64> = HashMap::new();
        for op in batch {
            let key = (op.u.min(op.v), op.u.max(op.v));
            match op.kind {
                OpKind::Insert => {
                    *delta.entry(key).or_insert(0) += 1;
                }
                OpKind::Delete => {
                    let d = delta.entry(key).or_insert(0);
                    *d -= 1;
                    if *d < 0 {
                        let live = self.live_copies(op.u, op.v) as i64;
                        if live + *d < 0 {
                            return Err(CoreError::BadParams(format!(
                                "stream: deletion of edge ({}, {}) with no live copy \
                                 (never inserted, or already deleted)",
                                op.u, op.v
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Live copies of the raw edge `{a, b}` in the standing multiset.
    fn live_copies(&self, a: u64, b: u64) -> usize {
        let (Some(&u), Some(&v)) = (self.interner.get(&a), self.interner.get(&b)) else {
            return 0;
        };
        let key = (u.min(v), u.max(v));
        self.edge_slots.get(&key).map_or(0, Vec::len)
    }

    fn apply_ops_impl(&mut self, view: OpsView<'_>) -> Result<BatchReport, CoreError> {
        let started = Instant::now();
        let rounds_before = self.total_rounds();
        let words_before = self.total_communication_words();
        let batch_index = self.batches_applied;
        self.batches_applied += 1;

        let len = view.len();
        let bootstrap = !self.bootstrapped && len > 0;
        let n0 = self.original_ids.len() as u32;
        let min_component = self.params.certificate_min_component;

        self.ctx.begin_phase("stream-ingest");
        // Fast-path cost model (Liu–Tarjan concurrent labeling): one round
        // routing every op to its endpoints' label holders (two words per
        // op), one round of merge responses (one word per op). The sketch
        // build/repair and the slow path charge their own work on top.
        self.ctx.charge_shuffle(2 * len);
        self.ctx.charge_shuffle(len);
        let _ = self.ctx.record_balanced_load(2 * len);

        // First deletion ever: build the turnstile sketch from the live
        // multiset (insert-only workloads never get here). One simulated
        // round routing every live edge to its two endpoint sketches.
        if view.has_delete() && self.sketch.is_none() {
            self.ctx.charge_shuffle(2 * self.live_edges);
            let mut sk =
                DynamicConnectivitySketch::new(self.params.sketch_phases, self.sketch_seed);
            for _ in 0..self.original_ids.len() {
                sk.push_vertex();
            }
            for (i, &(u, v)) in self.edges.iter().enumerate() {
                if self.edge_alive[i] {
                    sk.add_edge(u, v);
                }
            }
            self.sketch = Some(sk);
        }

        let mut new_vertices = 0usize;
        let mut insertions = 0usize;
        let mut deletions = 0usize;
        let mut standing_merges = 0usize;
        let mut cert_violated = false;
        // Vertices whose component lost the last live copy of an edge this
        // batch — candidates for a sketch-Borůvka re-certify-or-split.
        let mut dirty: Vec<u32> = Vec::new();

        for i in 0..len {
            let op = view.get(i);
            match op.kind {
                OpKind::Insert => {
                    insertions += 1;
                    let u = self.intern(op.u, &mut new_vertices)? as usize;
                    let v = self.intern(op.v, &mut new_vertices)? as usize;
                    let slot = self.edges.len() as u32;
                    self.edges.push((u as u32, v as u32));
                    self.edge_alive.push(true);
                    self.live_edges += 1;
                    let key = (u.min(v) as u32, u.max(v) as u32);
                    self.edge_slots.entry(key).or_default().push(slot);
                    self.degrees[u] += 1;
                    if u != v {
                        self.degrees[v] += 1;
                    }
                    if let Some(sk) = &mut self.sketch {
                        sk.add_edge(u as u32, v as u32);
                    }

                    let (ru, rv) = (self.uf.find(u), self.uf.find(v));
                    if ru != rv {
                        // Classify the union *before* the roots are
                        // destroyed: a merge of two standing components
                        // escalates; otherwise the merged set inherits the
                        // certificate of its pre-batch side (if any) — the
                        // other side is necessarily brand new this batch,
                        // and its vertices are floor-checked below.
                        let standing = self.oldest[ru] < n0 && self.oldest[rv] < n0;
                        if standing {
                            standing_merges += 1;
                        }
                        let inherited = if self.oldest[ru] < n0 && self.oldest[rv] >= n0 {
                            (self.cert_floor[ru], self.cert_cap[ru])
                        } else if self.oldest[rv] < n0 && self.oldest[ru] >= n0 {
                            (self.cert_floor[rv], self.cert_cap[rv])
                        } else {
                            // Both new (uncertified) or both standing (the
                            // batch escalates and the recompute refreshes
                            // everything).
                            UNCERTIFIED
                        };
                        let merged_oldest = self.oldest[ru].min(self.oldest[rv]);
                        self.uf.union(ru, rv);
                        let r = self.uf.find(ru);
                        self.oldest[r] = merged_oldest;
                        (self.cert_floor[r], self.cert_cap[r]) = inherited;
                        self.snap_structure_dirty = true;
                    }

                    // Cap check: only a touched existing vertex can newly
                    // exceed the fixed cap of its (certified) component.
                    let r = self.uf.find(u);
                    if self.uf.set_size(r) >= min_component {
                        let cap = self.cert_cap[r];
                        if self.degrees[u] > cap || self.degrees[v] > cap {
                            cert_violated = true;
                        }
                    }
                }
                OpKind::Delete => {
                    deletions += 1;
                    // Both lookups succeed: `validate_deletions` guaranteed a
                    // live copy exists at this prefix position.
                    let u = self.interner[&op.u] as usize;
                    let v = self.interner[&op.v] as usize;
                    let key = (u.min(v) as u32, u.max(v) as u32);
                    let stack = self
                        .edge_slots
                        .get_mut(&key)
                        .expect("validated: live copy exists");
                    let slot = stack.pop().expect("validated: live copy exists") as usize;
                    let last_copy = stack.is_empty();
                    self.edge_alive[slot] = false;
                    self.live_edges -= 1;
                    self.degrees[u] -= 1;
                    if u != v {
                        self.degrees[v] -= 1;
                    }
                    if let Some(sk) = &mut self.sketch {
                        sk.remove_edge(u as u32, v as u32);
                    }

                    if u != v {
                        if last_copy {
                            // Structural: no surviving parallel copy keeps
                            // the endpoints adjacent, so the component may
                            // have split.
                            dirty.push(u as u32);
                        }
                        // Floor check: a deletion endpoint can erode below
                        // the fixed floor of its certified component.
                        let r = self.uf.find(u);
                        if self.uf.set_size(r) >= min_component {
                            let floor = self.cert_floor[r];
                            if self.degrees[u] < floor || self.degrees[v] < floor {
                                cert_violated = true;
                            }
                        }
                    }
                }
            }
        }

        // Floor check for arrivals: only vertices that arrived in this batch
        // can sit below the fixed floor of the certified component they
        // joined without a deletion having flagged them already.
        for v in n0 as usize..self.original_ids.len() {
            let r = self.uf.find(v);
            if self.uf.set_size(r) >= min_component && self.degrees[v] < self.cert_floor[r] {
                cert_violated = true;
            }
        }

        let mut splits = 0usize;
        let mut sketch_recertifies = 0usize;
        let mut path = if bootstrap {
            BatchPath::Recompute(RecomputeReason::Bootstrap)
        } else if !self.params.fast_path && len > 0 {
            BatchPath::Recompute(RecomputeReason::FastPathDisabled)
        } else if standing_merges > 0 {
            BatchPath::Recompute(RecomputeReason::StandingMerge)
        } else if cert_violated {
            BatchPath::Recompute(RecomputeReason::CertificateViolation)
        } else if !dirty.is_empty() {
            BatchPath::SketchRepair
        } else {
            BatchPath::FastPath
        };
        if path == BatchPath::SketchRepair {
            match self.sketch_repair(&dirty) {
                Some((s, r)) => {
                    splits = s;
                    sketch_recertifies = r;
                    self.splits_total += s;
                    self.sketch_recertifies_total += r;
                }
                None => path = BatchPath::Recompute(RecomputeReason::SketchUncertified),
            }
        }
        let outcome = if let BatchPath::Recompute(_) = path {
            self.recompute()
        } else {
            Ok(())
        };
        // Close the batch's phase before propagating any recompute failure:
        // a stale open phase would swallow caller time into its wall-time
        // share the next time `begin_phase` closed it.
        self.ctx.end_phase();
        outcome?;

        Ok(BatchReport {
            batch_index,
            edges_in_batch: len,
            insertions,
            deletions,
            new_vertices,
            standing_merges,
            splits,
            sketch_recertifies,
            path,
            components_after: self.uf.num_sets(),
            vertices_after: self.original_ids.len(),
            edges_after: self.live_edges,
            rounds: self.total_rounds() - rounds_before,
            communication_words: self.total_communication_words() - words_before,
            wall_time_ms: started.elapsed().as_secs_f64() * 1e3,
        })
    }

    /// Re-certify-or-split every component touched by a structural deletion,
    /// entirely in sketch space. Returns `(splits, recertifies)` on success;
    /// `None` when any touched component exhausts the sketch's phase budget
    /// without certifying, in which case **nothing was mutated** (all
    /// partitions are certified before any is applied) and the caller
    /// escalates to a full recompute.
    ///
    /// Soundness of restricting Borůvka to one maintained component: the
    /// maintained partition is always *over-coarse* (never splits a true
    /// component across two maintained ones), so every edge incident to a
    /// member stays inside the member set, which is exactly the premise
    /// [`DynamicConnectivitySketch::subset_components`] needs.
    ///
    /// Cost model: per touched component, one round routing its members'
    /// sketches to a coordinator (`members · words_per_vertex` words) and
    /// one round broadcasting the new labels (`members` words).
    fn sketch_repair(&mut self, dirty: &[u32]) -> Option<(usize, usize)> {
        let n = self.original_ids.len();
        // Deterministic component order: sorted distinct roots.
        let mut roots: Vec<usize> = dirty.iter().map(|&v| self.uf.find(v as usize)).collect();
        roots.sort_unstable();
        roots.dedup();
        let mut is_dirty_root = vec![false; n];
        let mut slot_of_root = vec![usize::MAX; n];
        for (i, &r) in roots.iter().enumerate() {
            is_dirty_root[r] = true;
            slot_of_root[r] = i;
        }
        // One O(n) pass collects every touched component's members in
        // ascending dense-id order.
        let mut members_of: Vec<Vec<u32>> = vec![Vec::new(); roots.len()];
        for v in 0..n {
            let r = self.uf.find(v);
            if slot_of_root[r] != usize::MAX {
                members_of[slot_of_root[r]].push(v as u32);
            }
        }

        let sketch = self.sketch.as_ref().expect("repair requires the sketch");
        let wpv = sketch.words_per_vertex();
        // Certify every touched component before mutating anything, so an
        // uncertified one escalates with the labelling untouched.
        let mut partitions: Vec<Vec<Vec<u32>>> = Vec::with_capacity(roots.len());
        for members in &members_of {
            self.ctx.charge_shuffle(members.len() * wpv);
            self.ctx.charge_shuffle(members.len());
            partitions.push(sketch.subset_components(members)?.parts);
        }

        let mut splits = 0usize;
        let mut recertifies = 0usize;
        for parts in &partitions {
            if parts.len() == 1 {
                recertifies += 1;
            } else {
                splits += parts.len() - 1;
            }
        }
        if splits > 0 {
            // A union–find cannot split, so rebuild it: untouched components
            // are replayed wholesale, touched ones union per certified part.
            let mut old_root_of = vec![0usize; n];
            for (v, slot) in old_root_of.iter_mut().enumerate() {
                *slot = self.uf.find(v);
            }
            let mut uf = UnionFind::new(n);
            for (v, &r) in old_root_of.iter().enumerate() {
                if !is_dirty_root[r] {
                    uf.union(r, v);
                }
            }
            for parts in &partitions {
                for part in parts {
                    for &m in &part[1..] {
                        uf.union(part[0] as usize, m as usize);
                    }
                }
            }
            // Carry certificates across the re-rooting: an untouched
            // component keeps its thresholds (its membership is unchanged);
            // a touched component loses them until the next recompute
            // certifies its parts.
            let mut floor = vec![UNCERTIFIED.0; n];
            let mut cap = vec![UNCERTIFIED.1; n];
            for (v, &or) in old_root_of.iter().enumerate() {
                if !is_dirty_root[or] {
                    let nr = uf.find(v);
                    floor[nr] = self.cert_floor[or];
                    cap[nr] = self.cert_cap[or];
                }
            }
            self.uf = uf;
            self.cert_floor = floor;
            self.cert_cap = cap;
            // Refresh the oldest-member tags: reset every slot, take minima
            // over the new sets. Split-off parts mint fresh component ids
            // through the snapshot's oldest-member rule; the part keeping
            // the old oldest member keeps the old id.
            for (v, slot) in self.oldest.iter_mut().enumerate() {
                *slot = v as u32;
            }
            for v in 0..n {
                let r = self.uf.find(v);
                self.oldest[r] = self.oldest[r].min(v as u32);
            }
            self.snap_structure_dirty = true;
        }
        Some((splits, recertifies))
    }

    /// Applies a whole insert-only batch schedule in order, returning one
    /// report per batch.
    ///
    /// # Errors
    ///
    /// See [`IncrementalComponents::apply_batch`]; the first failing batch
    /// aborts the replay.
    pub fn apply_schedule<C: AsRef<[(u64, u64)]>>(
        &mut self,
        batches: &[C],
    ) -> Result<Vec<BatchReport>, CoreError> {
        batches
            .iter()
            .map(|batch| self.apply_batch(batch.as_ref()))
            .collect()
    }

    /// Applies a whole op schedule in order, returning one report per batch.
    ///
    /// # Errors
    ///
    /// See [`IncrementalComponents::apply_ops_batch`]; the first failing
    /// batch aborts the replay.
    pub fn apply_ops_schedule<C: AsRef<[EdgeOp]>>(
        &mut self,
        batches: &[C],
    ) -> Result<Vec<BatchReport>, CoreError> {
        batches
            .iter()
            .map(|batch| self.apply_ops_batch(batch.as_ref()))
            .collect()
    }

    fn intern(&mut self, raw: u64, new_vertices: &mut usize) -> Result<u32, CoreError> {
        if let Some(&id) = self.interner.get(&raw) {
            return Ok(id);
        }
        let id = self.original_ids.len();
        if id >= u32::MAX as usize {
            return Err(CoreError::BadParams(format!(
                "stream: more than {} distinct vertex ids",
                u32::MAX
            )));
        }
        self.interner.insert(raw, id as u32);
        self.original_ids.push(raw);
        self.degrees.push(0);
        self.oldest.push(id as u32);
        self.cert_floor.push(UNCERTIFIED.0);
        self.cert_cap.push(UNCERTIFIED.1);
        let pushed = self.uf.push();
        debug_assert_eq!(pushed, id);
        if let Some(sk) = &mut self.sketch {
            sk.push_vertex();
        }
        *new_vertices += 1;
        // A fresh vertex is a fresh singleton component: both the vertex
        // index and the decomposition arrays of the next snapshot change.
        self.snap_vertices_dirty = true;
        self.snap_structure_dirty = true;
        Ok(id as u32)
    }

    /// Slow path: run the full pipeline on the accumulated graph, adopt its
    /// labels, refresh the certificate.
    fn recompute(&mut self) -> Result<(), CoreError> {
        let n = self.original_ids.len();
        let g = self.current_graph();

        // Resize the simulated cluster when the grown input outsizes it;
        // the retired context's statistics stay in the cumulative record.
        let want = recommended_config(&g, self.params.lambda, &self.params.pipeline);
        let have = self.ctx.config();
        if want.memory_per_machine > have.memory_per_machine
            || want.num_machines > have.num_machines
        {
            let retired = std::mem::replace(&mut self.ctx, MpcContext::new(want));
            self.prior_stats.absorb(retired.into_stats());
        }

        let (labels, _report) = well_connected_components_with_ctx(
            &g,
            self.params.lambda,
            &self.params.pipeline,
            &mut self.ctx,
            &mut self.rng,
        )?;
        // Only a recompute that actually ran counts ("performed so far" —
        // a failed escalation must not inflate the counter).
        self.recomputes += 1;

        // Adopt the pipeline's labelling as the authoritative decomposition.
        let mut uf = UnionFind::new(n);
        let mut representative = vec![usize::MAX; labels.num_components()];
        for v in 0..n {
            let l = labels.label(v);
            if representative[l] == usize::MAX {
                representative[l] = v;
            } else {
                uf.union(representative[l], v);
            }
        }
        self.uf = uf;

        // Refresh component tags and certificate thresholds.
        let skew = self.params.certificate_degree_skew.max(1.0);
        let slack = self.params.certificate_degree_slack;
        let mut min_deg = vec![u32::MAX; n];
        let mut max_deg = vec![0u32; n];
        let mut deg_sum = vec![0u64; n];
        // Stale root tags from before the recompute must not survive: reset
        // every slot to its own id, then take minima over the new sets.
        for (v, slot) in self.oldest.iter_mut().enumerate() {
            *slot = v as u32;
        }
        for v in 0..n {
            let r = self.uf.find(v);
            self.oldest[r] = self.oldest[r].min(v as u32);
            min_deg[r] = min_deg[r].min(self.degrees[v]);
            max_deg[r] = max_deg[r].max(self.degrees[v]);
            deg_sum[r] += u64::from(self.degrees[v]);
        }
        // Second pass so aggregates are complete before thresholds are set.
        for v in 0..n {
            let r = self.uf.find(v);
            if v != r {
                continue;
            }
            let size = self.uf.set_size(r);
            if size < self.params.certificate_min_component {
                (self.cert_floor[r], self.cert_cap[r]) = UNCERTIFIED;
                continue;
            }
            let avg = deg_sum[r] as f64 / size as f64;
            let cap = ((skew * avg).ceil() as u32).saturating_add(slack);
            let floor = (avg / skew).floor() as u32;
            self.cert_floor[r] = floor.min(min_deg[r]);
            self.cert_cap[r] = cap.max(max_deg[r]);
        }
        self.bootstrapped = true;
        self.snap_structure_dirty = true;
        Ok(())
    }

    /// Builds a publishable [`ComponentSnapshot`] of the current
    /// decomposition, stamped with `epoch` (callers use the number of
    /// batches applied — see `wcc serve` — so epochs strictly increase).
    ///
    /// Publication cost is O(changed): if no batch since the last build
    /// changed the decomposition (only duplicate edges arrived), the cached
    /// `Arc`s are reused and this is O(1); if vertices or labels changed, the
    /// affected arrays are rebuilt in one O(n) pass (label flattening via
    /// union–find `find` plus a size count). The vertex index is rebuilt only
    /// when new vertices actually arrived, so a label-only change (a merge of
    /// existing components) still shares the index maps with the previous
    /// snapshot.
    pub fn snapshot(&mut self, epoch: u64) -> ComponentSnapshot {
        let rebuild_vertices = self.snap_vertices_dirty || self.snap_cache.is_none();
        if rebuild_vertices || self.snap_structure_dirty {
            let n = self.original_ids.len();
            let (index, raw_of) = if rebuild_vertices {
                (
                    Arc::new(self.interner.clone()),
                    Arc::new(self.original_ids.clone()),
                )
            } else {
                let cache = self.snap_cache.as_ref().expect("cache exists when clean");
                (Arc::clone(&cache.index), Arc::clone(&cache.raw_of))
            };
            let mut rep = vec![0u32; n];
            let mut size = vec![0u32; n];
            for (v, slot) in rep.iter_mut().enumerate() {
                // `oldest` is valid at roots; the oldest member's dense id
                // doubles as the component's stable name.
                *slot = self.oldest[self.uf.find(v)];
            }
            for &r in rep.iter() {
                size[r as usize] += 1;
            }
            self.snap_cache = Some(SnapCache {
                index,
                raw_of,
                rep: Arc::new(rep),
                size: Arc::new(size),
                num_components: self.uf.num_sets(),
            });
            self.snap_vertices_dirty = false;
            self.snap_structure_dirty = false;
        }
        let cache = self.snap_cache.as_ref().expect("just built");
        ComponentSnapshot::assemble(
            epoch,
            Arc::clone(&cache.index),
            Arc::clone(&cache.raw_of),
            Arc::clone(&cache.rep),
            Arc::clone(&cache.size),
            cache.num_components,
            self.live_edges as u64,
            self.batches_applied as u64,
            self.recomputes as u64,
        )
    }

    /// The current labelling, canonicalised in dense-id (arrival) order.
    /// Bit-identical for a fixed seed and schedule regardless of the thread
    /// count.
    pub fn labels(&self) -> ComponentLabels {
        self.uf.clone().into_labels()
    }

    /// `original_ids()[dense] = raw`: the raw id each dense vertex id (the
    /// index space of [`IncrementalComponents::labels`]) arrived as.
    pub fn original_ids(&self) -> &[u64] {
        &self.original_ids
    }

    /// Projects the labelling onto the vertex universe `0..n`, reading each
    /// raw id as a vertex index: `result.label(v)` is the component of the
    /// vertex that arrived as raw id `v`, and ids the stream never saw get
    /// fresh singleton labels after the real ones — exactly the labelling a
    /// from-scratch run on the final graph (isolated vertices included)
    /// would produce, up to label renaming. This is how the differential
    /// suite compares a replay against the one-shot pipeline.
    ///
    /// # Panics
    ///
    /// Panics if a seen raw id is `>= n` (the stream does not fit the
    /// claimed universe).
    pub fn labels_for_universe(&self, n: usize) -> ComponentLabels {
        let labels = self.labels();
        let mut raw = vec![usize::MAX; n];
        for (dense, &orig) in self.original_ids.iter().enumerate() {
            assert!(
                (orig as usize) < n,
                "raw id {orig} outside the universe 0..{n}"
            );
            raw[orig as usize] = labels.label(dense);
        }
        let mut next = labels.num_components();
        for slot in raw.iter_mut() {
            if *slot == usize::MAX {
                *slot = next;
                next += 1;
            }
        }
        ComponentLabels::from_raw_labels(&raw)
    }

    /// Number of components currently maintained.
    pub fn num_components(&self) -> usize {
        self.uf.num_sets()
    }

    /// Number of distinct vertices seen so far.
    pub fn num_vertices(&self) -> usize {
        self.original_ids.len()
    }

    /// Number of live (surviving) edges: inserted and not deleted.
    /// Duplicates and self-loops count.
    pub fn num_edges(&self) -> usize {
        self.live_edges
    }

    /// Number of batches applied so far.
    pub fn batches_applied(&self) -> usize {
        self.batches_applied
    }

    /// Number of slow-path recomputes performed so far.
    pub fn recomputes(&self) -> usize {
        self.recomputes
    }

    /// Cumulative components minted by sketch-repair splits.
    pub fn splits(&self) -> usize {
        self.splits_total
    }

    /// Cumulative deletion-touched components the sketch re-certified as
    /// still connected.
    pub fn sketch_recertifies(&self) -> usize {
        self.sketch_recertifies_total
    }

    /// Whether the turnstile sketch has been built (it is lazy: `false`
    /// until the first deletion ever seen).
    pub fn sketch_active(&self) -> bool {
        self.sketch.is_some()
    }

    /// Materialises the surviving (live-edge) graph on the dense vertex set,
    /// edges in insertion order.
    pub fn current_graph(&self) -> Graph {
        Graph::from_edges_unchecked(
            self.original_ids.len(),
            self.edges
                .iter()
                .zip(self.edge_alive.iter())
                .filter(|&(_, &alive)| alive)
                .map(|(&(u, v), _)| (u as usize, v as usize)),
        )
    }

    /// Cumulative simulated-resource statistics across every batch and
    /// recompute so far (model quantities only are compared by `Eq` — see
    /// [`wcc_mpc::PhaseStats`]).
    pub fn stats(&self) -> RoundStats {
        let mut total = self.prior_stats.clone();
        total.absorb(self.ctx.stats().clone());
        total
    }

    fn total_rounds(&self) -> u64 {
        self.prior_stats.total_rounds() + self.ctx.stats().total_rounds()
    }

    fn total_communication_words(&self) -> u64 {
        self.prior_stats.total_communication_words() + self.ctx.stats().total_communication_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use wcc_graph::prelude::*;

    fn params() -> StreamParams {
        StreamParams::test_scale()
    }

    /// One batch per `sizes` entry, raw ids shifted so batches are disjoint
    /// expander components.
    fn expander_batches(sizes: &[usize], degree: usize, seed: u64) -> Vec<Vec<(u64, u64)>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut batches = Vec::new();
        let mut shift = 0u64;
        for &s in sizes {
            let g = generators::random_regular_permutation_graph(s, degree, &mut rng);
            batches.push(
                g.edge_iter()
                    .map(|(u, v)| (u as u64 + shift, v as u64 + shift))
                    .collect(),
            );
            shift += s as u64;
        }
        batches
    }

    #[test]
    fn bootstrap_recomputes_then_intra_edges_ride_the_fast_path() {
        let mut engine = IncrementalComponents::new(params(), 11);
        let batches = expander_batches(&[60], 8, 5);
        let r0 = engine.apply_batch(&batches[0]).unwrap();
        assert_eq!(r0.path, BatchPath::Recompute(RecomputeReason::Bootstrap));
        assert_eq!(engine.recomputes(), 1);
        assert_eq!(engine.num_components(), 1);

        // Duplicates of existing intra-component edges: pure fast path.
        let intra: Vec<(u64, u64)> = batches[0][..20].to_vec();
        let r1 = engine.apply_batch(&intra).unwrap();
        assert_eq!(r1.path, BatchPath::FastPath);
        assert_eq!(r1.standing_merges, 0);
        assert_eq!(r1.new_vertices, 0);
        assert_eq!(engine.recomputes(), 1);
        // The fast path charges O(1) rounds.
        assert_eq!(r1.rounds, 2);
        assert_eq!(engine.num_components(), 1);
    }

    #[test]
    fn merging_standing_components_escalates() {
        let mut engine = IncrementalComponents::new(params(), 3);
        let batches = expander_batches(&[50, 40], 8, 9);
        engine.apply_batch(&batches[0]).unwrap();
        let r1 = engine.apply_batch(&batches[1]).unwrap();
        // The second expander is brand new in its batch: no standing merge.
        assert_eq!(r1.standing_merges, 0);
        assert_eq!(r1.path, BatchPath::FastPath);
        assert_eq!(engine.num_components(), 2);

        // A bridge between the two standing components escalates.
        let bridge = vec![(0u64, 50u64)];
        let r2 = engine.apply_batch(&bridge).unwrap();
        assert_eq!(
            r2.path,
            BatchPath::Recompute(RecomputeReason::StandingMerge)
        );
        assert_eq!(r2.standing_merges, 1);
        assert_eq!(engine.num_components(), 1);

        let truth = connected_components(&engine.current_graph());
        assert!(engine.labels().same_partition(&truth));
    }

    #[test]
    fn pendant_tendril_violates_the_degree_floor() {
        let mut engine = IncrementalComponents::new(params(), 7);
        let batches = expander_batches(&[60], 8, 13);
        engine.apply_batch(&batches[0]).unwrap();

        // A well-attached newcomer (enough edges to clear the floor of
        // avg/skew = 8/4 = 2) rides the fast path...
        let attach = vec![(1000u64, 0u64), (1000, 1), (1000, 2)];
        let r1 = engine.apply_batch(&attach).unwrap();
        assert_eq!(r1.path, BatchPath::FastPath);
        assert_eq!(r1.new_vertices, 1);

        // ...but a degree-1 pendant vertex degrades almost-regularity and
        // escalates.
        let pendant = vec![(2000u64, 0u64)];
        let r2 = engine.apply_batch(&pendant).unwrap();
        assert_eq!(
            r2.path,
            BatchPath::Recompute(RecomputeReason::CertificateViolation)
        );
        assert_eq!(engine.num_components(), 1);
    }

    #[test]
    fn hub_pileup_violates_the_degree_cap() {
        let mut engine = IncrementalComponents::new(params(), 19);
        let batches = expander_batches(&[60], 8, 17);
        engine.apply_batch(&batches[0]).unwrap();

        // Pile parallel intra-component edges onto vertex 0 until its degree
        // blows past cap = skew·avg + slack = 4·8 + 8 = 40.
        let pile: Vec<(u64, u64)> = (0..40).map(|i| (0u64, 1 + (i % 3) as u64)).collect();
        let r = engine.apply_batch(&pile).unwrap();
        assert_eq!(
            r.path,
            BatchPath::Recompute(RecomputeReason::CertificateViolation)
        );
        // The recompute refreshes the thresholds from the new degree
        // distribution, so ordinary traffic is fast again (hysteresis, not a
        // recompute storm). The hub itself sits exactly at the refreshed cap,
        // so the follow-up avoids it.
        let small: Vec<(u64, u64)> = vec![(5, 6)];
        let r2 = engine.apply_batch(&small).unwrap();
        assert_eq!(r2.path, BatchPath::FastPath);
    }

    #[test]
    fn disabled_fast_path_recomputes_every_batch() {
        let mut engine = IncrementalComponents::new(params().with_fast_path(false), 23);
        let batches = expander_batches(&[40], 8, 21);
        engine.apply_batch(&batches[0]).unwrap();
        let intra: Vec<(u64, u64)> = batches[0][..10].to_vec();
        let r = engine.apply_batch(&intra).unwrap();
        assert_eq!(
            r.path,
            BatchPath::Recompute(RecomputeReason::FastPathDisabled)
        );
        assert_eq!(engine.recomputes(), 2);
    }

    #[test]
    fn empty_batches_are_free_no_ops() {
        let mut engine = IncrementalComponents::new(params(), 29);
        let r = engine.apply_batch(&[]).unwrap();
        assert_eq!(r.path, BatchPath::FastPath);
        assert_eq!(r.rounds, 2); // the constant fast-path charge
        assert_eq!(r.communication_words, 0);
        assert_eq!(engine.num_vertices(), 0);
        assert_eq!(engine.num_components(), 0);
        assert!(engine.labels().is_empty());
        assert_eq!(engine.recomputes(), 0, "an empty batch must not bootstrap");
    }

    #[test]
    fn random_schedule_replay_matches_ground_truth() {
        let mut graph_rng = ChaCha8Rng::seed_from_u64(31);
        let g = generators::planted_expander_components(&[40, 30, 20], 8, &mut graph_rng);
        let mut edges: Vec<(u64, u64)> = g.edge_iter().map(|(u, v)| (u as u64, v as u64)).collect();
        edges.shuffle(&mut graph_rng);

        let mut engine = IncrementalComponents::new(params(), 37);
        for chunk in edges.chunks(37) {
            engine.apply_batch(chunk).unwrap();
        }
        assert_eq!(engine.num_edges(), g.num_edges());

        // Map dense labels back to the generator's vertex numbering.
        let got = engine.labels_for_universe(g.num_vertices());
        assert!(got.same_partition(&connected_components(&g)));
    }

    #[test]
    fn snapshots_answer_queries_and_reuse_arcs_for_quiet_batches() {
        let mut engine = IncrementalComponents::new(params(), 43);
        let batches = expander_batches(&[50], 8, 23);
        engine.apply_batch(&batches[0]).unwrap();
        let s1 = engine.snapshot(1);
        assert_eq!(s1.epoch(), 1);
        assert_eq!(s1.num_vertices(), 50);
        assert_eq!(s1.num_components(), 1);
        assert_eq!(s1.same_component(0, 1), Some(true));
        assert_eq!(s1.component_of(7), s1.component_of(0));
        assert_eq!(s1.component_size(7), Some(50));
        assert_eq!(s1.same_component(0, 999), None);
        assert_eq!(s1.component_of(999), None);

        // Duplicate edges leave the decomposition untouched: the snapshot is
        // republished in O(1), sharing every array with its predecessor.
        let dup: Vec<(u64, u64)> = batches[0][..10].to_vec();
        engine.apply_batch(&dup).unwrap();
        let s2 = engine.snapshot(2);
        assert!(s2.shares_structure(&s1) && s2.shares_index(&s1));
        assert_eq!(s2.epoch(), 2);
        assert!(s2.num_edges() > s1.num_edges());

        // A well-attached newcomer dirties both the index and the labels,
        // but the component keeps its id (the oldest member's raw id).
        let attach = vec![(1000u64, 0u64), (1000, 1), (1000, 2)];
        engine.apply_batch(&attach).unwrap();
        let s3 = engine.snapshot(3);
        assert!(!s3.shares_structure(&s2) && !s3.shares_index(&s2));
        assert_eq!(s3.component_of(1000), s2.component_of(0));
        assert_eq!(s3.component_size(0), Some(51));
    }

    #[test]
    fn merge_only_batches_rebuild_labels_but_share_the_index() {
        let mut engine = IncrementalComponents::new(params(), 47);
        let batches = expander_batches(&[40, 30], 8, 29);
        engine.apply_batch(&batches[0]).unwrap();
        engine.apply_batch(&batches[1]).unwrap();
        let before = engine.snapshot(2);
        assert_eq!(before.num_components(), 2);
        assert_eq!(before.same_component(0, 40), Some(false));

        // A bridge between standing components: no new vertices, so the
        // rebuilt snapshot shares the index maps but not the label arrays,
        // and the merged component takes the older side's id.
        engine.apply_batch(&[(0u64, 40u64)]).unwrap();
        let after = engine.snapshot(3);
        assert!(after.shares_index(&before));
        assert!(!after.shares_structure(&before));
        assert_eq!(after.same_component(0, 40), Some(true));
        assert_eq!(after.component_of(40), before.component_of(0));
        assert_eq!(after.component_size(40), Some(70));
        assert_eq!(after.num_components(), 1);
    }

    /// All `(i, j)` pairs of a clique on raw ids `lo..hi` as insert ops.
    fn clique_ops(lo: u64, hi: u64) -> Vec<EdgeOp> {
        let mut ops = Vec::new();
        for i in lo..hi {
            for j in (i + 1)..hi {
                ops.push(EdgeOp::insert(i, j));
            }
        }
        ops
    }

    #[test]
    fn sketch_is_lazy_and_insert_only_streams_never_build_it() {
        let mut engine = IncrementalComponents::new(params(), 51);
        let batches = expander_batches(&[40], 8, 33);
        engine.apply_batch(&batches[0]).unwrap();
        engine
            .apply_ops_batch(&[EdgeOp::insert(0, 1), EdgeOp::insert(2, 3)])
            .unwrap();
        assert!(!engine.sketch_active(), "insert-only ops must stay lazy");
        engine.apply_ops_batch(&[EdgeOp::delete(0, 1)]).unwrap();
        assert!(engine.sketch_active(), "first deletion builds the sketch");
    }

    #[test]
    fn non_structural_deletions_ride_the_fast_path() {
        let mut engine = IncrementalComponents::new(params(), 53);
        let batches = expander_batches(&[40], 8, 35);
        engine.apply_batch(&batches[0]).unwrap();
        // A parallel copy and a self-loop...
        engine
            .apply_ops_batch(&[
                EdgeOp::insert(0, 1),
                EdgeOp::insert(0, 1),
                EdgeOp::insert(5, 5),
            ])
            .unwrap();
        let recomputes_before = engine.recomputes();
        // ...whose deletion leaves a surviving copy (or is a self-loop):
        // nothing structural, no repair, no recompute.
        let r = engine
            .apply_ops_batch(&[EdgeOp::delete(0, 1), EdgeOp::delete(5, 5)])
            .unwrap();
        assert_eq!(r.path, BatchPath::FastPath);
        assert_eq!(r.deletions, 2);
        assert_eq!(r.splits, 0);
        assert_eq!(r.sketch_recertifies, 0);
        assert_eq!(engine.recomputes(), recomputes_before);
    }

    #[test]
    fn structural_deletion_in_an_expander_recertifies_without_recompute() {
        let mut engine = IncrementalComponents::new(params(), 57);
        let batches = expander_batches(&[60], 8, 37);
        engine.apply_batch(&batches[0]).unwrap();
        let recomputes_before = engine.recomputes();
        // Delete one expander edge with no parallel copy (so the deletion is
        // structural): the component stays connected, the sketch certifies
        // it, and no pipeline recompute runs.
        let mut copies = std::collections::HashMap::new();
        for &(a, b) in &batches[0] {
            *copies.entry((a.min(b), a.max(b))).or_insert(0u32) += 1;
        }
        let (a, b) = batches[0]
            .iter()
            .copied()
            .find(|&(a, b)| a != b && copies[&(a.min(b), a.max(b))] == 1)
            .expect("expander has a non-loop simple edge");
        let r = engine.apply_ops_batch(&[EdgeOp::delete(a, b)]).unwrap();
        assert_eq!(r.path, BatchPath::SketchRepair);
        assert_eq!(r.sketch_recertifies, 1);
        assert_eq!(r.splits, 0);
        assert_eq!(engine.recomputes(), recomputes_before);
        assert_eq!(engine.num_components(), 1);
        let truth = connected_components(&engine.current_graph());
        assert!(engine.labels().same_partition(&truth));
    }

    #[test]
    fn bridge_deletion_splits_and_mints_component_ids_by_the_oldest_member_rule() {
        let mut engine = IncrementalComponents::new(params(), 59);
        // Two 6-cliques joined by one bridge; raw ids are interned in
        // ascending order so dense == raw.
        let mut ops = clique_ops(0, 6);
        ops.extend(clique_ops(6, 12));
        ops.push(EdgeOp::insert(0, 6));
        engine.apply_ops_batch(&ops).unwrap();
        assert_eq!(engine.num_components(), 1);
        let before = engine.snapshot(1);
        assert_eq!(before.component_of(9), Some(0));

        let recomputes_before = engine.recomputes();
        let r = engine.apply_ops_batch(&[EdgeOp::delete(0, 6)]).unwrap();
        assert_eq!(r.path, BatchPath::SketchRepair);
        assert_eq!(r.splits, 1);
        assert_eq!(r.components_after, 2);
        assert_eq!(engine.recomputes(), recomputes_before, "no pipeline run");
        assert_eq!(engine.splits(), 1);

        // The part keeping the oldest member keeps the component id; the
        // split-off part mints its own oldest member's raw id as a fresh id.
        let after = engine.snapshot(2);
        assert_eq!(after.component_of(3), Some(0));
        assert_eq!(after.component_of(9), Some(6));
        assert_eq!(after.component_size(0), Some(6));
        assert_eq!(after.component_size(9), Some(6));
        assert_eq!(after.same_component(0, 6), Some(false));

        let truth = connected_components(&engine.current_graph());
        assert!(engine.labels().same_partition(&truth));
    }

    #[test]
    fn full_component_teardown_ends_in_singletons() {
        let mut engine = IncrementalComponents::new(params(), 61);
        // A 5-clique (below certificate_min_component = 8, so no floor
        // checks interfere) torn down edge by edge.
        let ops = clique_ops(0, 5);
        engine.apply_ops_batch(&ops).unwrap();
        assert_eq!(engine.num_components(), 1);
        let recomputes_before = engine.recomputes();
        for op in &ops {
            let r = engine
                .apply_ops_batch(&[EdgeOp::delete(op.u, op.v)])
                .unwrap();
            assert!(
                matches!(r.path, BatchPath::SketchRepair),
                "teardown stays on the sketch path, got {:?}",
                r.path
            );
        }
        assert_eq!(engine.recomputes(), recomputes_before);
        assert_eq!(engine.num_components(), 5);
        assert_eq!(engine.num_edges(), 0);
        // Total minted components: 5 singletons out of 1 original.
        assert_eq!(engine.splits(), 4);
    }

    #[test]
    fn over_deletion_is_a_hard_error_that_leaves_the_engine_untouched() {
        let mut engine = IncrementalComponents::new(params(), 63);
        let batches = expander_batches(&[40], 8, 41);
        engine.apply_batch(&batches[0]).unwrap();
        let snapshot_before = engine.snapshot(1);
        let batches_before = engine.batches_applied();
        let edges_before = engine.num_edges();

        // Never-inserted edge between seen vertices.
        let err = engine.apply_ops_batch(&[EdgeOp::delete(0, 0)]).unwrap_err();
        assert!(matches!(err, CoreError::BadParams(_)), "got {err:?}");
        // Never-seen vertex.
        assert!(engine
            .apply_ops_batch(&[EdgeOp::delete(99_999, 0)])
            .is_err());
        // Double delete within one batch: the second has no live copy left.
        let (a, b) = batches[0][0];
        assert!(engine
            .apply_ops_batch(&[
                EdgeOp::delete(a, b),
                EdgeOp::delete(a, b),
                EdgeOp::delete(a, b)
            ])
            .is_err());
        // Delete-before-insert of a brand-new edge in one batch.
        assert!(engine
            .apply_ops_batch(&[EdgeOp::delete(500, 501), EdgeOp::insert(500, 501)])
            .is_err());

        // Nothing was applied: batch counter, edges and labelling untouched.
        assert_eq!(engine.batches_applied(), batches_before);
        assert_eq!(engine.num_edges(), edges_before);
        let after = engine.snapshot(2);
        assert!(after.shares_structure(&snapshot_before));
        assert!(
            !engine.sketch_active(),
            "rejected batches must not build the sketch"
        );
    }

    #[test]
    fn delete_reinsert_cycles_keep_the_labelling_exact() {
        let mut engine = IncrementalComponents::new(params(), 67);
        let batches = expander_batches(&[50], 8, 43);
        engine.apply_batch(&batches[0]).unwrap();
        let (a, b) = batches[0][3];
        // Delete then reinsert the same edge across batches, twice.
        for _ in 0..2 {
            engine.apply_ops_batch(&[EdgeOp::delete(a, b)]).unwrap();
            engine.apply_ops_batch(&[EdgeOp::insert(a, b)]).unwrap();
        }
        // And once within a single batch.
        let r = engine
            .apply_ops_batch(&[EdgeOp::delete(a, b), EdgeOp::insert(a, b)])
            .unwrap();
        assert_eq!(r.insertions, 1);
        assert_eq!(r.deletions, 1);
        assert_eq!(engine.num_edges(), batches[0].len());
        let truth = connected_components(&engine.current_graph());
        assert!(engine.labels().same_partition(&truth));
    }

    #[test]
    fn deletion_heavy_replay_matches_ground_truth_on_the_surviving_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(71);
        let g = generators::planted_expander_components(&[30, 25], 8, &mut rng);
        let edges: Vec<(u64, u64)> = g.edge_iter().map(|(u, v)| (u as u64, v as u64)).collect();
        let mut engine = IncrementalComponents::new(params(), 73);
        engine.apply_batch(&edges).unwrap();
        // Delete a third of the edges (every third one), batched.
        let doomed: Vec<EdgeOp> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 == 0)
            .map(|(_, &(u, v))| EdgeOp::delete(u, v))
            .collect();
        for chunk in doomed.chunks(11) {
            engine.apply_ops_batch(chunk).unwrap();
        }
        assert_eq!(engine.num_edges(), edges.len() - doomed.len());
        let truth = connected_components(&engine.current_graph());
        assert!(engine.labels().same_partition(&truth));
    }

    #[test]
    fn stats_accumulate_across_batches_and_context_upgrades() {
        let mut engine = IncrementalComponents::new(params(), 41);
        let batches = expander_batches(&[30, 40], 8, 19);
        engine.apply_batch(&batches[0]).unwrap();
        let after_first = engine.stats();
        assert!(after_first.total_rounds() > 2, "bootstrap ran the pipeline");

        engine.apply_batch(&batches[1]).unwrap();
        let bridge = vec![(0u64, 30u64)];
        engine.apply_batch(&bridge).unwrap();
        let after_all = engine.stats();
        assert!(after_all.total_rounds() > after_first.total_rounds());
        assert!(
            after_all
                .phases()
                .iter()
                .filter(|p| p.name == "stream-ingest")
                .count()
                >= 3
        );
        // Both recomputes left pipeline phases in the record.
        assert!(after_all.rounds_in_phase("regularize") > 0);
    }
}
