//! The mildly-sublinear-space algorithm `SublinearConn` (Section 8,
//! Theorem 2).
//!
//! For *arbitrary* sparse graphs (no spectral-gap promise), Theorem 2 shows
//! that `O(log log n + log(n/s))` rounds suffice on machines of memory `s`:
//!
//! 1. run a random walk of length `t = Θ(d³ log n)` from every vertex, where
//!    `d = n · polylog(n) / s`; by the Barnes–Feige bound the walk either
//!    covers its whole component or visits at least `d` distinct vertices;
//! 2. connect every vertex to all distinct vertices its walk visited (graph
//!    `G̃`, minimum degree `≥ d` or a whole small component);
//! 3. one `LeaderElection(G̃, d)` pass with leader probability
//!    `Θ(log n / d)` contracts the graph to `O(n log n / d) = O(s /
//!    polylog n)` super-vertices;
//! 4. the contracted graph now fits the Ahn–Guha–McGregor sketching bound:
//!    every super-vertex compresses its incident edges into a `polylog`-bit
//!    message ([`wcc_sketch::ConnectivitySketch`]) and a single coordinator
//!    machine finishes the job (Proposition 8.1).

use crate::leader::{contraction_graph, leader_election};
use crate::regularize::CoreError;
use crate::walks::{direct_walk_visits_into, v3_walk_visits_into, WalkKernel, WalkVisitScratch};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use wcc_graph::{ComponentLabels, Graph, GraphBuilder, Partition};
use wcc_mpc::{record_walk_telemetry, MpcConfig, MpcContext, RoundStats, WalkTelemetry};

/// Tunable constants of [`sublinear_components`]. The paper's choices are
/// `d = n log⁴ n / s` and `t = 100 d³ log n`; the laptop preset keeps the
/// same shape with gentler exponents so the walk simulation stays affordable
/// (the Barnes–Feige exponent only matters for worst-case inputs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SublinearParams {
    /// Multiplier `c` in `d = c · n · ln n / s`.
    pub degree_multiplier: f64,
    /// Walk length as a function of `d`: `t = walk_multiplier · d^walk_exponent · ln n`.
    pub walk_multiplier: f64,
    /// Exponent of `d` in the walk length (paper: 3; laptop default 2).
    pub walk_exponent: f64,
    /// Hard cap on the walk length.
    pub max_walk_length: usize,
    /// Leader probability multiplier: `p = leader_multiplier · ln n / d`.
    pub leader_multiplier: f64,
    /// Number of Borůvka phases the AGM sketch is built with.
    pub sketch_phases: usize,
    /// Worker threads of the execution backend (`1` = sequential, `0` =
    /// resolve from `WCC_THREADS`); results are identical for every value.
    pub threads: usize,
    /// Which walk kernel draws the densification walks (the Section-8 path
    /// shares the pipeline's kernel, per DESIGN.md §10): v3 uses one 32-bit
    /// keystream word per step, spec the two-word 64-bit draw. Overridable
    /// at run time via `WCC_WALK_KERNEL`.
    pub walk_kernel: WalkKernel,
}

impl SublinearParams {
    /// The paper's constants (Section 8).
    pub fn paper() -> Self {
        SublinearParams {
            degree_multiplier: 1.0,
            walk_multiplier: 100.0,
            walk_exponent: 3.0,
            max_walk_length: usize::MAX,
            leader_multiplier: 1.0,
            sketch_phases: 40,
            threads: 0,
            walk_kernel: WalkKernel::V3,
        }
    }

    /// Laptop-scale constants (documented substitution: the `d³` exponent is
    /// reduced to `d²`, which empirically still covers `d` distinct vertices
    /// on the graph families used in the experiments).
    pub fn laptop_scale() -> Self {
        SublinearParams {
            degree_multiplier: 0.5,
            walk_multiplier: 2.0,
            walk_exponent: 2.0,
            max_walk_length: 1 << 16,
            leader_multiplier: 1.0,
            sketch_phases: 24,
            threads: 0,
            walk_kernel: WalkKernel::V3,
        }
    }

    /// Returns a copy using the given number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

impl Default for SublinearParams {
    fn default() -> Self {
        SublinearParams::laptop_scale()
    }
}

/// Detailed measurements of one [`sublinear_components`] run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SublinearReport {
    /// The densification target degree `d`.
    pub target_degree: usize,
    /// The walk length `t` used.
    pub walk_length: usize,
    /// Number of super-vertices after the leader-election contraction.
    pub contracted_vertices: usize,
    /// Size (in words) of the largest per-super-vertex sketch message.
    pub max_message_words: usize,
    /// Memory budget `s` of the simulated machines.
    pub memory_per_machine: usize,
}

/// The result of a [`sublinear_components`] run.
#[derive(Debug, Clone)]
pub struct SublinearResult {
    /// Connected-component labels of the input graph.
    pub components: ComponentLabels,
    /// MPC resource usage.
    pub stats: RoundStats,
    /// Per-stage measurements.
    pub report: SublinearReport,
}

/// `SublinearConn(G)` — Theorem 2: connectivity of an arbitrary graph on
/// machines with `s` words of memory in `O(log log n + log(n/s))` rounds.
///
/// # Errors
///
/// Returns [`CoreError::BadParams`] if `memory_per_machine < 4` or the graph
/// is empty of vertices.
pub fn sublinear_components(
    g: &Graph,
    memory_per_machine: usize,
    params: &SublinearParams,
    seed: u64,
) -> Result<SublinearResult, CoreError> {
    let n = g.num_vertices();
    if n == 0 {
        return Err(CoreError::BadParams("graph has no vertices".to_string()));
    }
    if memory_per_machine < 4 {
        return Err(CoreError::BadParams(format!(
            "memory per machine must be at least 4 words, got {memory_per_machine}"
        )));
    }
    let input_words = (2 * g.num_edges() + n).max(16);
    let config = MpcConfig::with_memory(input_words, memory_per_machine)
        .permissive()
        .with_threads(params.threads);
    let mut ctx = MpcContext::new(config);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ln_n = (n.max(2) as f64).ln();

    // Step 1: walk length and target degree.
    let d = ((params.degree_multiplier * n as f64 * ln_n / memory_per_machine as f64).ceil()
        as usize)
        .clamp(2, n);
    let t = ((params.walk_multiplier * (d as f64).powf(params.walk_exponent) * ln_n).ceil()
        as usize)
        .clamp(1, params.max_walk_length);

    ctx.begin_phase("sublinear-walks");
    // SimpleRandomWalk costs O(log t) rounds (Theorem 3 machinery without the
    // independence requirement — Section 8 explicitly notes independence is
    // not needed here).
    let log_t = (usize::BITS - t.next_power_of_two().leading_zeros()) as u64;
    ctx.charge(1 + 2 * log_t, (n as u64) * (t.min(1 << 20) as u64));
    // Per-vertex fan-out on the execution backend: every vertex walks on its
    // own ChaCha8 stream derived from one master draw, so the densified
    // graph is identical for every backend and thread count. Each worker
    // emits its range's densification edges straight into one flat pair
    // list, reusing one epoch-stamped visit scratch and one visit buffer
    // across all of its walks (no per-vertex hash set or visit vector
    // survives the fan-out).
    let walk_base = rng.gen::<u64>();
    let kernel = params.walk_kernel.resolve();
    let pairs: Vec<(usize, usize)> = ctx.executor().flat_map_ranges(n, |range| {
        let mut out = Vec::new();
        let mut scratch = WalkVisitScratch::new();
        let mut visits = Vec::new();
        let mut tally = WalkTelemetry::default();
        for v in range {
            let mut vrng =
                ChaCha8Rng::seed_from_u64(wcc_mpc::derive_stream_seed(walk_base, v as u64));
            match kernel {
                WalkKernel::V3 => {
                    v3_walk_visits_into(g, v, t, &mut vrng, &mut scratch, &mut visits, &mut tally);
                }
                WalkKernel::Spec => {
                    direct_walk_visits_into(g, v, t, &mut vrng, &mut scratch, &mut visits);
                    // Nominal accounting: the 64-bit draw is two keystream
                    // words per step, every step a real move.
                    tally.steps += t as u64;
                    tally.moves += t as u64;
                    tally.keystream_words += 2 * t as u64;
                }
            }
            out.extend(visits.iter().copied().filter(|&u| u != v).map(|u| (v, u)));
        }
        record_walk_telemetry(&tally);
        out
    });
    let mut builder = GraphBuilder::with_capacity(n, pairs.len());
    builder.add_edges(pairs).expect("walk stays in range");
    let densified = builder.build();
    ctx.end_phase();

    // Step 2: one leader-election pass at probability Θ(log n / d).
    ctx.begin_phase("sublinear-leader-election");
    let leader_prob = (params.leader_multiplier * ln_n / d as f64).min(1.0);
    let outcome = leader_election(&densified, leader_prob, &mut ctx, &mut rng);
    let partition = Partition::from_raw_labels(&outcome.group_of);
    ctx.end_phase();

    // Step 3: contract and sketch. Each super-vertex's incident (contracted)
    // edges become updates to its AGM sketch; the coordinator recovers the
    // components of the contracted graph from the messages alone
    // (Proposition 8.1).
    ctx.begin_phase("sublinear-sketch");
    let contracted = contraction_graph(g, &partition, &mut ctx);
    let k = contracted.num_vertices();
    // Borůvka needs ~log₂ k successful merge phases and each phase succeeds
    // with constant probability per component, so scale the number of
    // independent samplers with log k (still polylog-size messages).
    let phases = params
        .sketch_phases
        .max(2 * (usize::BITS - k.max(2).leading_zeros()) as usize + 16);
    // Each super-vertex builds its own message independently (the sketch is
    // linear), so the construction fans out per vertex on the backend.
    let sketch_seed = seed ^ 0xABCD;
    let messages = ctx.executor().map_indexed(k, |v| {
        wcc_sketch::ConnectivitySketch::vertex_sketch_for(
            k,
            phases,
            sketch_seed,
            v,
            contracted.neighbors(v),
        )
    });
    let sketch = wcc_sketch::ConnectivitySketch::from_vertex_sketches(k, phases, messages);
    let max_message_words = (0..k)
        .map(|v| sketch.vertex_sketch(v).size_in_words())
        .max()
        .unwrap_or(0);
    // One round: every super-vertex ships its polylog-size message to the
    // coordinator machine.
    ctx.charge_shuffle(sketch.total_size_in_words());
    let _ = ctx.record_machine_load(0, sketch.total_size_in_words());
    let mut contracted_labels = sketch.components();
    // Verification pass (one extra round): the sketch output is always a
    // refinement of the truth; if a contracted edge still crosses two labels
    // (probability o(1), but we want a deterministic library), merge the
    // leftovers directly.
    let patched = contracted
        .edge_iter()
        .any(|(a, b)| contracted_labels.label(a) != contracted_labels.label(b));
    if patched {
        ctx.charge_shuffle(2 * contracted.num_edges());
        contracted_labels = wcc_graph::components::connected_components_union_find(&contracted);
    }
    ctx.end_phase();

    // Pull the contracted labels back through the partition.
    let raw: Vec<usize> = (0..n)
        .map(|v| contracted_labels.label(partition.part_of(v)))
        .collect();
    let components = ComponentLabels::from_raw_labels(&raw);

    let report = SublinearReport {
        target_degree: d,
        walk_length: t,
        contracted_vertices: k,
        max_message_words,
        memory_per_machine,
    };
    Ok(SublinearResult {
        components,
        stats: ctx.into_stats(),
        report,
    })
}

/// Convenience wrapper matching the Theorem 2 statement: memory
/// `s = n / polylog(n)`; here `s = n / (ln n)²`, the "mildly sublinear"
/// regime.
///
/// # Errors
///
/// See [`sublinear_components`].
pub fn mildly_sublinear_components(g: &Graph, seed: u64) -> Result<SublinearResult, CoreError> {
    let n = g.num_vertices().max(2);
    let ln_n = (n as f64).ln();
    let s = ((n as f64 / (ln_n * ln_n)).ceil() as usize).max(8);
    sublinear_components(g, s, &SublinearParams::default(), seed)
}

/// Internal helper shared with the experiments: expected number of distinct
/// vertices a walk must reach for the contraction to fit in memory; exposed
/// for test assertions.
pub fn densification_degree(
    n: usize,
    memory_per_machine: usize,
    params: &SublinearParams,
) -> usize {
    let ln_n = (n.max(2) as f64).ln();
    ((params.degree_multiplier * n as f64 * ln_n / memory_per_machine as f64).ceil() as usize)
        .clamp(2, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wcc_graph::prelude::*;

    fn check(g: &Graph, s: usize, seed: u64) -> SublinearResult {
        let truth = connected_components(g);
        let result = sublinear_components(g, s, &SublinearParams::default(), seed).unwrap();
        assert!(
            result.components.same_partition(&truth),
            "sublinear result disagrees with ground truth ({} vs {} components)",
            result.components.num_components(),
            truth.num_components()
        );
        result
    }

    #[test]
    fn works_on_random_graphs_and_cycles() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::random_out_degree_graph(300, 8, &mut rng);
        check(&g, 64, 2);
        let c = generators::cycle(200);
        check(&c, 64, 3);
    }

    #[test]
    fn works_on_disconnected_inputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::planted_expander_components(&[60, 90, 40], 8, &mut rng);
        let result = check(&g, 48, 5);
        assert_eq!(result.components.num_components(), 3);
    }

    #[test]
    fn works_with_no_gap_structure_at_all() {
        // Trees and paths have terrible expansion; Theorem 2 must not care.
        let g = generators::binary_tree(255);
        check(&g, 32, 6);
        let p = generators::path(180);
        check(&p, 32, 7);
    }

    #[test]
    fn contraction_fits_well_below_input_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let g = generators::random_out_degree_graph(600, 10, &mut rng);
        let result = check(&g, 64, 9);
        assert!(
            result.report.contracted_vertices * 4 < g.num_vertices(),
            "contraction only reached {} super-vertices",
            result.report.contracted_vertices
        );
        assert!(result.report.target_degree >= 2);
    }

    #[test]
    fn larger_memory_means_fewer_rounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let g = generators::random_out_degree_graph(500, 10, &mut rng);
        let small = sublinear_components(&g, 16, &SublinearParams::default(), 11).unwrap();
        let large = sublinear_components(&g, 2048, &SublinearParams::default(), 11).unwrap();
        assert!(
            large.stats.total_rounds() <= small.stats.total_rounds(),
            "more memory should never cost more rounds ({} vs {})",
            large.stats.total_rounds(),
            small.stats.total_rounds()
        );
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let g = Graph::empty(0);
        assert!(matches!(
            sublinear_components(&g, 64, &SublinearParams::default(), 0),
            Err(CoreError::BadParams(_))
        ));
        let g2 = generators::cycle(10);
        assert!(matches!(
            sublinear_components(&g2, 2, &SublinearParams::default(), 0),
            Err(CoreError::BadParams(_))
        ));
    }

    #[test]
    fn mildly_sublinear_wrapper_matches_truth() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let g = generators::erdos_renyi(250, 0.015, &mut rng);
        let truth = connected_components(&g);
        let result = mildly_sublinear_components(&g, 13).unwrap();
        assert!(result.components.same_partition(&truth));
    }

    #[test]
    fn densification_degree_scales_inversely_with_memory() {
        let p = SublinearParams::default();
        assert!(densification_degree(10_000, 100, &p) > densification_degree(10_000, 10_000, &p));
        assert!(densification_degree(10_000, 1, &p) <= 10_000);
    }
}
