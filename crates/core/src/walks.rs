//! Step 2 — Randomization via independent random walks
//! (Section 5, Theorem 3 and Lemma 5.1).
//!
//! The pipeline needs, for every vertex of the (now regular) graph,
//! `Θ(log n)` *independent* endpoints of lazy random walks whose length `T`
//! exceeds the mixing time of the vertex's component. Connecting every vertex
//! to its endpoints turns each component into (something `n^{-8}`-close in
//! total variation to) the random graph `G(n_i, Θ(log n))`, which Step 3
//! knows how to solve in `O(log log n)` rounds.
//!
//! Two implementations are provided:
//!
//! * [`layered_walk_bundle`] — the **faithful** data structure of Theorem 3:
//!   the sampled layered graph `G_S` (one sampled out-edge per layered
//!   vertex), endpoint computation by pointer doubling in `log t` steps, and
//!   the `Mark`/`DetectIndependence` pass that certifies which walks are
//!   vertex-disjoint (and therefore mutually independent, Observation 5.2).
//!   Memory is `Θ(n · t · copies)`, so it is meant for analysis-scale runs
//!   and for experiment E4.
//! * [`direct_walk_targets`] — the **direct** simulation: each walk is
//!   simulated step by step with its own randomness, which produces *exactly*
//!   the product distribution `⊗_v D_RW(v, t)` that Theorem 3 guarantees.
//!   The pipeline uses this mode at scale and charges the `O(log t)` rounds
//!   of the theorem (the substitution is documented in DESIGN.md).
//!
//! Both implementations are generic over [`AdjacencyView`], and the
//! Section 5.2 lazification is specified against a virtual
//! [`LazyView`](wcc_graph::LazyView) — the `Δ` added self-loops are simulated
//! arithmetically (neighbour indices `>= deg(v)` mean "stay"). The view
//! reproduces the materialised CSR index-for-index, so walk endpoints are
//! bit-identical either way.
//!
//! At scale the direct path runs one of two batched kernels, selected by
//! [`WalkKernel`]:
//!
//! * [`WalkKernel::Spec`] — the executable spec: a materialised `n × 2Δ`
//!   lazy-adjacency table turns every lazy step into one unconditional load,
//!   paid for with two keystream words per step in lockstep lanes
//!   (DESIGN.md §5, "The walk engine").
//! * [`WalkKernel::V3`] (default) — stay-run compression + 32-bit draws: the
//!   lazy stay/move choice is an exact fair coin (span `2Δ`, `Δ` of which are
//!   self entries), so one pattern word yields 32 stay/move coins and runs of
//!   stays collapse to a `trailing_zeros`; only real moves pay a one-word
//!   32-bit Lemire neighbour draw and a random CSR load (DESIGN.md §10).
//!
//! The two kernels consume per-vertex keystreams differently, so fixed-seed
//! outputs differ *between kernels* while each kernel stays bit-identical
//! across backends and thread counts; `tests/walk_kernel_equivalence.rs`
//! pins the distributions against each other.

use crate::regularize::CoreError;

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::{ChaCha8Batch, ChaCha8Rng};
use serde::{Deserialize, Serialize};
use wcc_graph::{AdjacencyView, Graph, GraphBuilder};
use wcc_mpc::{derive_stream_seed, record_walk_telemetry, MpcContext, WalkTelemetry};

/// Which implementation of the Theorem-3 walk primitive to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkMode {
    /// Direct per-walk simulation (exact same output distribution, cheap).
    Direct,
    /// The layered-graph data structure with independence detection.
    Faithful,
}

/// Which generation of the batched lazy-walk kernel simulates the Direct
/// fan-out.
///
/// Both kernels draw every step from the same per-vertex ChaCha8 streams and
/// realise exactly the same lazy-step distribution, but they *consume* the
/// keystream differently, so fixed-seed outputs legitimately differ between
/// kernels — determinism is defined per seed per kernel version (DESIGN.md
/// §3 and §10). Within one kernel, labels and stats remain bit-identical
/// across backends and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalkKernel {
    /// Third-generation kernel (the default): stay-run compression from
    /// pattern words plus one 32-bit Lemire draw per real move.
    V3,
    /// The step-by-step executable spec: two keystream words and one
    /// materialised lazy-table load for every step, lockstep lanes.
    Spec,
}

impl WalkKernel {
    /// Environment override consulted by [`WalkKernel::resolve`]: set to
    /// `v3` or `spec` to force a kernel regardless of the configured params
    /// (handy for A/B timing without a recompile).
    pub const ENV_VAR: &'static str = "WCC_WALK_KERNEL";

    /// The kernel to actually run: the [`Self::ENV_VAR`] value wins when it
    /// is set and recognisable, otherwise `self`.
    pub fn resolve(self) -> WalkKernel {
        self.resolve_from(std::env::var(Self::ENV_VAR).ok().as_deref())
    }

    /// [`Self::resolve`] with the environment read factored out (testable
    /// without mutating process-global state).
    fn resolve_from(self, var: Option<&str>) -> WalkKernel {
        match var {
            Some(value) => match value.to_ascii_lowercase().as_str() {
                "v3" => WalkKernel::V3,
                "spec" => WalkKernel::Spec,
                _ => self,
            },
            None => self,
        }
    }
}

/// The outcome of one run of the layered-graph walk data structure: one
/// length-`t` walk endpoint per vertex, plus a flag saying whether the walk
/// was certified independent of all other walks in this bundle.
#[derive(Debug, Clone)]
pub struct WalkBundle {
    /// `targets[v]` is the endpoint of the walk that started at `v`.
    pub targets: Vec<usize>,
    /// `independent[v]` is `true` if `v`'s path in the sampled layered graph
    /// was vertex-disjoint from every other start's path (Lemma 5.3 certifies
    /// this happens with probability at least 1/2 per start).
    pub independent: Vec<bool>,
}

/// Rounds charged for one execution of the Theorem-3 data structure on walks
/// of length `t`: sampling `G_S` (1), pointer doubling (`⌈log₂ t⌉`), and the
/// Mark/DetectIndependence pass (`⌈log₂ t⌉` more), each a constant number of
/// sort/search batches.
fn walk_rounds(t: usize) -> u64 {
    let log_t = (usize::BITS - t.max(2).next_power_of_two().leading_zeros()) as u64;
    1 + 2 * log_t
}

/// Runs the faithful layered-graph construction (Theorem 3) once.
///
/// `copies_multiplier` controls the number of copies per layer (`multiplier ×
/// t`, the paper uses `2t`). Larger values reduce collisions and raise the
/// fraction of certified-independent walks.
///
/// # Panics
///
/// Panics if the graph has an isolated vertex (the paper assumes minimum
/// degree 1 throughout) or if `t == 0`.
pub fn layered_walk_bundle<V: AdjacencyView, R: Rng + ?Sized>(
    g: &V,
    t: usize,
    copies_multiplier: usize,
    rng: &mut R,
) -> WalkBundle {
    assert!(t >= 1, "walk length must be positive");
    let n = g.num_vertices();
    assert!(
        (0..n).all(|v| g.degree(v) > 0),
        "layered walks require minimum degree 1 (no isolated vertices)"
    );
    let t = t.next_power_of_two();
    let copies = (copies_multiplier.max(1) * t).max(2);
    let layer_size = n * copies;
    let num_vertices = layer_size * (t + 1);
    const NONE: u32 = u32::MAX;
    assert!(
        num_vertices < NONE as usize,
        "layered graph too large for u32 indexing"
    );

    let index = |v: usize, c: usize, j: usize| -> usize { j * layer_size + c * n + v };

    // Sample the sampled layered graph G_S: one outgoing edge per vertex of
    // layers 0..t (Definition 1 + "Sampled layered graph").
    let mut next: Vec<u32> = vec![NONE; num_vertices];
    for j in 0..t {
        for c in 0..copies {
            for v in 0..n {
                let deg = g.degree(v);
                let nbr = g
                    .nth_neighbor(v, rng.gen_range(0..deg))
                    .expect("degree > 0");
                let target_copy = rng.gen_range(0..copies);
                next[index(v, c, j)] = index(nbr, target_copy, j + 1) as u32;
            }
        }
    }

    // Mark: follow each start's path step by step, counting visits per
    // layered vertex (this is the information the recursive Mark procedure
    // materialises).
    let mut visits: Vec<u8> = vec![0; num_vertices];
    for v in 0..n {
        let mut cur = index(v, 0, 0);
        visits[cur] = visits[cur].saturating_add(1);
        for _ in 0..t {
            cur = next[cur] as usize;
            visits[cur] = visits[cur].saturating_add(1);
        }
    }

    // DetectIndependence: a start is independent iff every vertex on its path
    // was visited exactly once.
    let mut independent = vec![true; n];
    for (v, flag) in independent.iter_mut().enumerate() {
        let mut cur = index(v, 0, 0);
        let mut ok = visits[cur] == 1;
        for _ in 0..t {
            cur = next[cur] as usize;
            if visits[cur] != 1 {
                ok = false;
            }
        }
        *flag = ok;
    }

    // Endpoint computation by pointer doubling (`N_k(α) = N_{k-1}(N_{k-1}(α))`).
    // Two ping-pong buffers serve all `log t` passes; every entry is written
    // each pass (the scratch holds the *previous* pass's table after the
    // swap, so stale entries must be overwritten, not skipped).
    let log_t = t.trailing_zeros();
    let mut jump = next;
    let mut squared = vec![NONE; num_vertices];
    for _ in 0..log_t {
        for (alpha, &beta) in jump.iter().enumerate() {
            squared[alpha] = if beta != NONE {
                jump[beta as usize]
            } else {
                NONE
            };
        }
        core::mem::swap(&mut jump, &mut squared);
    }
    let targets: Vec<usize> = (0..n)
        .map(|v| {
            // After `log_t` doubling passes, `jump` maps each start directly
            // to its step-`t` successor (for `t = 1`, `jump` is `next`).
            let end = jump[index(v, 0, 0)];
            (end as usize) % n
        })
        .collect();

    WalkBundle {
        targets,
        independent,
    }
}

/// Directly simulates one walk of length `t` from every vertex, each with its
/// own randomness (so the endpoints are mutually independent by
/// construction). On a regular graph this is exactly the distribution
/// Theorem 3 produces.
pub fn direct_walk_targets<V: AdjacencyView, R: Rng + ?Sized>(
    g: &V,
    t: usize,
    rng: &mut R,
) -> Vec<usize> {
    (0..g.num_vertices())
        .map(|v| direct_walk_endpoint(g, v, t, rng))
        .collect()
}

/// Endpoint of a single uniform-neighbour walk of length `t` from `start`
/// (self-loops — real or [`LazyView`](wcc_graph::LazyView)-virtual — make it
/// lazy). Isolated vertices stay put.
pub fn direct_walk_endpoint<V: AdjacencyView, R: Rng + ?Sized>(
    g: &V,
    start: usize,
    t: usize,
    rng: &mut R,
) -> usize {
    let mut cur = start;
    for _ in 0..t {
        let deg = g.degree(cur);
        if deg == 0 {
            break;
        }
        cur = g
            .nth_neighbor(cur, rng.gen_range(0..deg))
            .expect("degree > 0");
    }
    cur
}

/// Reusable first-visit bookkeeping for [`direct_walk_visits_into`]: an
/// epoch-stamped vertex table, so a worker simulating many walks pays one
/// `n`-word allocation total instead of one hash set per walk.
#[derive(Debug, Clone, Default)]
pub struct WalkVisitScratch {
    stamp: Vec<u64>,
    epoch: u64,
}

impl WalkVisitScratch {
    /// A fresh scratch; sized lazily on first use.
    pub fn new() -> Self {
        WalkVisitScratch::default()
    }

    /// Starts a new walk over a graph with `n` vertices; returns the epoch
    /// tag marking this walk's visits.
    fn begin(&mut self, n: usize) -> u64 {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch += 1;
        self.epoch
    }
}

/// The distinct vertices visited by a single walk of length `t` from `start`,
/// in first-visit order (used by the mildly-sublinear algorithm, Section 8).
pub fn direct_walk_visits<V: AdjacencyView, R: Rng + ?Sized>(
    g: &V,
    start: usize,
    t: usize,
    rng: &mut R,
) -> Vec<usize> {
    let mut scratch = WalkVisitScratch::new();
    let mut order = Vec::new();
    direct_walk_visits_into(g, start, t, rng, &mut scratch, &mut order);
    order
}

/// Allocation-lean variant of [`direct_walk_visits`]: appends the distinct
/// visited vertices (in first-visit order) to `out`, which is cleared first,
/// using `scratch` for the seen-set. The RNG draws are identical to
/// [`direct_walk_visits`] — the scratch only changes how first visits are
/// detected, never which steps are taken.
pub fn direct_walk_visits_into<V: AdjacencyView, R: Rng + ?Sized>(
    g: &V,
    start: usize,
    t: usize,
    rng: &mut R,
    scratch: &mut WalkVisitScratch,
    out: &mut Vec<usize>,
) {
    out.clear();
    let epoch = scratch.begin(g.num_vertices());
    let mut cur = start;
    scratch.stamp[cur] = epoch;
    out.push(cur);
    for _ in 0..t {
        let deg = g.degree(cur);
        if deg == 0 {
            break;
        }
        cur = g
            .nth_neighbor(cur, rng.gen_range(0..deg))
            .expect("degree > 0");
        if scratch.stamp[cur] != epoch {
            scratch.stamp[cur] = epoch;
            out.push(cur);
        }
    }
}

/// v3 counterpart of [`direct_walk_visits_into`]: same visit semantics, but
/// each step's neighbour index is one 32-bit Lemire draw instead of the
/// two-word 64-bit `gen_range` — the kernel-sharing the densification path
/// (Section 8) gets from the v3 rewrite. There is no stay-run lever here:
/// the sublinear walk runs on the *raw* graph, where every step is a real
/// move (and on a lazy view, stays would add no new visits anyway — the
/// compression-legality argument of DESIGN.md §10). Consumption differs
/// from the 64-bit path, so fixed-seed sublinear outputs shift with the
/// kernel, exactly like the pipeline's.
pub fn v3_walk_visits_into<V: AdjacencyView, R: RngCore + ?Sized>(
    g: &V,
    start: usize,
    t: usize,
    rng: &mut R,
    scratch: &mut WalkVisitScratch,
    out: &mut Vec<usize>,
    tally: &mut WalkTelemetry,
) {
    out.clear();
    let epoch = scratch.begin(g.num_vertices());
    let mut cur = start;
    scratch.stamp[cur] = epoch;
    out.push(cur);
    let mut src = RngWords {
        rng,
        words: &mut tally.keystream_words,
    };
    for _ in 0..t {
        let deg = g.degree(cur);
        if deg == 0 {
            break;
        }
        let j = lemire_u32(&mut src, deg as u32) as usize;
        cur = g.nth_neighbor(cur, j).expect("degree > 0");
        tally.steps += 1;
        tally.moves += 1;
        if scratch.stamp[cur] != epoch {
            scratch.stamp[cur] = epoch;
            out.push(cur);
        }
    }
}

/// Lane count of the batched lazy-walk kernel: fills one 512-bit register
/// of `u32` lanes and keeps enough independent adjacency loads in flight to
/// hide their latency (32 lanes measurably regress on register spills).
const WALK_LANES: usize = 16;

/// Simulates the `k` lazy walks of [`WALK_LANES`] vertices in lockstep on a
/// regular graph given its **materialised lazy adjacency** (`span = 2Δ`
/// entries per vertex: the `Δ` real neighbours in `neighbors` order followed
/// by `Δ` copies of the vertex itself), writing endpoints vertex-major into
/// `out` (`out[l * k + i]` = endpoint `i` of lane `l`). Returns `false`
/// (with `out` unspecified) in the astronomically-rare case a lane *may*
/// have hit the Lemire rejection loop, in which case the caller must rerun
/// the group on the step-by-step spec path.
///
/// Bit-identical to running [`direct_walk_endpoint`] over the
/// [`LazyView`](wcc_graph::LazyView) on each vertex's own `ChaCha8Rng`
/// stream whenever it returns `true`: the vendored Lemire `gen_range` over
/// the lazy span `2Δ` computes `m = x · 2Δ` for one `u64` `x` — two
/// keystream words — takes the draw from `m >> 64`, and only consults a
/// second `u64` when `m mod 2^64 < 2Δ` (probability `< 2Δ / 2^64` per
/// step). Outside that case every lane advances exactly two words per step
/// in lockstep, which is what lets the keystreams be generated in one
/// batched refill per 8 steps ([`ChaCha8Batch`]).
#[must_use]
fn lazy_walk_lane_group(
    lazy_adjacency: &[u32],
    span: usize,
    t: usize,
    k: usize,
    vertices: [u32; WALK_LANES],
    seeds: &[u64; WALK_LANES],
    out: &mut [usize],
) -> bool {
    debug_assert!(span > 0);
    debug_assert_eq!(out.len(), WALK_LANES * k);
    let mut batch = ChaCha8Batch::<WALK_LANES>::seed_from_u64s(seeds);
    let mut block = [[0u32; WALK_LANES]; 16];
    let mut pos = 16usize;
    let mut near_reject = 0u64;
    for walk in 0..k {
        let mut cur = vertices;
        for _ in 0..t {
            if pos >= 16 {
                batch.refill(&mut block);
                pos = 0;
            }
            let (lo, hi) = (&block[pos], &block[pos + 1]);
            for l in 0..WALK_LANES {
                let x = (hi[l] as u64) << 32 | lo[l] as u64;
                let m = x as u128 * span as u128;
                near_reject |= ((m as u64) < span as u64) as u64;
                // The materialised lazy row makes the lazy/real choice an
                // unconditional load: index `>= Δ` lands on a self entry.
                // A conditional here would be a fair coin — mispredicted
                // every other step.
                cur[l] = lazy_adjacency[cur[l] as usize * span + (m >> 64) as usize];
            }
            pos += 2;
        }
        for (l, &c) in cur.iter().enumerate() {
            out[l * k + walk] = c as usize;
        }
    }
    near_reject == 0
}

/// One keystream word per call, in exactly the order the owning per-vertex
/// ChaCha8 stream produces them. The scalar v3 walk ([`v3_walk_run`]) is
/// written against this trait; the batched kernel ([`v3_walk_lane_group`])
/// reads the same words straight out of lockstep [`ChaCha8Batch`] blocks at
/// the closed-form positions the fixed window allotment guarantees — so the
/// scalar tail path and the batched path agree word for word (the vendored
/// lane≡single-stream property supplies the stream equality, the lane-group
/// tests pin the order).
trait WordSource {
    fn next_word(&mut self) -> u32;
}

/// Scalar word source over any [`RngCore`] (`next_u32` is one keystream word
/// for `ChaCha8Rng`), with a running word count for telemetry.
struct RngWords<'a, R: RngCore + ?Sized> {
    rng: &'a mut R,
    words: &'a mut u64,
}

impl<R: RngCore + ?Sized> WordSource for RngWords<'_, R> {
    #[inline(always)]
    fn next_word(&mut self) -> u32 {
        *self.words += 1;
        self.rng.next_u32()
    }
}

/// One 32-bit Lemire draw from `[0, span)` with exact in-line rejection —
/// the 32-bit twin of the vendored `sample_half_open` (vendor/rand). Every
/// degree this kernel draws over fits `u32` (vertex ids are `u32`), so one
/// keystream word per draw replaces the spec kernel's two; the rejection
/// probability per draw is `< span / 2^32`, resolved by redrawing from the
/// same stream rather than bailing to a fallback path.
#[inline(always)]
fn lemire_u32<W: WordSource>(words: &mut W, span: u32) -> u32 {
    debug_assert!(span > 0);
    loop {
        let x = words.next_word();
        let m = (x as u64) * (span as u64);
        let lo = m as u32;
        // `threshold = (2^32 - span) mod span` is `< span`, so `lo >= span`
        // accepts without paying the modulo.
        if lo >= span || lo >= span.wrapping_neg() % span {
            return (m >> 32) as u32;
        }
    }
}

/// Endpoint of one length-`t` v3 lazy walk from `start` on the Δ-regular
/// graph with flat CSR `adjacency` (row `v` at offset `v·Δ`, `neighbors`
/// order), drawing words from `words`. The scalar form the batched kernel
/// must match lane-for-lane; also the tail path of the fan-out.
///
/// The v3 stream discipline is **windowed with a fixed allotment**: each
/// 32-step window of a walk owns exactly `1 + runnable` consecutive stream
/// words (`runnable = min(32, steps left)`) — one pattern word whose bits
/// are the window's stay/move coins (`1` = real move, LSB first; on the
/// lazy span `2Δ`, `Δ` entries are self copies, so the stay/move marginal
/// is *exactly* a fair coin and the pattern bits are a lossless encoding
/// of the window's lazification), then one draw word per move bit in bit
/// order, rejection redraws continuing in sequence, and the unused rest of
/// the allotment skipped. The fixed allotment makes every lane's stream
/// position a closed form of (walk index, window index) — that is what
/// lets the batched kernel read draws straight out of lockstep keystream
/// blocks with no per-lane buffering. The one data-dependent escape — a
/// redraw cascade pushing past the allotment, probability `< Δ/2³²` per
/// draw — simply runs on unpadded here; the batched kernel detects it and
/// delegates the group to this path.
fn v3_walk_run<W: WordSource>(
    adjacency: &[u32],
    delta: usize,
    start: u32,
    t: usize,
    words: &mut W,
    moves: &mut u64,
) -> u32 {
    let span = delta as u32;
    // Lemire acceptance is `lo >= (2^32 - span) mod span` (see
    // [`lemire_u32`]), hoisted: identically zero for power-of-two Δ.
    let reject_below = span.wrapping_neg() % span;
    let mut cur = start;
    let mut remaining = t as u32;
    while remaining > 0 {
        let runnable = remaining.min(32);
        let usable = if runnable == 32 {
            !0u32
        } else {
            (1u32 << runnable) - 1
        };
        let mut bits = words.next_word() & usable;
        let mut used = 0u32;
        while bits != 0 {
            bits &= bits - 1;
            loop {
                let x = words.next_word();
                used += 1;
                let m = x as u64 * span as u64;
                if (m as u32) >= reject_below {
                    cur = adjacency[cur as usize * delta + (m >> 32) as usize];
                    *moves += 1;
                    break;
                }
            }
        }
        // Pad to the window's fixed allotment (no-op after an overflow).
        while used < runnable {
            words.next_word();
            used += 1;
        }
        remaining -= runnable;
    }
    cur
}

/// Endpoint of a single v3 lazy walk of length `t` from `start` on the
/// regular graph `g`, consuming `rng` exactly as the production kernel
/// consumes the corresponding per-vertex stream — the executable scalar
/// reference of DESIGN.md §10 (`tests/walk_kernel_equivalence.rs` and the
/// determinism suite pin the batched kernel against it).
///
/// # Panics
///
/// Panics if `g` is not regular with positive degree (the v3 kernel's
/// closed-form CSR offsets need regularity, exactly like Theorem 3 itself).
pub fn v3_walk_endpoint<R: RngCore + ?Sized>(
    g: &Graph,
    start: usize,
    t: usize,
    rng: &mut R,
) -> usize {
    let delta = g.max_degree();
    assert!(
        delta > 0 && g.is_regular(delta),
        "v3 lazy walks require a regular graph with positive degree"
    );
    let (mut words, mut moves) = (0u64, 0u64);
    let mut src = RngWords {
        rng,
        words: &mut words,
    };
    v3_walk_run(
        g.csr_adjacency(),
        delta,
        start as u32,
        t,
        &mut src,
        &mut moves,
    ) as usize
}

/// Depth of the batched kernel's keystream block ring. A window touches at
/// most 3 consecutive blocks (33 words from an arbitrary offset); 4 keeps
/// the generate-ahead from ever overwriting a block the window still reads.
const RING_BLOCKS: usize = 4;

/// The ring as a row-major array of `u32 × V3_LANES` rows: word `q` of
/// lane `l`'s stream lives at `ring[q % RING_ROWS][l]`, one masked index
/// instead of a (block, word) pair per draw.
const RING_ROWS: usize = 16 * RING_BLOCKS;

/// Lane count of the batched **v3** kernel. Wider than [`WALK_LANES`]: the
/// v3 group keeps its per-lane state in L1 arrays rather than registers, so
/// no spill pressure caps it, and 32 independent walk chains hide the
/// random CSR load latency that the move loop is otherwise bound by.
const V3_LANES: usize = 32;

/// Simulates the `k` v3 walks of [`V3_LANES`] vertices on a Δ-regular
/// graph given its flat CSR, writing endpoints vertex-major into `out`
/// (`out[l·k + i]`, the spec kernel's layout), drawing every lane's words
/// from the per-vertex stream seeded by `seeds[l]`.
///
/// The fixed window allotment of [`v3_walk_run`] is what this kernel
/// exploits: every lane's stream position is the same closed form of
/// (walk, window), so all lanes' keystreams advance in lockstep blocks —
/// one [`ChaCha8Batch`] refill per 16 words, generated straight into a ring
/// of transposed rows, *zero* per-lane buffering or copying.
///
/// A window then splits into a SIMD-friendly precompute and a tiny move
/// loop, resting on two facts about the discipline. First, a stay does not
/// change the current vertex, so the endpoint only depends on the
/// *sequence of accepted draws* — the positions of the move bits inside
/// the pattern word matter to no walk quantity; only their **count**
/// does. Second, a lane's draw words are the consecutive stream words
/// `q₀+1, q₀+2, …` regardless of which steps move. So the kernel maps the
/// window's `runnable` draw rows through the [Lemire](lemire_u32)
/// multiply row-by-row (a vectorisable pure-arithmetic pass, writing the
/// neighbour index table `idx`), reads each lane's move count from its
/// pattern popcount, and the move loop per lane is just `count` chained
/// CSR loads: `cur ← adjacency[cur·Δ + idx[d][l]]`. The loop runs in
/// rounds — round `d` performs every live lane's `d`-th move — over the
/// lanes counting-sorted by descending move count, so each round's live
/// set is a prefix and every branch is a loop bound. That keeps up to
/// [`V3_LANES`] independent loads in flight to hide the CSR access
/// latency.
///
/// Returns `false` (with `out` unspecified) iff any scanned draw word
/// rejects under Lemire — probability `(Δ mod 2³² mod Δ)/2³² < Δ/2³²` per
/// word, a handful of groups per billion steps — in which case the caller
/// reruns the whole group on the scalar path, which replays redraws (and
/// the even rarer allotment overflow) exactly. The check is conservative:
/// it scans the window's first `max(move count)` draw rows, including
/// words past an individual lane's move count that the stream discipline
/// merely skips.
#[must_use]
#[allow(clippy::too_many_arguments)]
fn v3_walk_lane_group(
    adjacency: &[u32],
    delta: usize,
    t: usize,
    k: usize,
    vertices: [u32; V3_LANES],
    seeds: &[u64; V3_LANES],
    out: &mut [usize],
    tally: &mut WalkTelemetry,
) -> bool {
    debug_assert!(delta > 0);
    debug_assert_eq!(out.len(), V3_LANES * k);
    let span = delta as u32;
    // Lemire acceptance is `lo >= (2^32 - span) mod span` (see
    // [`lemire_u32`]): hoisted out of the loop, and identically zero for
    // power-of-two Δ, where no draw can reject.
    let reject_below = span.wrapping_neg() % span;
    let mut batch = ChaCha8Batch::<V3_LANES>::seed_from_u64s(seeds);
    let mut ring = [[0u32; V3_LANES]; RING_ROWS];
    let mut generated = 0u64;
    // Stream position of the current window's pattern word — identical for
    // every lane, by the fixed allotment.
    let mut q0 = 0u64;
    let (mut local_moves, mut local_words, mut refills) = (0u64, 0u64, 0u64);
    // The window's neighbour-index table, hoisted so its 4 KiB are zeroed
    // once per group, not once per window; rows past a window's `runnable`
    // hold stale values no lane's move count can reach.
    let mut idx = [[0u32; V3_LANES]; 32];
    for walk in 0..k {
        let mut cur = vertices;
        let mut remaining = t as u32;
        while remaining > 0 {
            let runnable = remaining.min(32);
            let usable = if runnable == 32 {
                !0u32
            } else {
                (1u32 << runnable) - 1
            };
            let last_q = q0 + runnable as u64;
            while generated * 16 <= last_q {
                let row = ((generated % RING_BLOCKS as u64) * 16) as usize;
                let block: &mut [[u32; V3_LANES]; 16] =
                    (&mut ring[row..row + 16]).try_into().expect("16-row block");
                batch.refill(block);
                generated += 1;
                refills += 1;
            }
            // Per-lane move counts from the pattern row's popcounts.
            let pat_row = &ring[(q0 % RING_ROWS as u64) as usize];
            let mut mc = [0u8; V3_LANES];
            let mut window_moves = 0u64;
            let mut max_mc = 0u8;
            for (l, c) in mc.iter_mut().enumerate() {
                *c = (pat_row[l] & usable).count_ones() as u8;
                window_moves += *c as u64;
                max_mc = max_mc.max(*c);
            }
            local_moves += window_moves;
            local_words += (V3_LANES as u64) * (1 + runnable as u64);
            // Map the draw rows through the Lemire multiply in one
            // arithmetic pass: `idx[d][l]` is lane `l`'s `d`-th neighbour
            // index of this window. Only the first `max_mc` rows can be
            // consumed by any lane (the rest of the allotment is skipped
            // padding), so only those are mapped and rejection-scanned —
            // any rejecting word delegates the whole group to the scalar
            // path, which replays redraws exactly.
            let mut reject_any = 0u32;
            for (d, row) in idx.iter_mut().enumerate().take(max_mc as usize) {
                let words = &ring[((q0 + 1 + d as u64) % RING_ROWS as u64) as usize];
                for (l, slot) in row.iter_mut().enumerate() {
                    let m = words[l] as u64 * span as u64;
                    *slot = (m >> 32) as u32;
                    reject_any |= u32::from((m as u32) < reject_below);
                }
            }
            if reject_any != 0 {
                return false;
            }
            // Apply the moves in rounds: a lane with `mc[l]` moves is live
            // in rounds `0..mc[l]` and performs its `d`-th move in round
            // `d`, so counting-sorting the lanes by descending move count
            // makes round `d`'s live set exactly the prefix of size
            // `starts[d] = #{l : mc[l] > d}` — no per-move list
            // maintenance, no per-lane cursor, every branch a loop bound.
            let mut cnt = [0usize; 33];
            for &c in &mc {
                cnt[c as usize] += 1;
            }
            let mut starts = [0usize; 33];
            let mut acc = 0usize;
            for c in (0..=32usize).rev() {
                starts[c] = acc;
                acc += cnt[c];
            }
            let mut order = [0u8; V3_LANES];
            let mut fill = starts;
            for (l, &c) in mc.iter().enumerate() {
                order[fill[c as usize]] = l as u8;
                fill[c as usize] += 1;
            }
            for (d, row) in idx.iter().enumerate() {
                let n_live = starts[d];
                if n_live == 0 {
                    break;
                }
                for &l8 in &order[..n_live] {
                    let l = l8 as usize;
                    let next = adjacency[cur[l] as usize * delta + row[l] as usize];
                    cur[l] = next;
                }
            }
            q0 += 1 + runnable as u64;
            remaining -= runnable;
        }
        for (l, &c) in cur.iter().enumerate() {
            out[l * k + walk] = c as usize;
        }
    }
    tally.moves += local_moves;
    tally.keystream_words += local_words;
    tally.refills += refills;
    true
}

/// Theorem 3 + the lazification of Section 5.2, packaged for the pipeline:
/// returns `walks_per_vertex` independent lazy-walk endpoints of length `t`
/// for every vertex of the Δ-regular graph `g`, charging the `O(log t)` MPC
/// rounds of the theorem (parallel repetitions cost machines, not rounds).
///
/// The endpoints come back as one **flat arena** of `n × walks_per_vertex`
/// entries, vertex-major: vertex `v`'s endpoints occupy
/// `result[v * walks_per_vertex..(v + 1) * walks_per_vertex]` (iterate with
/// `chunks_exact(walks_per_vertex)`). One allocation for the whole fan-out
/// instead of one small vector per vertex — this is the pipeline's hot path.
///
/// # Errors
///
/// Returns [`CoreError::BadParams`] if `g` is not regular (the guarantee of
/// Theorem 3 — and the absence of walk "hubs" — requires regularity; that is
/// what Step 1 is for).
#[allow(clippy::too_many_arguments)]
pub fn independent_lazy_walks<R: Rng + ?Sized>(
    g: &Graph,
    t: usize,
    walks_per_vertex: usize,
    mode: WalkMode,
    kernel: WalkKernel,
    copies_multiplier: usize,
    ctx: &mut MpcContext,
    rng: &mut R,
) -> Result<Vec<usize>, CoreError> {
    let n = g.num_vertices();
    let delta = g.max_degree();
    if !g.is_regular(delta) || delta == 0 {
        return Err(CoreError::BadParams(
            "independent_lazy_walks requires a regular graph with positive degree".to_string(),
        ));
    }
    // Section 5.2: add Δ self-loops so uniform steps become lazy steps. The
    // loops are virtual (a LazyView), not a rebuilt 2Δ-adjacency copy — the
    // view draws the same uniform indices and maps them to the same
    // neighbours, so endpoints are bit-identical to the materialised graph.
    let lazy = g.lazy_view(delta);

    ctx.charge(walk_rounds(t), (n * t.max(1)) as u64);
    ctx.record_balanced_load(n.saturating_mul(t.max(1)).saturating_mul(2))?;

    let k = walks_per_vertex;
    if k == 0 {
        return Ok(Vec::new());
    }
    match mode {
        WalkMode::Direct => {
            // The per-vertex fan-out is the pipeline's hot path: every vertex
            // simulates its walks on its own ChaCha8 stream, derived from a
            // single draw of the master generator. The master therefore
            // advances by exactly one word, and the endpoints are
            // bit-identical for every backend and thread count (the walks
            // stay mutually independent — distinct streams — which is all
            // Theorem 3 asks for). Workers fill disjoint vertex-aligned
            // chunks of the flat endpoint arena in place.
            let base = rng.gen::<u64>();
            let executor = ctx.executor();
            let mut flat = vec![0usize; n * k];
            let vertex_spans = executor.element_spans(n);
            let ranges: Vec<std::ops::Range<usize>> = vertex_spans
                .iter()
                .map(|r| r.start * k..r.end * k)
                .collect();
            match kernel {
                WalkKernel::V3 => {
                    // The v3 kernel needs no lazy table at all: stays are
                    // resolved from pattern bits without touching memory, and
                    // real moves index the regular graph's own CSR with the
                    // closed-form offset `v·Δ` — the walk working set halves
                    // to exactly the graph. Full lane groups read lockstep
                    // keystream blocks generated in place; the tail of a
                    // worker's span (and the near-impossible
                    // allotment-overflow groups) runs the scalar form of the
                    // same discipline on the same per-vertex streams, so the
                    // split is invisible in the endpoints.
                    let adjacency = g.csr_adjacency();
                    executor.map_slices_mut(&mut flat, &ranges, |w, chunk| {
                        let first_vertex = vertex_spans[w].start;
                        let span_len = vertex_spans[w].len();
                        let mut tally = WalkTelemetry::default();
                        let mut j = 0;
                        while j + V3_LANES <= span_len {
                            let vertices: [u32; V3_LANES] =
                                core::array::from_fn(|l| (first_vertex + j + l) as u32);
                            let seeds: [u64; V3_LANES] = core::array::from_fn(|l| {
                                derive_stream_seed(base, (first_vertex + j + l) as u64)
                            });
                            let group = &mut chunk[j * k..(j + V3_LANES) * k];
                            if !v3_walk_lane_group(
                                adjacency, delta, t, k, vertices, &seeds, group, &mut tally,
                            ) {
                                tally.spec_fallbacks += 1;
                                for (l, slots) in group.chunks_exact_mut(k).enumerate() {
                                    let v = first_vertex + j + l;
                                    let mut vrng = ChaCha8Rng::seed_from_u64(derive_stream_seed(
                                        base, v as u64,
                                    ));
                                    let mut src = RngWords {
                                        rng: &mut vrng,
                                        words: &mut tally.keystream_words,
                                    };
                                    for slot in slots {
                                        *slot = v3_walk_run(
                                            adjacency,
                                            delta,
                                            v as u32,
                                            t,
                                            &mut src,
                                            &mut tally.moves,
                                        ) as usize;
                                    }
                                }
                            }
                            j += V3_LANES;
                        }
                        for jj in j..span_len {
                            let v = first_vertex + jj;
                            let mut vrng =
                                ChaCha8Rng::seed_from_u64(derive_stream_seed(base, v as u64));
                            let mut src = RngWords {
                                rng: &mut vrng,
                                words: &mut tally.keystream_words,
                            };
                            for slot in &mut chunk[jj * k..(jj + 1) * k] {
                                *slot = v3_walk_run(
                                    adjacency,
                                    delta,
                                    v as u32,
                                    t,
                                    &mut src,
                                    &mut tally.moves,
                                ) as usize;
                            }
                        }
                        tally.steps = (span_len * k * t) as u64;
                        // Saturating: an allotment-overflow fallback counts
                        // both the aborted group's moves and the rerun's.
                        tally.stays_compressed = tally.steps.saturating_sub(tally.moves);
                        record_walk_telemetry(&tally);
                    });
                }
                WalkKernel::Spec => {
                    // Full lane groups batch their draws into lockstep
                    // keystream blocks; the tail of a worker's span (and any
                    // group whose lanes neared the Lemire rejection loop)
                    // runs the step-by-step spec. Both paths consume the
                    // identical per-vertex stream, so the split is invisible
                    // in the endpoints.
                    //
                    // The kernel walks a materialised lazy adjacency (`2Δ`
                    // entries per vertex, self entries for the virtual
                    // loops) so each step is one unconditional load; `n ·
                    // 2Δ` words is the size of the regular graph's own CSR
                    // times two, well under the walk working-set already
                    // charged above. Half the rows' entries are self copies,
                    // so "stay" steps usually re-hit the line the lane just
                    // touched — only real moves pay a random L2/L3 access.
                    let span = 2 * delta;
                    let mut lazy_adjacency = vec![0u32; n * span];
                    for (v, row) in lazy_adjacency.chunks_exact_mut(span).enumerate() {
                        row[..delta].copy_from_slice(g.neighbors(v));
                        row[delta..].fill(v as u32);
                    }
                    let lazy_adjacency = &lazy_adjacency[..];
                    executor.map_slices_mut(&mut flat, &ranges, |w, chunk| {
                        let first_vertex = vertex_spans[w].start;
                        let span_len = vertex_spans[w].len();
                        let mut tally = WalkTelemetry::default();
                        let spec_vertex = |v: usize, slots: &mut [usize]| {
                            let mut vrng =
                                ChaCha8Rng::seed_from_u64(derive_stream_seed(base, v as u64));
                            for slot in slots {
                                *slot = direct_walk_endpoint(&lazy, v, t, &mut vrng);
                            }
                        };
                        let mut j = 0;
                        while j + WALK_LANES <= span_len {
                            let vertices: [u32; WALK_LANES] =
                                core::array::from_fn(|l| (first_vertex + j + l) as u32);
                            let seeds: [u64; WALK_LANES] = core::array::from_fn(|l| {
                                derive_stream_seed(base, (first_vertex + j + l) as u64)
                            });
                            let group = &mut chunk[j * k..(j + WALK_LANES) * k];
                            // Nominal accounting: two words per step per
                            // lane, one block refill per 16 positions (the
                            // astronomically-rare near-rejection redraws are
                            // not itemised).
                            tally.keystream_words += (2 * t * k * WALK_LANES) as u64;
                            tally.refills += ((2 * t * k).div_ceil(16)) as u64;
                            if !lazy_walk_lane_group(
                                lazy_adjacency,
                                span,
                                t,
                                k,
                                vertices,
                                &seeds,
                                group,
                            ) {
                                tally.spec_fallbacks += 1;
                                tally.keystream_words += (2 * t * k * WALK_LANES) as u64;
                                for (l, slots) in group.chunks_exact_mut(k).enumerate() {
                                    spec_vertex(first_vertex + j + l, slots);
                                }
                            }
                            j += WALK_LANES;
                        }
                        for jj in j..span_len {
                            tally.keystream_words += (2 * t * k) as u64;
                            spec_vertex(first_vertex + jj, &mut chunk[jj * k..(jj + 1) * k]);
                        }
                        // The spec kernel executes every lazy step in full:
                        // each one pays its table load, nothing compresses.
                        tally.steps = (span_len * k * t) as u64;
                        tally.moves = tally.steps;
                        record_walk_telemetry(&tally);
                    });
                }
            }
            Ok(flat)
        }
        WalkMode::Faithful => {
            // Keep drawing bundles; prefer certified-independent endpoints and
            // top up with uncertified ones if a vertex falls behind (the paper
            // instead repeats Θ(log n) times; the cap keeps runtime bounded).
            // This mode consumes the master generator directly and stays
            // sequential (it exists for analysis-scale runs and E4).
            let mut out: Vec<Vec<usize>> = vec![Vec::with_capacity(k); n];
            let max_bundles = 4 * k + 8;
            let mut fallback: Vec<Vec<usize>> = vec![Vec::new(); n];
            // Vertices still short of `k` endpoints; an O(1) counter replaces
            // the O(n) `out.iter().all(..)` rescan per bundle. With `k == 0`
            // every vertex is satisfied from the start (`len() < 0` is
            // impossible), so nothing is pending and no bundle is drawn.
            let mut pending = if k == 0 { 0 } else { n };
            for _ in 0..max_bundles {
                if pending == 0 {
                    break;
                }
                let bundle = layered_walk_bundle(&lazy, t, copies_multiplier, rng);
                for v in 0..n {
                    if out[v].len() < k {
                        if bundle.independent[v] {
                            out[v].push(bundle.targets[v]);
                            if out[v].len() == k {
                                pending -= 1;
                            }
                        } else {
                            fallback[v].push(bundle.targets[v]);
                        }
                    }
                }
            }
            for v in 0..n {
                while out[v].len() < k {
                    match fallback[v].pop() {
                        Some(target) => out[v].push(target),
                        None => out[v].push(direct_walk_endpoint(&lazy, v, t, rng)),
                    }
                }
            }
            Ok(out.into_iter().flatten().collect())
        }
    }
}

/// Step 2 of the pipeline: Lemma 5.1.
///
/// Builds the randomized graph `H` on the same vertex set as the Δ-regular
/// graph `g`: every vertex is connected to `out_degree / 2` independent
/// lazy-walk endpoints of length `t`. If `t` is at least the `γ`-mixing time
/// of each component, each component of `H` is close in distribution to
/// `G(n_i, out_degree)` and in particular connected w.h.p.
///
/// # Errors
///
/// Propagates [`CoreError`] from [`independent_lazy_walks`].
#[allow(clippy::too_many_arguments)]
pub fn randomize<R: Rng + ?Sized>(
    g: &Graph,
    t: usize,
    out_degree: usize,
    mode: WalkMode,
    kernel: WalkKernel,
    copies_multiplier: usize,
    ctx: &mut MpcContext,
    rng: &mut R,
) -> Result<Graph, CoreError> {
    ctx.begin_phase("randomize");
    let walks_per_vertex = (out_degree / 2).max(1);
    let endpoints = independent_lazy_walks(
        g,
        t,
        walks_per_vertex,
        mode,
        kernel,
        copies_multiplier,
        ctx,
        rng,
    )?;
    let n = g.num_vertices();
    let mut builder = GraphBuilder::with_capacity(n, n * walks_per_vertex);
    for (v, targets) in endpoints.chunks_exact(walks_per_vertex).enumerate() {
        builder
            .add_edges(targets.iter().map(|&u| (v, u)))
            .expect("walk endpoints in range");
    }
    ctx.charge_shuffle(2 * n * walks_per_vertex);
    ctx.end_phase();
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wcc_graph::prelude::*;
    use wcc_graph::spectral::{lazy_walk_distribution, total_variation_distance};
    use wcc_mpc::MpcConfig;

    fn ctx_for(words: usize) -> MpcContext {
        MpcContext::new(MpcConfig::for_input_size(words.max(64), 0.5).permissive())
    }

    #[test]
    fn direct_walk_stays_in_component() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::planted_expander_components(&[30, 30], 6, &mut rng);
        let cc = connected_components(&g);
        for v in (0..g.num_vertices()).step_by(5) {
            let end = direct_walk_endpoint(&g, v, 40, &mut rng);
            assert!(cc.same_component(v, end));
        }
    }

    #[test]
    fn zero_walks_per_vertex_returns_an_empty_arena_without_simulating() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::random_regular_permutation_graph(40, 6, &mut rng);
        for mode in [WalkMode::Direct, WalkMode::Faithful] {
            let mut ctx = ctx_for(4 * g.num_edges());
            let mut walk_rng = ChaCha8Rng::seed_from_u64(9);
            let flat =
                independent_lazy_walks(&g, 8, 0, mode, WalkKernel::V3, 2, &mut ctx, &mut walk_rng)
                    .expect("k = 0 is a valid (trivial) request");
            assert!(
                flat.is_empty(),
                "mode {mode:?} produced endpoints for k = 0"
            );
        }
    }

    #[test]
    fn direct_walk_on_isolated_vertex_stays_put() {
        let g = Graph::empty(3);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert_eq!(direct_walk_endpoint(&g, 1, 10, &mut rng), 1);
        assert_eq!(direct_walk_visits(&g, 1, 10, &mut rng), vec![1]);
    }

    #[test]
    fn walk_visits_cover_small_cycle() {
        let g = generators::cycle(6);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let visits = direct_walk_visits(&g, 0, 500, &mut rng);
        assert_eq!(visits.len(), 6);
        assert_eq!(visits[0], 0);
    }

    #[test]
    fn layered_bundle_endpoints_distribute_like_true_walks() {
        // On a Δ-regular expander, endpoints of length-t walks from a fixed
        // start should match the exact walk distribution. We test the
        // *aggregate* endpoint distribution over all starts, which for a
        // vertex-transitive-ish random regular graph must be near uniform.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let n = 60;
        let g = generators::random_regular_permutation_graph(n, 8, &mut rng);
        let t = 16;
        let mut counts = vec![0f64; n];
        let reps = 40;
        for _ in 0..reps {
            let bundle = layered_walk_bundle(&g, t, 2, &mut rng);
            for &target in &bundle.targets {
                counts[target] += 1.0;
            }
        }
        let total: f64 = counts.iter().sum();
        let empirical: Vec<f64> = counts.iter().map(|c| c / total).collect();
        let uniform = vec![1.0 / n as f64; n];
        let tvd = total_variation_distance(&empirical, &uniform);
        assert!(
            tvd < 0.15,
            "endpoint distribution far from uniform: tvd = {tvd}"
        );
    }

    #[test]
    fn layered_bundle_certifies_many_independent_walks_on_regular_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::random_regular_permutation_graph(80, 8, &mut rng);
        let bundle = layered_walk_bundle(&g, 8, 2, &mut rng);
        let independent = bundle.independent.iter().filter(|&&b| b).count();
        // Lemma 5.3: each walk is independent with probability >= 1/2; demand
        // a conservative third to keep the test robust.
        assert!(
            independent * 3 >= g.num_vertices(),
            "only {independent}/{} walks certified independent",
            g.num_vertices()
        );
    }

    #[test]
    fn hub_graphs_yield_fewer_independent_walks_than_regular_graphs() {
        // The motivation for regularization (Section 3): on a star, walks all
        // collide in the centre.
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let star = generators::star(81);
        let regular = generators::random_regular_permutation_graph(81, 8, &mut rng);
        let b_star = layered_walk_bundle(&star, 8, 2, &mut rng);
        let b_reg = layered_walk_bundle(&regular, 8, 2, &mut rng);
        let ind_star = b_star.independent.iter().filter(|&&b| b).count();
        let ind_reg = b_reg.independent.iter().filter(|&&b| b).count();
        assert!(
            ind_reg > 2 * ind_star,
            "regular graph should certify far more independent walks ({ind_reg} vs {ind_star})"
        );
    }

    #[test]
    fn lazy_view_walks_match_materialized_self_loops() {
        // The whole point of the virtual lazy view: for a fixed per-vertex
        // RNG stream, endpoints and visit sets are *bit-identical* to walking
        // the materialised `with_self_loops` graph — not merely close in
        // distribution. This is what lets the LazyView migration keep every
        // golden output.
        let mut rng = ChaCha8Rng::seed_from_u64(40);
        let g = generators::random_regular_permutation_graph(60, 6, &mut rng);
        let delta = g.max_degree();
        let materialized = g.with_self_loops(delta);
        let view = g.lazy_view(delta);
        for v in (0..g.num_vertices()).step_by(3) {
            for t in [1usize, 7, 32] {
                let mut rng_a = ChaCha8Rng::seed_from_u64(1000 + v as u64 + t as u64);
                let mut rng_b = rng_a.clone();
                assert_eq!(
                    direct_walk_endpoint(&materialized, v, t, &mut rng_a),
                    direct_walk_endpoint(&view, v, t, &mut rng_b),
                    "endpoint diverged at v={v}, t={t}"
                );
                // The streams must also have advanced identically.
                assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
                let mut rng_a = ChaCha8Rng::seed_from_u64(2000 + v as u64 + t as u64);
                let mut rng_b = rng_a.clone();
                assert_eq!(
                    direct_walk_visits(&materialized, v, t, &mut rng_a),
                    direct_walk_visits(&view, v, t, &mut rng_b),
                    "visit order diverged at v={v}, t={t}"
                );
            }
        }
        // The faithful layered structure sees the same virtual adjacency too.
        let mut rng_a = ChaCha8Rng::seed_from_u64(3000);
        let mut rng_b = rng_a.clone();
        let bundle_a = layered_walk_bundle(&materialized, 4, 2, &mut rng_a);
        let bundle_b = layered_walk_bundle(&view, 4, 2, &mut rng_b);
        assert_eq!(bundle_a.targets, bundle_b.targets);
        assert_eq!(bundle_a.independent, bundle_b.independent);
    }

    #[test]
    fn walk_visits_into_reuses_scratch_across_walks() {
        let g = generators::cycle(10);
        let mut scratch = WalkVisitScratch::new();
        let mut out = Vec::new();
        for (v, seed) in [(0usize, 5u64), (3, 6), (7, 7)] {
            let mut rng_a = ChaCha8Rng::seed_from_u64(seed);
            let mut rng_b = rng_a.clone();
            direct_walk_visits_into(&g, v, 50, &mut rng_a, &mut scratch, &mut out);
            assert_eq!(out, direct_walk_visits(&g, v, 50, &mut rng_b));
        }
    }

    #[test]
    fn independent_lazy_walks_rejects_irregular_graphs() {
        let g = generators::star(10);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ctx = ctx_for(100);
        for kernel in [WalkKernel::V3, WalkKernel::Spec] {
            assert!(matches!(
                independent_lazy_walks(&g, 4, 2, WalkMode::Direct, kernel, 2, &mut ctx, &mut rng),
                Err(CoreError::BadParams(_))
            ));
        }
    }

    #[test]
    fn lazy_walk_endpoints_match_exact_lazy_distribution() {
        // Empirical endpoint distribution of many direct lazy walks from one
        // vertex vs the exact lazy-walk distribution.
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let g = generators::cycle(12);
        let t = 10;
        let lazy = g.with_self_loops(2);
        let exact = lazy_walk_distribution(&g, 0, t);
        let mut counts = [0f64; 12];
        let reps = 20_000;
        for _ in 0..reps {
            counts[direct_walk_endpoint(&lazy, 0, t, &mut rng)] += 1.0;
        }
        let empirical: Vec<f64> = counts.iter().map(|c| c / reps as f64).collect();
        let tvd = total_variation_distance(&empirical, &exact);
        assert!(
            tvd < 0.03,
            "tvd between empirical and exact lazy walk: {tvd}"
        );
    }

    #[test]
    fn randomize_connects_each_expander_component_and_never_merges_components() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = generators::planted_expander_components(&[50, 70], 8, &mut rng);
        let truth = connected_components(&g);
        let mut ctx = ctx_for(4 * g.num_edges());
        // The planted components are 8-regular expanders; walk long enough to
        // mix. Both kernels must preserve the component structure.
        for kernel in [WalkKernel::V3, WalkKernel::Spec] {
            let h = randomize(&g, 48, 12, WalkMode::Direct, kernel, 2, &mut ctx, &mut rng).unwrap();
            assert_eq!(h.num_vertices(), g.num_vertices());
            let h_cc = connected_components(&h);
            assert!(
                h_cc.same_partition(&truth),
                "randomized graph ({kernel:?}) changed the components"
            );
        }
        assert!(ctx.stats().rounds_in_phase("randomize") >= 1);
    }

    #[test]
    fn randomize_in_faithful_mode_matches_components_too() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let g = generators::random_regular_permutation_graph(40, 6, &mut rng);
        let truth = connected_components(&g);
        let mut ctx = ctx_for(4 * g.num_edges());
        let h = randomize(
            &g,
            16,
            8,
            WalkMode::Faithful,
            WalkKernel::V3,
            2,
            &mut ctx,
            &mut rng,
        )
        .unwrap();
        assert!(connected_components(&h).same_partition(&truth));
    }

    #[test]
    fn walk_round_charge_is_logarithmic_in_t() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = generators::random_regular_permutation_graph(50, 6, &mut rng);
        let mut ctx_short = ctx_for(4 * g.num_edges());
        let mut ctx_long = ctx_for(4 * g.num_edges());
        let kernel = WalkKernel::V3;
        independent_lazy_walks(
            &g,
            4,
            1,
            WalkMode::Direct,
            kernel,
            2,
            &mut ctx_short,
            &mut rng,
        )
        .unwrap();
        independent_lazy_walks(
            &g,
            256,
            1,
            WalkMode::Direct,
            kernel,
            2,
            &mut ctx_long,
            &mut rng,
        )
        .unwrap();
        let (a, b) = (
            ctx_short.stats().total_rounds(),
            ctx_long.stats().total_rounds(),
        );
        // 64x longer walks cost only ~log-many extra rounds.
        assert!(b > a);
        assert!(b <= a + 14, "rounds went from {a} to {b}");
    }

    #[test]
    fn walk_kernel_env_override_resolves_recognised_values_only() {
        use WalkKernel::{Spec, V3};
        assert_eq!(V3.resolve_from(None), V3);
        assert_eq!(Spec.resolve_from(None), Spec);
        assert_eq!(Spec.resolve_from(Some("v3")), V3);
        assert_eq!(V3.resolve_from(Some("SPEC")), Spec);
        // Unrecognised values fall back to the configured parameter.
        assert_eq!(V3.resolve_from(Some("v2")), V3);
        assert_eq!(Spec.resolve_from(Some("")), Spec);
    }

    /// The stay-run compression legality pin: a local reference that expands
    /// every step one pattern bit at a time — but draws and skips words in
    /// the same windowed order — must land on the same vertex AND leave the
    /// stream in the same position as the bit-popping production path. This
    /// is the exactness argument of DESIGN.md §10 made executable: the
    /// compression changes how bits are *grouped*, never which words are
    /// drawn or what each bit decides.
    #[test]
    fn v3_run_compression_matches_stepwise_bit_expansion() {
        fn stepwise_reference(
            adjacency: &[u32],
            delta: usize,
            start: u32,
            t: usize,
            rng: &mut ChaCha8Rng,
        ) -> u32 {
            let mut cur = start;
            let mut remaining = t;
            while remaining > 0 {
                let runnable = remaining.min(32);
                let mut pat = rng.next_u32();
                let mut used = 0usize;
                // One lazy step per pattern bit, LSB first.
                for _ in 0..runnable {
                    let bit = pat & 1;
                    pat >>= 1;
                    if bit == 1 {
                        let mut words = 0u64;
                        let mut src = RngWords {
                            rng,
                            words: &mut words,
                        };
                        let j = lemire_u32(&mut src, delta as u32);
                        used += words as usize;
                        cur = adjacency[cur as usize * delta + j as usize];
                    }
                }
                // Skip to the window's fixed 1 + runnable word allotment.
                while used < runnable {
                    rng.next_u32();
                    used += 1;
                }
                remaining -= runnable;
            }
            cur
        }

        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let g = generators::random_regular_permutation_graph(48, 8, &mut rng);
        let delta = g.max_degree();
        // Includes t values straddling the 32-bit pattern-word boundary.
        for t in [1usize, 5, 31, 32, 33, 64, 100] {
            for v in (0..g.num_vertices()).step_by(7) {
                let mut rng_a = ChaCha8Rng::seed_from_u64(900 + v as u64 * 131 + t as u64);
                let mut rng_b = rng_a.clone();
                let fast = v3_walk_endpoint(&g, v, t, &mut rng_a);
                let slow = stepwise_reference(g.csr_adjacency(), delta, v as u32, t, &mut rng_b);
                assert_eq!(fast, slow as usize, "endpoint diverged at v={v}, t={t}");
                // Identical word consumption: the streams must be in the
                // same position afterwards.
                assert_eq!(
                    rng_a.next_u64(),
                    rng_b.next_u64(),
                    "stream position diverged at v={v}, t={t}"
                );
            }
        }
    }

    /// The batched v3 kernel must equal the scalar v3 path lane for lane —
    /// this (plus the vendored lane≡single-stream test) is what makes the
    /// group/tail split and chunk boundaries invisible in the endpoints.
    #[test]
    fn v3_lane_group_matches_scalar_walks_per_lane() {
        let mut rng = ChaCha8Rng::seed_from_u64(88);
        let g = generators::random_regular_permutation_graph(64, 6, &mut rng);
        let delta = g.max_degree();
        let (t, k) = (37, 3);
        let vertices: [u32; V3_LANES] = core::array::from_fn(|l| (2 * l) as u32);
        let seeds: [u64; V3_LANES] = core::array::from_fn(|l| 0xC0FFEE ^ (l as u64 * 7919));
        let mut out = vec![0usize; V3_LANES * k];
        let mut tally = WalkTelemetry::default();
        assert!(
            v3_walk_lane_group(
                g.csr_adjacency(),
                delta,
                t,
                k,
                vertices,
                &seeds,
                &mut out,
                &mut tally,
            ),
            "allotment overflow on a fixed-seed group"
        );
        let mut scalar_moves = 0u64;
        let mut scalar_words = 0u64;
        for l in 0..V3_LANES {
            let mut vrng = ChaCha8Rng::seed_from_u64(seeds[l]);
            let mut src = RngWords {
                rng: &mut vrng,
                words: &mut scalar_words,
            };
            for walk in 0..k {
                let end = v3_walk_run(
                    g.csr_adjacency(),
                    delta,
                    vertices[l],
                    t,
                    &mut src,
                    &mut scalar_moves,
                );
                assert_eq!(
                    out[l * k + walk],
                    end as usize,
                    "lane {l} walk {walk} diverged from scalar"
                );
            }
        }
        assert_eq!(tally.moves, scalar_moves);
        assert_eq!(tally.keystream_words, scalar_words);
        assert!(tally.refills > 0, "batched path never refilled");
    }

    #[test]
    fn v3_endpoints_match_exact_lazy_distribution() {
        // The v3 decomposition (fair stay coin + uniform real neighbour) must
        // realise exactly the lazy-walk distribution the spec kernel samples
        // from the 2Δ span.
        let mut rng = ChaCha8Rng::seed_from_u64(91);
        let g = generators::cycle(12);
        let t = 10;
        let exact = lazy_walk_distribution(&g, 0, t);
        let mut counts = [0f64; 12];
        let reps = 20_000;
        for _ in 0..reps {
            counts[v3_walk_endpoint(&g, 0, t, &mut rng)] += 1.0;
        }
        let empirical: Vec<f64> = counts.iter().map(|c| c / reps as f64).collect();
        let tvd = total_variation_distance(&empirical, &exact);
        assert!(tvd < 0.03, "tvd between v3 empirical and exact lazy: {tvd}");
    }

    #[test]
    fn v3_fanout_records_walk_telemetry() {
        use wcc_mpc::walk_telemetry_snapshot;
        let mut rng = ChaCha8Rng::seed_from_u64(92);
        let g = generators::random_regular_permutation_graph(64, 6, &mut rng);
        let (t, k) = (32usize, 2usize);
        let before = walk_telemetry_snapshot();
        let mut ctx = ctx_for(4 * g.num_edges());
        independent_lazy_walks(
            &g,
            t,
            k,
            WalkMode::Direct,
            WalkKernel::V3,
            2,
            &mut ctx,
            &mut rng,
        )
        .unwrap();
        let after = walk_telemetry_snapshot();
        let min_steps = (g.num_vertices() * k * t) as u64;
        // Counters are process-global and other tests may add concurrently,
        // so assert only the lower bounds this fan-out must contribute.
        assert!(after.steps >= before.steps + min_steps);
        assert!(after.moves > before.moves);
        assert!(after.stays_compressed > before.stays_compressed);
        // One pattern word per 32 steps plus roughly one index word per
        // move: well under the spec kernel's two words per step.
        assert!(after.keystream_words > before.keystream_words);
        assert!(after.refills > before.refills);
    }
}
