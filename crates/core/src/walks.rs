//! Step 2 — Randomization via independent random walks
//! (Section 5, Theorem 3 and Lemma 5.1).
//!
//! The pipeline needs, for every vertex of the (now regular) graph,
//! `Θ(log n)` *independent* endpoints of lazy random walks whose length `T`
//! exceeds the mixing time of the vertex's component. Connecting every vertex
//! to its endpoints turns each component into (something `n^{-8}`-close in
//! total variation to) the random graph `G(n_i, Θ(log n))`, which Step 3
//! knows how to solve in `O(log log n)` rounds.
//!
//! Two implementations are provided:
//!
//! * [`layered_walk_bundle`] — the **faithful** data structure of Theorem 3:
//!   the sampled layered graph `G_S` (one sampled out-edge per layered
//!   vertex), endpoint computation by pointer doubling in `log t` steps, and
//!   the `Mark`/`DetectIndependence` pass that certifies which walks are
//!   vertex-disjoint (and therefore mutually independent, Observation 5.2).
//!   Memory is `Θ(n · t · copies)`, so it is meant for analysis-scale runs
//!   and for experiment E4.
//! * [`direct_walk_targets`] — the **direct** simulation: each walk is
//!   simulated step by step with its own randomness, which produces *exactly*
//!   the product distribution `⊗_v D_RW(v, t)` that Theorem 3 guarantees.
//!   The pipeline uses this mode at scale and charges the `O(log t)` rounds
//!   of the theorem (the substitution is documented in DESIGN.md).
//!
//! Both implementations are generic over [`AdjacencyView`], and the
//! Section 5.2 lazification is specified against a virtual
//! [`LazyView`](wcc_graph::LazyView) — the `Δ` added self-loops are simulated
//! arithmetically (neighbour indices `>= deg(v)` mean "stay"). The view
//! reproduces the materialised CSR index-for-index, so walk endpoints are
//! bit-identical either way. At scale the direct path *does* materialise the
//! flat `n × 2Δ` lazy-adjacency table once per regular graph: the table turns
//! every step into one unconditional load (a "stay" draw lands on a self
//! entry in the just-touched line), which is what lets the batched kernel run
//! at the memory-latency floor (see DESIGN.md §5, "The walk engine").

use crate::regularize::CoreError;

use rand::{Rng, SeedableRng};
use rand_chacha::{ChaCha8Batch, ChaCha8Rng};
use wcc_graph::{AdjacencyView, Graph, GraphBuilder};
use wcc_mpc::{derive_stream_seed, MpcContext};

/// Which implementation of the Theorem-3 walk primitive to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkMode {
    /// Direct per-walk simulation (exact same output distribution, cheap).
    Direct,
    /// The layered-graph data structure with independence detection.
    Faithful,
}

/// The outcome of one run of the layered-graph walk data structure: one
/// length-`t` walk endpoint per vertex, plus a flag saying whether the walk
/// was certified independent of all other walks in this bundle.
#[derive(Debug, Clone)]
pub struct WalkBundle {
    /// `targets[v]` is the endpoint of the walk that started at `v`.
    pub targets: Vec<usize>,
    /// `independent[v]` is `true` if `v`'s path in the sampled layered graph
    /// was vertex-disjoint from every other start's path (Lemma 5.3 certifies
    /// this happens with probability at least 1/2 per start).
    pub independent: Vec<bool>,
}

/// Rounds charged for one execution of the Theorem-3 data structure on walks
/// of length `t`: sampling `G_S` (1), pointer doubling (`⌈log₂ t⌉`), and the
/// Mark/DetectIndependence pass (`⌈log₂ t⌉` more), each a constant number of
/// sort/search batches.
fn walk_rounds(t: usize) -> u64 {
    let log_t = (usize::BITS - t.max(2).next_power_of_two().leading_zeros()) as u64;
    1 + 2 * log_t
}

/// Runs the faithful layered-graph construction (Theorem 3) once.
///
/// `copies_multiplier` controls the number of copies per layer (`multiplier ×
/// t`, the paper uses `2t`). Larger values reduce collisions and raise the
/// fraction of certified-independent walks.
///
/// # Panics
///
/// Panics if the graph has an isolated vertex (the paper assumes minimum
/// degree 1 throughout) or if `t == 0`.
pub fn layered_walk_bundle<V: AdjacencyView, R: Rng + ?Sized>(
    g: &V,
    t: usize,
    copies_multiplier: usize,
    rng: &mut R,
) -> WalkBundle {
    assert!(t >= 1, "walk length must be positive");
    let n = g.num_vertices();
    assert!(
        (0..n).all(|v| g.degree(v) > 0),
        "layered walks require minimum degree 1 (no isolated vertices)"
    );
    let t = t.next_power_of_two();
    let copies = (copies_multiplier.max(1) * t).max(2);
    let layer_size = n * copies;
    let num_vertices = layer_size * (t + 1);
    const NONE: u32 = u32::MAX;
    assert!(
        num_vertices < NONE as usize,
        "layered graph too large for u32 indexing"
    );

    let index = |v: usize, c: usize, j: usize| -> usize { j * layer_size + c * n + v };

    // Sample the sampled layered graph G_S: one outgoing edge per vertex of
    // layers 0..t (Definition 1 + "Sampled layered graph").
    let mut next: Vec<u32> = vec![NONE; num_vertices];
    for j in 0..t {
        for c in 0..copies {
            for v in 0..n {
                let deg = g.degree(v);
                let nbr = g
                    .nth_neighbor(v, rng.gen_range(0..deg))
                    .expect("degree > 0");
                let target_copy = rng.gen_range(0..copies);
                next[index(v, c, j)] = index(nbr, target_copy, j + 1) as u32;
            }
        }
    }

    // Mark: follow each start's path step by step, counting visits per
    // layered vertex (this is the information the recursive Mark procedure
    // materialises).
    let mut visits: Vec<u8> = vec![0; num_vertices];
    for v in 0..n {
        let mut cur = index(v, 0, 0);
        visits[cur] = visits[cur].saturating_add(1);
        for _ in 0..t {
            cur = next[cur] as usize;
            visits[cur] = visits[cur].saturating_add(1);
        }
    }

    // DetectIndependence: a start is independent iff every vertex on its path
    // was visited exactly once.
    let mut independent = vec![true; n];
    for (v, flag) in independent.iter_mut().enumerate() {
        let mut cur = index(v, 0, 0);
        let mut ok = visits[cur] == 1;
        for _ in 0..t {
            cur = next[cur] as usize;
            if visits[cur] != 1 {
                ok = false;
            }
        }
        *flag = ok;
    }

    // Endpoint computation by pointer doubling (`N_k(α) = N_{k-1}(N_{k-1}(α))`).
    let log_t = t.trailing_zeros();
    let mut jump = next;
    for _ in 0..log_t {
        let mut squared = vec![NONE; num_vertices];
        for (alpha, &beta) in jump.iter().enumerate() {
            if beta != NONE {
                squared[alpha] = jump[beta as usize];
            }
        }
        jump = squared;
    }
    let targets: Vec<usize> = (0..n)
        .map(|v| {
            // After `log_t` doubling passes, `jump` maps each start directly
            // to its step-`t` successor (for `t = 1`, `jump` is `next`).
            let end = jump[index(v, 0, 0)];
            (end as usize) % n
        })
        .collect();

    WalkBundle {
        targets,
        independent,
    }
}

/// Directly simulates one walk of length `t` from every vertex, each with its
/// own randomness (so the endpoints are mutually independent by
/// construction). On a regular graph this is exactly the distribution
/// Theorem 3 produces.
pub fn direct_walk_targets<V: AdjacencyView, R: Rng + ?Sized>(
    g: &V,
    t: usize,
    rng: &mut R,
) -> Vec<usize> {
    (0..g.num_vertices())
        .map(|v| direct_walk_endpoint(g, v, t, rng))
        .collect()
}

/// Endpoint of a single uniform-neighbour walk of length `t` from `start`
/// (self-loops — real or [`LazyView`](wcc_graph::LazyView)-virtual — make it
/// lazy). Isolated vertices stay put.
pub fn direct_walk_endpoint<V: AdjacencyView, R: Rng + ?Sized>(
    g: &V,
    start: usize,
    t: usize,
    rng: &mut R,
) -> usize {
    let mut cur = start;
    for _ in 0..t {
        let deg = g.degree(cur);
        if deg == 0 {
            break;
        }
        cur = g
            .nth_neighbor(cur, rng.gen_range(0..deg))
            .expect("degree > 0");
    }
    cur
}

/// Reusable first-visit bookkeeping for [`direct_walk_visits_into`]: an
/// epoch-stamped vertex table, so a worker simulating many walks pays one
/// `n`-word allocation total instead of one hash set per walk.
#[derive(Debug, Clone, Default)]
pub struct WalkVisitScratch {
    stamp: Vec<u64>,
    epoch: u64,
}

impl WalkVisitScratch {
    /// A fresh scratch; sized lazily on first use.
    pub fn new() -> Self {
        WalkVisitScratch::default()
    }

    /// Starts a new walk over a graph with `n` vertices; returns the epoch
    /// tag marking this walk's visits.
    fn begin(&mut self, n: usize) -> u64 {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch += 1;
        self.epoch
    }
}

/// The distinct vertices visited by a single walk of length `t` from `start`,
/// in first-visit order (used by the mildly-sublinear algorithm, Section 8).
pub fn direct_walk_visits<V: AdjacencyView, R: Rng + ?Sized>(
    g: &V,
    start: usize,
    t: usize,
    rng: &mut R,
) -> Vec<usize> {
    let mut scratch = WalkVisitScratch::new();
    let mut order = Vec::new();
    direct_walk_visits_into(g, start, t, rng, &mut scratch, &mut order);
    order
}

/// Allocation-lean variant of [`direct_walk_visits`]: appends the distinct
/// visited vertices (in first-visit order) to `out`, which is cleared first,
/// using `scratch` for the seen-set. The RNG draws are identical to
/// [`direct_walk_visits`] — the scratch only changes how first visits are
/// detected, never which steps are taken.
pub fn direct_walk_visits_into<V: AdjacencyView, R: Rng + ?Sized>(
    g: &V,
    start: usize,
    t: usize,
    rng: &mut R,
    scratch: &mut WalkVisitScratch,
    out: &mut Vec<usize>,
) {
    out.clear();
    let epoch = scratch.begin(g.num_vertices());
    let mut cur = start;
    scratch.stamp[cur] = epoch;
    out.push(cur);
    for _ in 0..t {
        let deg = g.degree(cur);
        if deg == 0 {
            break;
        }
        cur = g
            .nth_neighbor(cur, rng.gen_range(0..deg))
            .expect("degree > 0");
        if scratch.stamp[cur] != epoch {
            scratch.stamp[cur] = epoch;
            out.push(cur);
        }
    }
}

/// Lane count of the batched lazy-walk kernel: fills one 512-bit register
/// of `u32` lanes and keeps enough independent adjacency loads in flight to
/// hide their latency (32 lanes measurably regress on register spills).
const WALK_LANES: usize = 16;

/// Simulates the `k` lazy walks of [`WALK_LANES`] vertices in lockstep on a
/// regular graph given its **materialised lazy adjacency** (`span = 2Δ`
/// entries per vertex: the `Δ` real neighbours in `neighbors` order followed
/// by `Δ` copies of the vertex itself), writing endpoints vertex-major into
/// `out` (`out[l * k + i]` = endpoint `i` of lane `l`). Returns `false`
/// (with `out` unspecified) in the astronomically-rare case a lane *may*
/// have hit the Lemire rejection loop, in which case the caller must rerun
/// the group on the step-by-step spec path.
///
/// Bit-identical to running [`direct_walk_endpoint`] over the
/// [`LazyView`](wcc_graph::LazyView) on each vertex's own `ChaCha8Rng`
/// stream whenever it returns `true`: the vendored Lemire `gen_range` over
/// the lazy span `2Δ` computes `m = x · 2Δ` for one `u64` `x` — two
/// keystream words — takes the draw from `m >> 64`, and only consults a
/// second `u64` when `m mod 2^64 < 2Δ` (probability `< 2Δ / 2^64` per
/// step). Outside that case every lane advances exactly two words per step
/// in lockstep, which is what lets the keystreams be generated in one
/// batched refill per 8 steps ([`ChaCha8Batch`]).
#[must_use]
fn lazy_walk_lane_group(
    lazy_adjacency: &[u32],
    span: usize,
    t: usize,
    k: usize,
    vertices: [u32; WALK_LANES],
    seeds: &[u64; WALK_LANES],
    out: &mut [usize],
) -> bool {
    debug_assert!(span > 0);
    debug_assert_eq!(out.len(), WALK_LANES * k);
    let mut batch = ChaCha8Batch::<WALK_LANES>::seed_from_u64s(seeds);
    let mut block = [[0u32; WALK_LANES]; 16];
    let mut pos = 16usize;
    let mut near_reject = 0u64;
    for walk in 0..k {
        let mut cur = vertices;
        for _ in 0..t {
            if pos >= 16 {
                batch.refill(&mut block);
                pos = 0;
            }
            let (lo, hi) = (&block[pos], &block[pos + 1]);
            for l in 0..WALK_LANES {
                let x = (hi[l] as u64) << 32 | lo[l] as u64;
                let m = x as u128 * span as u128;
                near_reject |= ((m as u64) < span as u64) as u64;
                // The materialised lazy row makes the lazy/real choice an
                // unconditional load: index `>= Δ` lands on a self entry.
                // A conditional here would be a fair coin — mispredicted
                // every other step.
                cur[l] = lazy_adjacency[cur[l] as usize * span + (m >> 64) as usize];
            }
            pos += 2;
        }
        for (l, &c) in cur.iter().enumerate() {
            out[l * k + walk] = c as usize;
        }
    }
    near_reject == 0
}

/// Theorem 3 + the lazification of Section 5.2, packaged for the pipeline:
/// returns `walks_per_vertex` independent lazy-walk endpoints of length `t`
/// for every vertex of the Δ-regular graph `g`, charging the `O(log t)` MPC
/// rounds of the theorem (parallel repetitions cost machines, not rounds).
///
/// The endpoints come back as one **flat arena** of `n × walks_per_vertex`
/// entries, vertex-major: vertex `v`'s endpoints occupy
/// `result[v * walks_per_vertex..(v + 1) * walks_per_vertex]` (iterate with
/// `chunks_exact(walks_per_vertex)`). One allocation for the whole fan-out
/// instead of one small vector per vertex — this is the pipeline's hot path.
///
/// # Errors
///
/// Returns [`CoreError::BadParams`] if `g` is not regular (the guarantee of
/// Theorem 3 — and the absence of walk "hubs" — requires regularity; that is
/// what Step 1 is for).
pub fn independent_lazy_walks<R: Rng + ?Sized>(
    g: &Graph,
    t: usize,
    walks_per_vertex: usize,
    mode: WalkMode,
    copies_multiplier: usize,
    ctx: &mut MpcContext,
    rng: &mut R,
) -> Result<Vec<usize>, CoreError> {
    let n = g.num_vertices();
    let delta = g.max_degree();
    if !g.is_regular(delta) || delta == 0 {
        return Err(CoreError::BadParams(
            "independent_lazy_walks requires a regular graph with positive degree".to_string(),
        ));
    }
    // Section 5.2: add Δ self-loops so uniform steps become lazy steps. The
    // loops are virtual (a LazyView), not a rebuilt 2Δ-adjacency copy — the
    // view draws the same uniform indices and maps them to the same
    // neighbours, so endpoints are bit-identical to the materialised graph.
    let lazy = g.lazy_view(delta);

    ctx.charge(walk_rounds(t), (n * t.max(1)) as u64);
    ctx.record_balanced_load(n.saturating_mul(t.max(1)).saturating_mul(2))?;

    let k = walks_per_vertex;
    if k == 0 {
        return Ok(Vec::new());
    }
    match mode {
        WalkMode::Direct => {
            // The per-vertex fan-out is the pipeline's hot path: every vertex
            // simulates its walks on its own ChaCha8 stream, derived from a
            // single draw of the master generator. The master therefore
            // advances by exactly one word, and the endpoints are
            // bit-identical for every backend and thread count (the walks
            // stay mutually independent — distinct streams — which is all
            // Theorem 3 asks for). Workers fill disjoint vertex-aligned
            // chunks of the flat endpoint arena in place.
            let base = rng.gen::<u64>();
            let executor = ctx.executor();
            let mut flat = vec![0usize; n * k];
            let vertex_spans = executor.element_spans(n);
            let ranges: Vec<std::ops::Range<usize>> = vertex_spans
                .iter()
                .map(|r| r.start * k..r.end * k)
                .collect();
            // Full lane groups batch their draws into lockstep keystream
            // blocks; the tail of a worker's span (and any group whose
            // lanes neared the Lemire rejection loop) runs the step-by-step
            // spec. Both paths consume the identical per-vertex stream, so
            // the split is invisible in the endpoints.
            //
            // The kernel walks a materialised lazy adjacency (`2Δ` entries
            // per vertex, self entries for the virtual loops) so each step
            // is one unconditional load; `n · 2Δ` words is the size of the
            // regular graph's own CSR times two, well under the walk
            // working-set already charged above. Half the rows' entries are
            // self copies, so "stay" steps usually re-hit the line the lane
            // just touched — only real moves pay a random L2/L3 access.
            let span = 2 * delta;
            let mut lazy_adjacency = vec![0u32; n * span];
            for (v, row) in lazy_adjacency.chunks_exact_mut(span).enumerate() {
                row[..delta].copy_from_slice(g.neighbors(v));
                row[delta..].fill(v as u32);
            }
            let lazy_adjacency = &lazy_adjacency[..];
            executor.map_slices_mut(&mut flat, &ranges, |w, chunk| {
                let first_vertex = vertex_spans[w].start;
                let span_len = vertex_spans[w].len();
                let spec_vertex = |v: usize, slots: &mut [usize]| {
                    let mut vrng = ChaCha8Rng::seed_from_u64(derive_stream_seed(base, v as u64));
                    for slot in slots {
                        *slot = direct_walk_endpoint(&lazy, v, t, &mut vrng);
                    }
                };
                let mut j = 0;
                while j + WALK_LANES <= span_len {
                    let vertices: [u32; WALK_LANES] =
                        core::array::from_fn(|l| (first_vertex + j + l) as u32);
                    let seeds: [u64; WALK_LANES] = core::array::from_fn(|l| {
                        derive_stream_seed(base, (first_vertex + j + l) as u64)
                    });
                    let group = &mut chunk[j * k..(j + WALK_LANES) * k];
                    if !lazy_walk_lane_group(lazy_adjacency, span, t, k, vertices, &seeds, group) {
                        for (l, slots) in group.chunks_exact_mut(k).enumerate() {
                            spec_vertex(first_vertex + j + l, slots);
                        }
                    }
                    j += WALK_LANES;
                }
                for jj in j..span_len {
                    spec_vertex(first_vertex + jj, &mut chunk[jj * k..(jj + 1) * k]);
                }
            });
            Ok(flat)
        }
        WalkMode::Faithful => {
            // Keep drawing bundles; prefer certified-independent endpoints and
            // top up with uncertified ones if a vertex falls behind (the paper
            // instead repeats Θ(log n) times; the cap keeps runtime bounded).
            // This mode consumes the master generator directly and stays
            // sequential (it exists for analysis-scale runs and E4).
            let mut out: Vec<Vec<usize>> = vec![Vec::with_capacity(k); n];
            let max_bundles = 4 * k + 8;
            let mut fallback: Vec<Vec<usize>> = vec![Vec::new(); n];
            // Vertices still short of `k` endpoints; an O(1) counter replaces
            // the O(n) `out.iter().all(..)` rescan per bundle. With `k == 0`
            // every vertex is satisfied from the start (`len() < 0` is
            // impossible), so nothing is pending and no bundle is drawn.
            let mut pending = if k == 0 { 0 } else { n };
            for _ in 0..max_bundles {
                if pending == 0 {
                    break;
                }
                let bundle = layered_walk_bundle(&lazy, t, copies_multiplier, rng);
                for v in 0..n {
                    if out[v].len() < k {
                        if bundle.independent[v] {
                            out[v].push(bundle.targets[v]);
                            if out[v].len() == k {
                                pending -= 1;
                            }
                        } else {
                            fallback[v].push(bundle.targets[v]);
                        }
                    }
                }
            }
            for v in 0..n {
                while out[v].len() < k {
                    match fallback[v].pop() {
                        Some(target) => out[v].push(target),
                        None => out[v].push(direct_walk_endpoint(&lazy, v, t, rng)),
                    }
                }
            }
            Ok(out.into_iter().flatten().collect())
        }
    }
}

/// Step 2 of the pipeline: Lemma 5.1.
///
/// Builds the randomized graph `H` on the same vertex set as the Δ-regular
/// graph `g`: every vertex is connected to `out_degree / 2` independent
/// lazy-walk endpoints of length `t`. If `t` is at least the `γ`-mixing time
/// of each component, each component of `H` is close in distribution to
/// `G(n_i, out_degree)` and in particular connected w.h.p.
///
/// # Errors
///
/// Propagates [`CoreError`] from [`independent_lazy_walks`].
pub fn randomize<R: Rng + ?Sized>(
    g: &Graph,
    t: usize,
    out_degree: usize,
    mode: WalkMode,
    copies_multiplier: usize,
    ctx: &mut MpcContext,
    rng: &mut R,
) -> Result<Graph, CoreError> {
    ctx.begin_phase("randomize");
    let walks_per_vertex = (out_degree / 2).max(1);
    let endpoints =
        independent_lazy_walks(g, t, walks_per_vertex, mode, copies_multiplier, ctx, rng)?;
    let n = g.num_vertices();
    let mut builder = GraphBuilder::with_capacity(n, n * walks_per_vertex);
    for (v, targets) in endpoints.chunks_exact(walks_per_vertex).enumerate() {
        builder
            .add_edges(targets.iter().map(|&u| (v, u)))
            .expect("walk endpoints in range");
    }
    ctx.charge_shuffle(2 * n * walks_per_vertex);
    ctx.end_phase();
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wcc_graph::prelude::*;
    use wcc_graph::spectral::{lazy_walk_distribution, total_variation_distance};
    use wcc_mpc::MpcConfig;

    fn ctx_for(words: usize) -> MpcContext {
        MpcContext::new(MpcConfig::for_input_size(words.max(64), 0.5).permissive())
    }

    #[test]
    fn direct_walk_stays_in_component() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::planted_expander_components(&[30, 30], 6, &mut rng);
        let cc = connected_components(&g);
        for v in (0..g.num_vertices()).step_by(5) {
            let end = direct_walk_endpoint(&g, v, 40, &mut rng);
            assert!(cc.same_component(v, end));
        }
    }

    #[test]
    fn zero_walks_per_vertex_returns_an_empty_arena_without_simulating() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::random_regular_permutation_graph(40, 6, &mut rng);
        for mode in [WalkMode::Direct, WalkMode::Faithful] {
            let mut ctx = ctx_for(4 * g.num_edges());
            let mut walk_rng = ChaCha8Rng::seed_from_u64(9);
            let flat = independent_lazy_walks(&g, 8, 0, mode, 2, &mut ctx, &mut walk_rng)
                .expect("k = 0 is a valid (trivial) request");
            assert!(
                flat.is_empty(),
                "mode {mode:?} produced endpoints for k = 0"
            );
        }
    }

    #[test]
    fn direct_walk_on_isolated_vertex_stays_put() {
        let g = Graph::empty(3);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert_eq!(direct_walk_endpoint(&g, 1, 10, &mut rng), 1);
        assert_eq!(direct_walk_visits(&g, 1, 10, &mut rng), vec![1]);
    }

    #[test]
    fn walk_visits_cover_small_cycle() {
        let g = generators::cycle(6);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let visits = direct_walk_visits(&g, 0, 500, &mut rng);
        assert_eq!(visits.len(), 6);
        assert_eq!(visits[0], 0);
    }

    #[test]
    fn layered_bundle_endpoints_distribute_like_true_walks() {
        // On a Δ-regular expander, endpoints of length-t walks from a fixed
        // start should match the exact walk distribution. We test the
        // *aggregate* endpoint distribution over all starts, which for a
        // vertex-transitive-ish random regular graph must be near uniform.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let n = 60;
        let g = generators::random_regular_permutation_graph(n, 8, &mut rng);
        let t = 16;
        let mut counts = vec![0f64; n];
        let reps = 40;
        for _ in 0..reps {
            let bundle = layered_walk_bundle(&g, t, 2, &mut rng);
            for &target in &bundle.targets {
                counts[target] += 1.0;
            }
        }
        let total: f64 = counts.iter().sum();
        let empirical: Vec<f64> = counts.iter().map(|c| c / total).collect();
        let uniform = vec![1.0 / n as f64; n];
        let tvd = total_variation_distance(&empirical, &uniform);
        assert!(
            tvd < 0.15,
            "endpoint distribution far from uniform: tvd = {tvd}"
        );
    }

    #[test]
    fn layered_bundle_certifies_many_independent_walks_on_regular_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::random_regular_permutation_graph(80, 8, &mut rng);
        let bundle = layered_walk_bundle(&g, 8, 2, &mut rng);
        let independent = bundle.independent.iter().filter(|&&b| b).count();
        // Lemma 5.3: each walk is independent with probability >= 1/2; demand
        // a conservative third to keep the test robust.
        assert!(
            independent * 3 >= g.num_vertices(),
            "only {independent}/{} walks certified independent",
            g.num_vertices()
        );
    }

    #[test]
    fn hub_graphs_yield_fewer_independent_walks_than_regular_graphs() {
        // The motivation for regularization (Section 3): on a star, walks all
        // collide in the centre.
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let star = generators::star(81);
        let regular = generators::random_regular_permutation_graph(81, 8, &mut rng);
        let b_star = layered_walk_bundle(&star, 8, 2, &mut rng);
        let b_reg = layered_walk_bundle(&regular, 8, 2, &mut rng);
        let ind_star = b_star.independent.iter().filter(|&&b| b).count();
        let ind_reg = b_reg.independent.iter().filter(|&&b| b).count();
        assert!(
            ind_reg > 2 * ind_star,
            "regular graph should certify far more independent walks ({ind_reg} vs {ind_star})"
        );
    }

    #[test]
    fn lazy_view_walks_match_materialized_self_loops() {
        // The whole point of the virtual lazy view: for a fixed per-vertex
        // RNG stream, endpoints and visit sets are *bit-identical* to walking
        // the materialised `with_self_loops` graph — not merely close in
        // distribution. This is what lets the LazyView migration keep every
        // golden output.
        let mut rng = ChaCha8Rng::seed_from_u64(40);
        let g = generators::random_regular_permutation_graph(60, 6, &mut rng);
        let delta = g.max_degree();
        let materialized = g.with_self_loops(delta);
        let view = g.lazy_view(delta);
        for v in (0..g.num_vertices()).step_by(3) {
            for t in [1usize, 7, 32] {
                let mut rng_a = ChaCha8Rng::seed_from_u64(1000 + v as u64 + t as u64);
                let mut rng_b = rng_a.clone();
                assert_eq!(
                    direct_walk_endpoint(&materialized, v, t, &mut rng_a),
                    direct_walk_endpoint(&view, v, t, &mut rng_b),
                    "endpoint diverged at v={v}, t={t}"
                );
                // The streams must also have advanced identically.
                assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
                let mut rng_a = ChaCha8Rng::seed_from_u64(2000 + v as u64 + t as u64);
                let mut rng_b = rng_a.clone();
                assert_eq!(
                    direct_walk_visits(&materialized, v, t, &mut rng_a),
                    direct_walk_visits(&view, v, t, &mut rng_b),
                    "visit order diverged at v={v}, t={t}"
                );
            }
        }
        // The faithful layered structure sees the same virtual adjacency too.
        let mut rng_a = ChaCha8Rng::seed_from_u64(3000);
        let mut rng_b = rng_a.clone();
        let bundle_a = layered_walk_bundle(&materialized, 4, 2, &mut rng_a);
        let bundle_b = layered_walk_bundle(&view, 4, 2, &mut rng_b);
        assert_eq!(bundle_a.targets, bundle_b.targets);
        assert_eq!(bundle_a.independent, bundle_b.independent);
    }

    #[test]
    fn walk_visits_into_reuses_scratch_across_walks() {
        let g = generators::cycle(10);
        let mut scratch = WalkVisitScratch::new();
        let mut out = Vec::new();
        for (v, seed) in [(0usize, 5u64), (3, 6), (7, 7)] {
            let mut rng_a = ChaCha8Rng::seed_from_u64(seed);
            let mut rng_b = rng_a.clone();
            direct_walk_visits_into(&g, v, 50, &mut rng_a, &mut scratch, &mut out);
            assert_eq!(out, direct_walk_visits(&g, v, 50, &mut rng_b));
        }
    }

    #[test]
    fn independent_lazy_walks_rejects_irregular_graphs() {
        let g = generators::star(10);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ctx = ctx_for(100);
        assert!(matches!(
            independent_lazy_walks(&g, 4, 2, WalkMode::Direct, 2, &mut ctx, &mut rng),
            Err(CoreError::BadParams(_))
        ));
    }

    #[test]
    fn lazy_walk_endpoints_match_exact_lazy_distribution() {
        // Empirical endpoint distribution of many direct lazy walks from one
        // vertex vs the exact lazy-walk distribution.
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let g = generators::cycle(12);
        let t = 10;
        let lazy = g.with_self_loops(2);
        let exact = lazy_walk_distribution(&g, 0, t);
        let mut counts = [0f64; 12];
        let reps = 20_000;
        for _ in 0..reps {
            counts[direct_walk_endpoint(&lazy, 0, t, &mut rng)] += 1.0;
        }
        let empirical: Vec<f64> = counts.iter().map(|c| c / reps as f64).collect();
        let tvd = total_variation_distance(&empirical, &exact);
        assert!(
            tvd < 0.03,
            "tvd between empirical and exact lazy walk: {tvd}"
        );
    }

    #[test]
    fn randomize_connects_each_expander_component_and_never_merges_components() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = generators::planted_expander_components(&[50, 70], 8, &mut rng);
        let truth = connected_components(&g);
        let mut ctx = ctx_for(4 * g.num_edges());
        // The planted components are 8-regular expanders; walk long enough to mix.
        let h = randomize(&g, 48, 12, WalkMode::Direct, 2, &mut ctx, &mut rng).unwrap();
        assert_eq!(h.num_vertices(), g.num_vertices());
        let h_cc = connected_components(&h);
        assert!(
            h_cc.same_partition(&truth),
            "randomized graph changed the components"
        );
        assert!(ctx.stats().rounds_in_phase("randomize") >= 1);
    }

    #[test]
    fn randomize_in_faithful_mode_matches_components_too() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let g = generators::random_regular_permutation_graph(40, 6, &mut rng);
        let truth = connected_components(&g);
        let mut ctx = ctx_for(4 * g.num_edges());
        let h = randomize(&g, 16, 8, WalkMode::Faithful, 2, &mut ctx, &mut rng).unwrap();
        assert!(connected_components(&h).same_partition(&truth));
    }

    #[test]
    fn walk_round_charge_is_logarithmic_in_t() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = generators::random_regular_permutation_graph(50, 6, &mut rng);
        let mut ctx_short = ctx_for(4 * g.num_edges());
        let mut ctx_long = ctx_for(4 * g.num_edges());
        independent_lazy_walks(&g, 4, 1, WalkMode::Direct, 2, &mut ctx_short, &mut rng).unwrap();
        independent_lazy_walks(&g, 256, 1, WalkMode::Direct, 2, &mut ctx_long, &mut rng).unwrap();
        let (a, b) = (
            ctx_short.stats().total_rounds(),
            ctx_long.stats().total_rounds(),
        );
        // 64x longer walks cost only ~log-many extra rounds.
        assert!(b > a);
        assert!(b <= a + 14, "rounds went from {a} to {b}");
    }
}
