//! The full pipeline (Section 7, Theorem 4) and the unknown-spectral-gap
//! extension (Corollary 7.1).
//!
//! Theorem 4 composes the three steps:
//!
//! 1. [`regularize`](crate::regularize::regularize) (Lemma 4.1),
//! 2. [`randomize`](crate::walks::randomize) with walk length
//!    `T = O(log(n/γ)/λ)` (Lemma 5.1 + Proposition 2.2), repeated once per
//!    leader-election phase to obtain `F` *fresh* batches (the preprocessing
//!    step of Lemma 6.1),
//! 3. [`grow_components`](crate::leader::grow_components) followed by the
//!    `O(1)`-diameter BFS endgame (Lemma 6.2).
//!
//! Step 2's walks run on the zero-materialisation walk engine: the
//! lazification self-loops are simulated arithmetically by a
//! [`LazyView`](wcc_graph::LazyView) instead of rebuilding the regularized
//! graph's CSR (see `crates/core/src/walks.rs` and DESIGN.md §5), and every
//! phase (`regularize` / `randomize` / `grow-components` /
//! `low-diameter-bfs`) records its wall-clock share alongside the model
//! quantities in [`RoundStats::phases`].
//!
//! The library's [`well_connected_components`] additionally includes the
//! regularized graph's own edges in the endgame contraction, which makes the
//! returned labels *exactly* the connected components of the input for every
//! input and every seed — when the input satisfies the spectral-gap promise
//! this costs nothing (the contraction already has `O(1)` diameter), and when
//! it does not, the extra BFS levels are precisely the graceful degradation
//! the paper describes. [`pipeline_attempt`] exposes the bare, opportunistic
//! algorithm whose output may still be a refinement; Corollary 7.1's adaptive
//! loop ([`adaptive_components`]) is built from it.

use crate::leader::{finish_with_bfs_over_refs, grow_components, GrowPhaseStats};
use crate::params::Params;
use crate::regularize::{regularize, CoreError};
use crate::walks::{randomize, WalkMode};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use wcc_graph::spectral::mixing_time_bound;
use wcc_graph::{ComponentLabels, Graph};
use wcc_mpc::{MpcConfig, MpcContext, RoundStats};

/// Detailed per-stage measurements of one pipeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Number of vertices of the regularized graph (`≈ 2m`).
    pub regularized_vertices: usize,
    /// Walk length `T` used by the randomization step.
    pub walk_length: usize,
    /// Number of fresh random batches (`F`, the number of growth phases).
    pub num_batches: usize,
    /// Degree of each random batch.
    pub batch_degree: usize,
    /// Per-phase growth statistics.
    pub grow_phases: Vec<GrowPhaseStats>,
    /// Levels of the final BFS endgame (the paper's Claim 6.13 predicts
    /// `O(1)` under the spectral-gap promise).
    pub bfs_levels: usize,
    /// The spectral-gap promise the run was given.
    pub lambda: f64,
}

/// The result of a full pipeline run.
#[derive(Debug, Clone)]
pub struct WccResult {
    /// Connected-component labels on the *original* vertex set.
    pub components: ComponentLabels,
    /// MPC resource usage (rounds, communication, memory, per phase).
    pub stats: RoundStats,
    /// Per-stage measurements.
    pub report: PipelineReport,
}

/// Runs the bare opportunistic pipeline (Steps 1–3 exactly as in Theorem 4)
/// against an existing context. The returned labels are always a refinement
/// of the true components; under the spectral-gap promise they equal them
/// with high probability.
///
/// # Errors
///
/// Returns [`CoreError`] if the parameters are invalid or the simulated
/// cluster cannot hold an intermediate.
pub fn pipeline_attempt(
    g: &Graph,
    lambda: f64,
    params: &Params,
    ctx: &mut MpcContext,
    rng: &mut ChaCha8Rng,
) -> Result<(ComponentLabels, PipelineReport), CoreError> {
    run_pipeline(g, lambda, params, ctx, rng, false)
}

/// Theorem 4 with the exactness endgame (see the module docs): identifies all
/// connected components of `g` given a lower bound `lambda` on the spectral
/// gap of each component.
///
/// This is the main entry point of the crate. A fresh simulated cluster is
/// sized from the input (`memory per machine ≈ (2m)^δ`); use
/// [`well_connected_components_with_ctx`] to supply your own.
///
/// # Errors
///
/// Returns [`CoreError`] if `lambda` is not in `(0, 1]`, the parameters are
/// invalid, or the simulated cluster cannot hold an intermediate.
pub fn well_connected_components(
    g: &Graph,
    lambda: f64,
    params: &Params,
    seed: u64,
) -> Result<WccResult, CoreError> {
    let config = recommended_config(g, lambda, params);
    let mut ctx = MpcContext::new(config);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let (components, report) =
        well_connected_components_with_ctx(g, lambda, params, &mut ctx, &mut rng)?;
    Ok(WccResult {
        components,
        report,
        stats: ctx.into_stats(),
    })
}

/// Same as [`well_connected_components`] but charging an existing
/// [`MpcContext`] (so callers can control the cluster configuration and
/// aggregate statistics across runs).
///
/// # Errors
///
/// See [`well_connected_components`].
pub fn well_connected_components_with_ctx(
    g: &Graph,
    lambda: f64,
    params: &Params,
    ctx: &mut MpcContext,
    rng: &mut ChaCha8Rng,
) -> Result<(ComponentLabels, PipelineReport), CoreError> {
    run_pipeline(g, lambda, params, ctx, rng, true)
}

/// Sizes a simulated cluster for running the pipeline on `g` with gap
/// promise `lambda`, following Theorem 4's resource statement: memory per
/// machine `≈ (2m)^δ`, and enough machines that the working set of the
/// randomization step (which scales with the walk length, i.e. with `1/λ`)
/// and the `F` random batches fit — `O(1/λ² · m^{1-δ} · polylog)` machines in
/// the paper's phrasing.
pub fn recommended_config(g: &Graph, lambda: f64, params: &Params) -> MpcConfig {
    let input_words = (2 * g.num_edges() + g.num_vertices()).max(64);
    let n_reg = (2 * g.num_edges()).max(4);
    let gamma = params.gamma(n_reg);
    let lambda = lambda.clamp(1e-9, 1.0);
    let walk = mixing_time_bound(lambda, n_reg, gamma, params.mixing_time_constant)
        .min(params.max_walk_length);
    let working = input_words
        + n_reg * params.batch_degree(n_reg) * params.num_phases(n_reg)
        + 2 * n_reg * walk;
    let base = MpcConfig::for_input_size(input_words, params.delta)
        .permissive()
        .with_threads(params.threads);
    let machines = 4 * working.div_ceil(base.memory_per_machine.max(1)) + 1;
    base.with_machines(machines)
}

fn run_pipeline(
    g: &Graph,
    lambda: f64,
    params: &Params,
    ctx: &mut MpcContext,
    rng: &mut ChaCha8Rng,
    exact_endgame: bool,
) -> Result<(ComponentLabels, PipelineReport), CoreError> {
    params.validate().map_err(CoreError::BadParams)?;
    if !(lambda > 0.0 && lambda <= 1.0) {
        return Err(CoreError::BadParams(format!(
            "lambda must lie in (0, 1], got {lambda}"
        )));
    }
    if g.num_edges() == 0 {
        // Every vertex is isolated; nothing to do.
        let labels = ComponentLabels::from_raw_labels(&(0..g.num_vertices()).collect::<Vec<_>>());
        let report = PipelineReport {
            regularized_vertices: 0,
            walk_length: 0,
            num_batches: 0,
            batch_degree: 0,
            grow_phases: Vec::new(),
            bfs_levels: 0,
            lambda,
        };
        return Ok((labels, report));
    }

    // Step 1: regularization (Lemma 4.1).
    let reg = regularize(g, params, ctx, rng)?;
    let n_reg = reg.graph.num_vertices();

    // Step 2: randomization (Lemma 5.1). Walk length from Proposition 2.2,
    // one fresh batch per growth phase (the Lemma 6.1 preprocessing step).
    let gamma = params.gamma(n_reg);
    let walk_length = mixing_time_bound(lambda, n_reg, gamma, params.mixing_time_constant)
        .min(params.max_walk_length)
        .max(1);
    let batch_degree = params.batch_degree(n_reg);
    let num_batches = params.num_phases(n_reg);
    let mode = if params.faithful_walks {
        WalkMode::Faithful
    } else {
        WalkMode::Direct
    };
    // Resolve the kernel once per pipeline run (environment override wins)
    // so every batch — and every caller embedding these params, including
    // the streaming service — walks with the same kernel.
    let kernel = params.walk_kernel.resolve();
    let mut batches = Vec::with_capacity(num_batches);
    for _ in 0..num_batches {
        batches.push(randomize(
            &reg.graph,
            walk_length,
            batch_degree,
            mode,
            kernel,
            params.layer_copies_multiplier,
            ctx,
            rng,
        )?);
    }

    // Step 3: leader election with quadratic growth (Lemma 6.2) ...
    let grow = grow_components(&batches, params, ctx, rng)?;

    // ... and the O(1)-diameter BFS endgame (Claims 6.13/6.14). The exact
    // variant also contracts the regularized graph's own edges so the output
    // is the true component partition regardless of how well the randomized
    // batches mixed.
    // The BFS only reads the union through its contraction, so hand the
    // batches (and, in the exact variant, the regularized graph) to the
    // endgame as borrowed refs — no union graph is ever materialised.
    let mut refs: Vec<&Graph> = batches.iter().collect();
    if exact_endgame {
        refs.push(&reg.graph);
    }
    let (final_partition, bfs_levels) = finish_with_bfs_over_refs(&refs, &grow.partition, ctx);
    let labels_reg = final_partition.to_component_labels();
    let components = reg.pull_back_labels(&labels_reg);

    let report = PipelineReport {
        regularized_vertices: n_reg,
        walk_length,
        num_batches,
        batch_degree,
        grow_phases: grow.phases,
        bfs_levels,
        lambda,
    };
    Ok((components, report))
}

/// Outcome of the unknown-gap adaptive algorithm (Corollary 7.1).
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// Connected-component labels on the original vertex set.
    pub components: ComponentLabels,
    /// MPC resource usage across all levels.
    pub stats: RoundStats,
    /// The gap guesses `λ'_1 = 1/2, λ'_2 = λ'^{1.1}, …` actually tried.
    pub lambda_levels: Vec<f64>,
    /// Rounds charged at each level.
    pub rounds_per_level: Vec<u64>,
    /// Number of vertices still active (in growable components) entering each
    /// level.
    pub active_vertices_per_level: Vec<usize>,
}

/// Corollary 7.1: connectivity with no prior knowledge of the spectral gap.
///
/// Runs the opportunistic pipeline with `λ' = 1/2`, marks the returned
/// components that are *growable* (some edge of `g` leaves them — detectable
/// in `O(1)` rounds), finalises the rest, and recurses on the growable part
/// with `λ' ← λ'^{1.1}`. Components with gap `λ` are finalised after
/// `O(log log (1/λ))` levels. A final exact merge guards against the
/// (probability `o(1)`) event that some level under-merges even at a correct
/// gap guess, so the returned labels are always exact.
///
/// # Errors
///
/// Returns [`CoreError`] if the parameters are invalid or the simulated
/// cluster cannot hold an intermediate.
pub fn adaptive_components(
    g: &Graph,
    params: &Params,
    seed: u64,
) -> Result<AdaptiveResult, CoreError> {
    params.validate().map_err(CoreError::BadParams)?;
    // Size the cluster for the smallest gap the loop may reach (1/n²), which
    // matches Corollary 7.1's O(1/λ^{2.2}) machine count up to the walk cap.
    let config = recommended_config(g, 1.0 / (g.num_vertices().max(2) as f64).powi(2), params);
    let mut ctx = MpcContext::new(config);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    let n = g.num_vertices();
    let mut final_label: Vec<Option<usize>> = vec![None; n];
    let mut next_label = 0usize;
    let mut active: Vec<usize> = (0..n).collect();
    let mut lambda_prime = 0.5f64;
    let lambda_floor = 1.0 / (n.max(2) as f64 * n.max(2) as f64);
    let mut lambda_levels = Vec::new();
    let mut rounds_per_level = Vec::new();
    let mut active_per_level = Vec::new();

    while !active.is_empty() && lambda_prime >= lambda_floor {
        lambda_levels.push(lambda_prime);
        active_per_level.push(active.len());
        let rounds_before = ctx.stats().total_rounds();
        ctx.begin_phase("adaptive-level");

        let (sub, mapping) = g.induced_subgraph(&active);
        let (labels_sub, _report) =
            pipeline_attempt(&sub, lambda_prime, params, &mut ctx, &mut rng)?;

        // Growable detection (one shuffle over the sub-graph's edges): a
        // component is growable iff some edge of the subgraph crosses out of it.
        ctx.charge_shuffle(2 * sub.num_edges());
        let mut growable = vec![false; labels_sub.num_components()];
        for (u, v) in sub.edge_iter() {
            if labels_sub.label(u) != labels_sub.label(v) {
                growable[labels_sub.label(u)] = true;
                growable[labels_sub.label(v)] = true;
            }
        }

        // Finalise non-growable components; keep the rest active.
        let mut label_map: Vec<Option<usize>> = vec![None; labels_sub.num_components()];
        let mut next_active = Vec::new();
        for (sub_v, &orig_v) in mapping.iter().enumerate() {
            let c = labels_sub.label(sub_v);
            if growable[c] {
                next_active.push(orig_v);
            } else {
                let assigned = *label_map[c].get_or_insert_with(|| {
                    let l = next_label;
                    next_label += 1;
                    l
                });
                final_label[orig_v] = Some(assigned);
            }
        }
        ctx.end_phase();
        rounds_per_level.push(ctx.stats().total_rounds() - rounds_before);
        active = next_active;
        lambda_prime = lambda_prime.powf(1.1);
    }

    // Anything still active gets an exact finish (one BFS over its induced
    // subgraph contraction — the same endgame primitive as Theorem 4).
    if !active.is_empty() {
        ctx.begin_phase("adaptive-final-exact");
        let (sub, mapping) = g.induced_subgraph(&active);
        let labels_sub = wcc_graph::connected_components(&sub);
        ctx.charge_shuffle(2 * sub.num_edges());
        let mut label_map: Vec<Option<usize>> = vec![None; labels_sub.num_components()];
        for (sub_v, &orig_v) in mapping.iter().enumerate() {
            let c = labels_sub.label(sub_v);
            let assigned = *label_map[c].get_or_insert_with(|| {
                let l = next_label;
                next_label += 1;
                l
            });
            final_label[orig_v] = Some(assigned);
        }
        ctx.end_phase();
    }

    let raw: Vec<usize> = final_label
        .into_iter()
        .map(|l| l.expect("every vertex is labelled by the adaptive loop"))
        .collect();
    Ok(AdaptiveResult {
        components: ComponentLabels::from_raw_labels(&raw),
        stats: ctx.into_stats(),
        lambda_levels,
        rounds_per_level,
        active_vertices_per_level: active_per_level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wcc_graph::prelude::*;

    fn params() -> Params {
        Params::test_scale()
    }

    #[test]
    fn pipeline_finds_components_of_planted_expanders() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::planted_expander_components(&[80, 60, 40], 8, &mut rng);
        let truth = connected_components(&g);
        let result = well_connected_components(&g, 0.3, &params(), 7).unwrap();
        assert!(result.components.same_partition(&truth));
        assert!(result.stats.total_rounds() > 0);
        assert_eq!(result.report.num_batches, result.report.grow_phases.len());
        assert!(result.report.walk_length >= 1);
    }

    #[test]
    fn pipeline_is_exact_even_when_the_gap_promise_is_wrong() {
        // A cycle has a tiny spectral gap; promising λ = 0.5 makes the walks
        // far too short, but the exact endgame must still return the truth.
        let g = generators::cycle(120);
        let truth = connected_components(&g);
        let result = well_connected_components(&g, 0.5, &params(), 3).unwrap();
        assert!(result.components.same_partition(&truth));
    }

    #[test]
    fn pipeline_handles_isolated_vertices_and_empty_graphs() {
        let empty = Graph::empty(7);
        let res = well_connected_components(&empty, 0.5, &params(), 1).unwrap();
        assert_eq!(res.components.num_components(), 7);

        let mut g = wcc_graph::GraphBuilder::new(6);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        let g = g.build(); // vertices 3,4,5 isolated
        let res = well_connected_components(&g, 0.5, &params(), 2).unwrap();
        assert_eq!(res.components.num_components(), 4);
        assert!(res.components.same_component(0, 2));
    }

    #[test]
    fn pipeline_records_wall_time_for_every_phase() {
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let g = generators::planted_expander_components(&[60, 50], 8, &mut rng);
        let result = well_connected_components(&g, 0.3, &params(), 9).unwrap();
        let stats = &result.stats;
        for phase in [
            "regularize",
            "randomize",
            "grow-components",
            "low-diameter-bfs",
        ] {
            assert!(
                stats.phases().iter().any(|p| p.name == phase),
                "phase {phase} missing from the breakdown"
            );
        }
        // Wall time accumulates across phases (>= 0 per phase, > 0 in total
        // for a run that does real work).
        assert!(stats.total_phase_wall_time_ms() > 0.0);
        assert!(stats.wall_time_in_phase_ms("randomize") >= 0.0);
    }

    #[test]
    fn pipeline_rejects_bad_lambda() {
        let g = generators::cycle(10);
        assert!(matches!(
            well_connected_components(&g, 0.0, &params(), 1),
            Err(CoreError::BadParams(_))
        ));
        assert!(matches!(
            well_connected_components(&g, 1.5, &params(), 1),
            Err(CoreError::BadParams(_))
        ));
    }

    #[test]
    fn attempt_output_is_a_refinement_even_without_the_exact_endgame() {
        let g = generators::cycle(200); // gap far below the promise
        let truth = connected_components(&g);
        let config = MpcConfig::for_input_size(4 * g.num_edges(), 0.5).permissive();
        let mut ctx = MpcContext::new(config);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let (labels, _) = pipeline_attempt(&g, 0.9, &params(), &mut ctx, &mut rng).unwrap();
        assert!(labels.is_refinement_of(&truth));
    }

    #[test]
    fn report_exposes_quadratic_growth_on_well_connected_inputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = generators::random_regular_permutation_graph(400, 10, &mut rng);
        let result = well_connected_components(&g, 0.3, &params(), 5).unwrap();
        assert_eq!(result.components.num_components(), 1);
        assert!(
            result.report.bfs_levels <= 4,
            "endgame took {} levels",
            result.report.bfs_levels
        );
        let phases = &result.report.grow_phases;
        assert!(!phases.is_empty());
        assert!(phases.last().unwrap().max_part_size > phases.first().unwrap().max_part_size);
    }

    #[test]
    fn adaptive_algorithm_is_exact_on_mixed_gap_inputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        // One expander component (large gap) + one cycle component (tiny gap).
        let expander = generators::random_regular_permutation_graph(150, 10, &mut rng);
        let cycle = generators::cycle(100);
        let (g, _) = generators::disjoint_union_of(&[expander, cycle]);
        let truth = connected_components(&g);
        let result = adaptive_components(&g, &params(), 21).unwrap();
        assert!(result.components.same_partition(&truth));
        assert!(!result.lambda_levels.is_empty());
        assert_eq!(result.lambda_levels[0], 0.5);
        assert_eq!(result.lambda_levels.len(), result.rounds_per_level.len());
        // The gap guesses must decrease.
        for w in result.lambda_levels.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn adaptive_finalizes_expanders_in_the_first_levels() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let g = generators::planted_expander_components(&[120, 90], 10, &mut rng);
        let result = adaptive_components(&g, &params(), 23).unwrap();
        assert_eq!(result.components.num_components(), 2);
        // Everything is an expander, so active vertices should drop to zero
        // after very few levels.
        assert!(
            result.lambda_levels.len() <= 3,
            "took {} levels on pure expanders",
            result.lambda_levels.len()
        );
    }
}
