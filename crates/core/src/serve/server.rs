//! The TCP front-end of the component-query service.
//!
//! One [`Server`] owns a listener thread plus one thread per accepted
//! connection; the ingest loop stays wherever the caller runs it (the `wcc
//! serve` CLI keeps it on the main thread) and feeds the server nothing but
//! published [`ComponentSnapshot`]s. That split is the whole point: the
//! engine's union–find fast path never takes a lock a reader could hold,
//! and readers never wait on a Theorem-4 recompute — they keep answering
//! from the last published epoch until the next one lands.
//!
//! Connection handling is deliberately boring blocking I/O: a `BufReader`
//! per connection decodes length-prefixed request frames, answers are
//! written through a `BufWriter` and flushed exactly when the reader is
//! about to block (no more buffered requests) — which is what makes
//! pipelined clients fast (one flush per window, not per request) and
//! ping-pong clients correct (every request gets its answer before the
//! server sleeps). Shutdown needs no timeouts either: [`Server::shutdown`]
//! closes every live socket, which pops the handlers out of their blocking
//! reads.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use serde::Serialize;
use wcc_mpc::{HistogramSummary, LogHistogram, HISTOGRAM_BUCKETS};

use super::protocol::{read_frame, Request, Response, StatsReply};
use super::snapshot::{ComponentSnapshot, SnapshotCell, SnapshotReader};

/// A running component-query server: an acceptor thread, per-connection
/// handler threads, and the [`SnapshotCell`] they all read from.
///
/// Dropping a `Server` without calling [`Server::shutdown`] performs the
/// same teardown best-effort.
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

/// State shared between the owner, the acceptor and every handler thread.
#[derive(Debug)]
struct Shared {
    cell: SnapshotCell,
    stop: AtomicBool,
    shutdown_requested: AtomicBool,
    queries: AtomicU64,
    not_found: AtomicU64,
    connections: AtomicU64,
    latency: LogHistogram,
    conns: Mutex<Vec<ConnSlot>>,
}

#[derive(Debug)]
struct ConnSlot {
    /// A clone of the handler's socket, kept so shutdown can close it out
    /// from under a blocking read (`None` if the clone failed — the handler
    /// then exits when its client disconnects).
    stream: Option<TcpStream>,
    handle: JoinHandle<()>,
}

/// Point-in-time server counters, shaped for the `wcc serve --json` record.
#[derive(Debug, Clone, Serialize)]
pub struct ServerTelemetry {
    /// Current published epoch.
    pub epoch: u64,
    /// Lookup queries answered (same/of/size; control frames not counted).
    pub queries: u64,
    /// Lookups answered `NOT_FOUND`.
    pub not_found: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Server-side per-query service time, nanoseconds.
    pub latency_ns: HistogramSummary,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// accepting connections. The published snapshot starts empty at
    /// epoch 0; queries answer `NOT_FOUND` until the first
    /// [`Server::publish`].
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from binding the listener.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cell: SnapshotCell::new(),
            stop: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            queries: AtomicU64::new(0),
            not_found: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            latency: LogHistogram::new(),
            conns: Mutex::new(Vec::new()),
        });
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::spawn(move || accept_loop(listener, acceptor_shared));
        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Publishes a snapshot to all readers; returns its epoch. Called by
    /// the ingest loop after each applied batch.
    pub fn publish(&self, snapshot: ComponentSnapshot) -> u64 {
        self.shared.cell.publish(snapshot)
    }

    /// The epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.shared.cell.epoch()
    }

    /// `true` once any client has sent a `SHUTDOWN` request. The serve loop
    /// polls this to decide when to tear the process down.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::Acquire)
    }

    /// Current counters and latency summary.
    pub fn telemetry(&self) -> ServerTelemetry {
        ServerTelemetry {
            epoch: self.shared.cell.epoch(),
            queries: self.shared.queries.load(Ordering::Relaxed),
            not_found: self.shared.not_found.load(Ordering::Relaxed),
            connections: self.shared.connections.load(Ordering::Relaxed),
            latency_ns: self.shared.latency.summary(),
        }
    }

    /// Stops accepting, closes every live connection and joins all server
    /// threads.
    ///
    /// # Errors
    ///
    /// Currently infallible (`io::Result` reserved for future teardown
    /// steps); socket close errors on dead connections are ignored.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.teardown();
        Ok(())
    }

    fn teardown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Wake the acceptor out of `accept` with a throwaway connection; it
        // sees `stop` and exits. If the connect fails the listener is
        // already dead and the acceptor has exited on the error path.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let slots: Vec<ConnSlot> = {
            let mut conns = self.shared.conns.lock().expect("connection list poisoned");
            conns.drain(..).collect()
        };
        for slot in slots {
            if let Some(stream) = &slot.stream {
                let _ = stream.shutdown(Shutdown::Both);
            }
            let _ = slot.handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.teardown();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            // Transient accept errors (aborted handshakes, fd pressure):
            // keep serving the clients we have.
            Err(_) => continue,
        };
        shared.connections.fetch_add(1, Ordering::Relaxed);
        let shutdown_handle = stream.try_clone().ok();
        let handler_shared = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            let _ = handle_connection(stream, &handler_shared);
        });
        let mut conns = shared.conns.lock().expect("connection list poisoned");
        // Reap finished handlers so a long-lived server with churning
        // clients doesn't accumulate slots.
        conns.retain(|slot| !slot.handle.is_finished());
        conns.push(ConnSlot {
            stream: shutdown_handle,
            handle,
        });
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    // Responses are flushed in application-controlled windows; Nagle would
    // only add latency on top.
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::with_capacity(1 << 16, stream.try_clone()?);
    let mut writer = BufWriter::with_capacity(1 << 16, stream);
    let mut snapshots = SnapshotReader::new(&shared.cell);
    let mut frame = Vec::with_capacity(32);
    let mut out = Vec::with_capacity(512);
    loop {
        if shared.stop.load(Ordering::Acquire) {
            out.clear();
            Response::ShuttingDown.encode(&mut out);
            let _ = writer.write_all(&out);
            break;
        }
        if read_frame(&mut reader, &mut frame)?.is_none() {
            break; // clean client close
        }
        let started = Instant::now();
        let response = match Request::decode(&frame) {
            Ok(request) => respond(request, &mut snapshots, shared),
            Err(_) => Response::BadRequest,
        };
        let is_lookup = matches!(
            response,
            Response::Same { .. }
                | Response::Component { .. }
                | Response::Size { .. }
                | Response::NotFound { .. }
        );
        out.clear();
        response.encode(&mut out);
        writer.write_all(&out)?;
        if is_lookup {
            shared.queries.fetch_add(1, Ordering::Relaxed);
            shared
                .latency
                .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        let closing = matches!(response, Response::ShuttingDown);
        // The pipelining contract: flush exactly when the next read would
        // block (no buffered requests left) or the connection is ending.
        if closing || reader.buffer().is_empty() {
            writer.flush()?;
        }
        if closing {
            break;
        }
    }
    writer.flush().ok();
    Ok(())
}

fn respond(request: Request, snapshots: &mut SnapshotReader, shared: &Shared) -> Response {
    match request {
        Request::SameComponent { u, v } => {
            let snap = snapshots.current(&shared.cell);
            match snap.same_component(u, v) {
                Some(same) => Response::Same {
                    epoch: snap.epoch(),
                    same,
                },
                None => not_found(snap.epoch(), shared),
            }
        }
        Request::ComponentOf { v } => {
            let snap = snapshots.current(&shared.cell);
            match snap.component_of(v) {
                Some(component) => Response::Component {
                    epoch: snap.epoch(),
                    component,
                },
                None => not_found(snap.epoch(), shared),
            }
        }
        Request::ComponentSize { c } => {
            let snap = snapshots.current(&shared.cell);
            match snap.component_size(c) {
                Some(size) => Response::Size {
                    epoch: snap.epoch(),
                    size,
                },
                None => not_found(snap.epoch(), shared),
            }
        }
        Request::Stats => {
            let snap = snapshots.current(&shared.cell);
            Response::Stats(StatsReply {
                epoch: snap.epoch(),
                vertices: snap.num_vertices() as u64,
                edges: snap.num_edges(),
                components: snap.num_components() as u64,
                batches: snap.batches(),
                recomputes: snap.recomputes(),
                queries: shared.queries.load(Ordering::Relaxed),
                not_found: shared.not_found.load(Ordering::Relaxed),
                connections: shared.connections.load(Ordering::Relaxed),
                latency_buckets: shared.latency.counts()[..HISTOGRAM_BUCKETS].to_vec(),
            })
        }
        Request::Ping => Response::Pong {
            epoch: shared.cell.epoch(),
        },
        Request::Shutdown => {
            shared.shutdown_requested.store(true, Ordering::Release);
            Response::ShuttingDown
        }
    }
}

fn not_found(epoch: u64, shared: &Shared) -> Response {
    shared.not_found.fetch_add(1, Ordering::Relaxed);
    Response::NotFound { epoch }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{IncrementalComponents, StreamParams};

    /// A minimal blocking client: writes one request, reads one response.
    struct Client {
        reader: BufReader<TcpStream>,
        writer: BufWriter<TcpStream>,
        frame: Vec<u8>,
        out: Vec<u8>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            Client {
                reader: BufReader::new(stream.try_clone().unwrap()),
                writer: BufWriter::new(stream),
                frame: Vec::new(),
                out: Vec::new(),
            }
        }

        fn send(&mut self, request: Request) {
            self.out.clear();
            request.encode(&mut self.out);
            self.writer.write_all(&self.out).unwrap();
            self.writer.flush().unwrap();
        }

        fn recv(&mut self) -> Response {
            read_frame(&mut self.reader, &mut self.frame)
                .unwrap()
                .expect("server closed mid-conversation");
            Response::decode(&self.frame).unwrap()
        }

        fn call(&mut self, request: Request) -> Response {
            self.send(request);
            self.recv()
        }
    }

    #[test]
    fn serves_snapshots_over_tcp_end_to_end() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.local_addr());

        // Epoch 0: nothing published, everything misses.
        assert_eq!(client.call(Request::Ping), Response::Pong { epoch: 0 });
        assert_eq!(
            client.call(Request::SameComponent { u: 0, v: 1 }),
            Response::NotFound { epoch: 0 }
        );

        // Ingest a triangle plus an isolated-ish pair, publish epoch 1.
        let mut engine = IncrementalComponents::new(StreamParams::test_scale(), 7);
        engine
            .apply_batch(&[(0, 1), (1, 2), (2, 0), (10, 11)])
            .unwrap();
        server.publish(engine.snapshot(1));

        assert_eq!(
            client.call(Request::SameComponent { u: 0, v: 2 }),
            Response::Same {
                epoch: 1,
                same: true
            }
        );
        assert_eq!(
            client.call(Request::SameComponent { u: 0, v: 10 }),
            Response::Same {
                epoch: 1,
                same: false
            }
        );
        assert_eq!(
            client.call(Request::ComponentOf { v: 11 }),
            Response::Component {
                epoch: 1,
                component: 10
            }
        );
        assert_eq!(
            client.call(Request::ComponentSize { c: 2 }),
            Response::Size { epoch: 1, size: 3 }
        );

        // A second client sees the same epoch; stats add up.
        let mut other = Client::connect(server.local_addr());
        match other.call(Request::Stats) {
            Response::Stats(stats) => {
                assert_eq!(stats.epoch, 1);
                assert_eq!(stats.vertices, 5);
                assert_eq!(stats.components, 2);
                // Five lookups so far: the epoch-0 NotFound probe plus the
                // four epoch-1 queries (Ping and Stats are not lookups).
                assert_eq!(stats.queries, 5);
                assert_eq!(stats.not_found, 1);
                assert_eq!(stats.connections, 2);
                assert_eq!(stats.latency_buckets.len(), HISTOGRAM_BUCKETS);
                let recorded: u64 = stats.latency_buckets.iter().sum();
                assert_eq!(recorded, 5);
            }
            other => panic!("expected stats, got {other:?}"),
        }

        // Pipelined window: three requests in one flush, answers in order.
        client.send(Request::Ping);
        client.send(Request::ComponentOf { v: 0 });
        client.send(Request::SameComponent { u: 10, v: 11 });
        assert_eq!(client.recv(), Response::Pong { epoch: 1 });
        assert!(matches!(
            client.recv(),
            Response::Component { epoch: 1, .. }
        ));
        assert_eq!(
            client.recv(),
            Response::Same {
                epoch: 1,
                same: true
            }
        );

        // Shutdown request: acknowledged, flag raised, connection closed.
        assert!(!server.shutdown_requested());
        assert_eq!(other.call(Request::Shutdown), Response::ShuttingDown);
        assert!(server.shutdown_requested());

        let telemetry = server.telemetry();
        assert_eq!(telemetry.queries, 7);
        assert_eq!(telemetry.not_found, 1);
        assert!(telemetry.latency_ns.count >= 7);
        server.shutdown().unwrap();
    }

    #[test]
    fn shutdown_closes_idle_connections() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let mut idle = Client::connect(addr);
        assert_eq!(idle.call(Request::Ping), Response::Pong { epoch: 0 });
        // The client now sits idle; shutdown must not hang on it.
        server.shutdown().unwrap();
        // The socket is closed from the server side: the next read reports
        // end-of-stream (possibly after a ShuttingDown notice).
        loop {
            match read_frame(&mut idle.reader, &mut idle.frame) {
                Ok(Some(())) => {
                    assert_eq!(
                        Response::decode(&idle.frame).unwrap(),
                        Response::ShuttingDown
                    );
                }
                Ok(None) => break,
                Err(_) => break,
            }
        }
    }

    #[test]
    fn bad_frames_answer_bad_request_and_keep_the_connection() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.local_addr());
        // A well-framed but unknown tag.
        client.out.clear();
        client.out.extend_from_slice(&1u32.to_le_bytes());
        client.out.push(200);
        let bytes = client.out.clone();
        client.writer.write_all(&bytes).unwrap();
        client.writer.flush().unwrap();
        assert_eq!(client.recv(), Response::BadRequest);
        // The connection still works.
        assert_eq!(client.call(Request::Ping), Response::Pong { epoch: 0 });
        server.shutdown().unwrap();
    }
}
