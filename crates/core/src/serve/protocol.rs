//! The length-prefixed binary wire protocol of `wcc serve`.
//!
//! Everything is little-endian, mirroring the `WCCS` chunk format. A frame
//! is a `u32` byte length (counting everything *after* the length field)
//! followed by a one-byte tag and the tag's fixed payload:
//!
//! ```text
//! request  := len:u32 tag:u8 payload
//!   tag 1  SAME_COMPONENT  u:u64 v:u64
//!   tag 2  COMPONENT_OF    v:u64
//!   tag 3  COMPONENT_SIZE  c:u64
//!   tag 4  STATS
//!   tag 5  PING
//!   tag 6  SHUTDOWN
//!
//! response := len:u32 status:u8 payload
//!   status 1  SAME       epoch:u64 same:u8
//!   status 2  COMPONENT  epoch:u64 component:u64
//!   status 3  SIZE       epoch:u64 size:u64
//!   status 4  STATS      epoch:u64 vertices:u64 edges:u64 components:u64
//!                        batches:u64 recomputes:u64 queries:u64
//!                        not_found:u64 connections:u64
//!                        buckets:u16 count:u64 × buckets
//!   status 5  PONG       epoch:u64
//!   status 6  SHUTTING_DOWN
//!   status 16 NOT_FOUND  epoch:u64
//!   status 17 BAD_REQUEST
//! ```
//!
//! Every data-carrying response is stamped with the **epoch** of the
//! snapshot that answered it — the number of ingested batches at publish
//! time. That single field is what makes the service *testable*: a client
//! (the differential suite, `wcc_loadgen --check`) can compare each answer
//! against ground truth computed for exactly that prefix of the stream,
//! so a torn read — an answer matching no epoch — cannot hide.
//!
//! `NOT_FOUND` is an answer, not an error: the queried vertex has not
//! appeared in the stream as of the stamped epoch. `BAD_REQUEST` covers
//! undecodable frames on an otherwise healthy connection; framing-level
//! corruption (an oversized or zero length prefix) tears the connection
//! down instead, since byte alignment is already lost.
//!
//! Clients may pipeline: the server answers frames in order and flushes its
//! write buffer whenever it is about to block on the socket, so a client
//! that writes a window of requests and then reads a window of responses
//! never deadlocks (each response is ≤ ~450 bytes; a stats reply is the
//! largest at `9·8 + 2 + 48·8 = 458` bytes, far below any kernel buffer).

use std::io::{self, Read};

/// Hard cap on the byte length of a frame (requests are ≤ 17 bytes and the
/// largest response under 512 — anything bigger is framing corruption).
pub const MAX_FRAME_LEN: u32 = 1 << 16;

/// A client → server message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Are `u` and `v` in the same component?
    SameComponent {
        /// First raw vertex id.
        u: u64,
        /// Second raw vertex id.
        v: u64,
    },
    /// The component id of `v` (the raw id of its component's oldest
    /// member).
    ComponentOf {
        /// Raw vertex id.
        v: u64,
    },
    /// The size of the component containing `c` (any member id works).
    ComponentSize {
        /// Raw vertex id of any member.
        c: u64,
    },
    /// Server counters, snapshot metadata and the latency histogram.
    Stats,
    /// Liveness probe; the reply carries the current epoch (used by clients
    /// to wait for ingestion progress).
    Ping,
    /// Ask the server process to shut down (the serve loop polls for this).
    Shutdown,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::SameComponent`].
    Same {
        /// Epoch of the answering snapshot.
        epoch: u64,
        /// Whether the two vertices share a component.
        same: bool,
    },
    /// Answer to [`Request::ComponentOf`].
    Component {
        /// Epoch of the answering snapshot.
        epoch: u64,
        /// The component id.
        component: u64,
    },
    /// Answer to [`Request::ComponentSize`].
    Size {
        /// Epoch of the answering snapshot.
        epoch: u64,
        /// Members in the component.
        size: u64,
    },
    /// Answer to [`Request::Stats`].
    Stats(StatsReply),
    /// Answer to [`Request::Ping`].
    Pong {
        /// Current published epoch.
        epoch: u64,
    },
    /// Sent for [`Request::Shutdown`] and to connections the server closes
    /// while stopping.
    ShuttingDown,
    /// A queried vertex has not appeared in the stream as of `epoch`.
    NotFound {
        /// Epoch of the answering snapshot.
        epoch: u64,
    },
    /// The request frame decoded to no known request.
    BadRequest,
}

/// The payload of [`Response::Stats`]: snapshot metadata plus server
/// counters, including the raw buckets of the server-side latency histogram
/// (mergeable into any [`wcc_mpc::LogHistogram`] via `absorb_counts`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsReply {
    /// Current published epoch.
    pub epoch: u64,
    /// Vertices in the current snapshot.
    pub vertices: u64,
    /// Accumulated edges in the current snapshot.
    pub edges: u64,
    /// Components in the current snapshot.
    pub components: u64,
    /// Batches ingested when the snapshot was built.
    pub batches: u64,
    /// Slow-path recomputes performed.
    pub recomputes: u64,
    /// Lookup queries answered so far (same/of/size; control frames not
    /// counted).
    pub queries: u64,
    /// Lookups that answered `NOT_FOUND`.
    pub not_found: u64,
    /// Connections accepted so far.
    pub connections: u64,
    /// Power-of-two latency buckets (nanoseconds), server-side per-query
    /// service time.
    pub latency_buckets: Vec<u64>,
}

/// A malformed frame or payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The length prefix is zero or beyond [`MAX_FRAME_LEN`].
    BadFrameLen(u32),
    /// The tag/status byte is not part of the protocol.
    UnknownTag(u8),
    /// The payload does not have the exact length its tag requires.
    WrongPayloadLen {
        /// The offending tag/status byte.
        tag: u8,
        /// Bytes present after the tag.
        got: usize,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadFrameLen(len) => {
                write!(f, "frame length {len} outside 1..={MAX_FRAME_LEN}")
            }
            ProtocolError::UnknownTag(tag) => write!(f, "unknown frame tag {tag}"),
            ProtocolError::WrongPayloadLen { tag, got } => {
                write!(f, "tag {tag} with wrong payload length {got}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<ProtocolError> for io::Error {
    fn from(err: ProtocolError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, err)
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(payload: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(payload[at..at + 8].try_into().expect("length checked"))
}

fn get_u16(payload: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(payload[at..at + 2].try_into().expect("length checked"))
}

/// Writes the length prefix for a frame body appended after `start`.
fn finish_frame(out: &mut [u8], start: usize) {
    let len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

impl Request {
    /// Appends the full frame (length prefix included) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&[0; 4]);
        match *self {
            Request::SameComponent { u, v } => {
                out.push(1);
                put_u64(out, u);
                put_u64(out, v);
            }
            Request::ComponentOf { v } => {
                out.push(2);
                put_u64(out, v);
            }
            Request::ComponentSize { c } => {
                out.push(3);
                put_u64(out, c);
            }
            Request::Stats => out.push(4),
            Request::Ping => out.push(5),
            Request::Shutdown => out.push(6),
        }
        finish_frame(out, start);
    }

    /// Decodes a frame body (everything after the length prefix).
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] on an unknown tag or a payload whose length does
    /// not match the tag.
    pub fn decode(frame: &[u8]) -> Result<Request, ProtocolError> {
        let (&tag, payload) = frame.split_first().ok_or(ProtocolError::BadFrameLen(0))?;
        let expect = |want: usize| -> Result<(), ProtocolError> {
            if payload.len() == want {
                Ok(())
            } else {
                Err(ProtocolError::WrongPayloadLen {
                    tag,
                    got: payload.len(),
                })
            }
        };
        match tag {
            1 => {
                expect(16)?;
                Ok(Request::SameComponent {
                    u: get_u64(payload, 0),
                    v: get_u64(payload, 8),
                })
            }
            2 => {
                expect(8)?;
                Ok(Request::ComponentOf {
                    v: get_u64(payload, 0),
                })
            }
            3 => {
                expect(8)?;
                Ok(Request::ComponentSize {
                    c: get_u64(payload, 0),
                })
            }
            4 => {
                expect(0)?;
                Ok(Request::Stats)
            }
            5 => {
                expect(0)?;
                Ok(Request::Ping)
            }
            6 => {
                expect(0)?;
                Ok(Request::Shutdown)
            }
            other => Err(ProtocolError::UnknownTag(other)),
        }
    }
}

impl Response {
    /// Appends the full frame (length prefix included) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&[0; 4]);
        match self {
            Response::Same { epoch, same } => {
                out.push(1);
                put_u64(out, *epoch);
                out.push(u8::from(*same));
            }
            Response::Component { epoch, component } => {
                out.push(2);
                put_u64(out, *epoch);
                put_u64(out, *component);
            }
            Response::Size { epoch, size } => {
                out.push(3);
                put_u64(out, *epoch);
                put_u64(out, *size);
            }
            Response::Stats(stats) => {
                out.push(4);
                for v in [
                    stats.epoch,
                    stats.vertices,
                    stats.edges,
                    stats.components,
                    stats.batches,
                    stats.recomputes,
                    stats.queries,
                    stats.not_found,
                    stats.connections,
                ] {
                    put_u64(out, v);
                }
                let buckets = stats.latency_buckets.len().min(u16::MAX as usize);
                out.extend_from_slice(&(buckets as u16).to_le_bytes());
                for &count in &stats.latency_buckets[..buckets] {
                    put_u64(out, count);
                }
            }
            Response::Pong { epoch } => {
                out.push(5);
                put_u64(out, *epoch);
            }
            Response::ShuttingDown => out.push(6),
            Response::NotFound { epoch } => {
                out.push(16);
                put_u64(out, *epoch);
            }
            Response::BadRequest => out.push(17),
        }
        finish_frame(out, start);
    }

    /// Decodes a frame body (everything after the length prefix).
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] on an unknown status byte or a payload whose length
    /// does not match it.
    pub fn decode(frame: &[u8]) -> Result<Response, ProtocolError> {
        let (&tag, payload) = frame.split_first().ok_or(ProtocolError::BadFrameLen(0))?;
        let expect = |want: usize| -> Result<(), ProtocolError> {
            if payload.len() == want {
                Ok(())
            } else {
                Err(ProtocolError::WrongPayloadLen {
                    tag,
                    got: payload.len(),
                })
            }
        };
        match tag {
            1 => {
                expect(9)?;
                Ok(Response::Same {
                    epoch: get_u64(payload, 0),
                    same: payload[8] != 0,
                })
            }
            2 => {
                expect(16)?;
                Ok(Response::Component {
                    epoch: get_u64(payload, 0),
                    component: get_u64(payload, 8),
                })
            }
            3 => {
                expect(16)?;
                Ok(Response::Size {
                    epoch: get_u64(payload, 0),
                    size: get_u64(payload, 8),
                })
            }
            4 => {
                if payload.len() < 74 {
                    return Err(ProtocolError::WrongPayloadLen {
                        tag,
                        got: payload.len(),
                    });
                }
                let buckets = get_u16(payload, 72) as usize;
                expect(74 + 8 * buckets)?;
                Ok(Response::Stats(StatsReply {
                    epoch: get_u64(payload, 0),
                    vertices: get_u64(payload, 8),
                    edges: get_u64(payload, 16),
                    components: get_u64(payload, 24),
                    batches: get_u64(payload, 32),
                    recomputes: get_u64(payload, 40),
                    queries: get_u64(payload, 48),
                    not_found: get_u64(payload, 56),
                    connections: get_u64(payload, 64),
                    latency_buckets: (0..buckets).map(|i| get_u64(payload, 74 + 8 * i)).collect(),
                }))
            }
            5 => {
                expect(8)?;
                Ok(Response::Pong {
                    epoch: get_u64(payload, 0),
                })
            }
            6 => {
                expect(0)?;
                Ok(Response::ShuttingDown)
            }
            16 => {
                expect(8)?;
                Ok(Response::NotFound {
                    epoch: get_u64(payload, 0),
                })
            }
            17 => {
                expect(0)?;
                Ok(Response::BadRequest)
            }
            other => Err(ProtocolError::UnknownTag(other)),
        }
    }
}

/// Reads one frame body into `buf` (cleared first). Returns `Ok(None)` on a
/// clean end-of-stream at a frame boundary; end-of-stream *inside* a frame
/// is an [`io::ErrorKind::UnexpectedEof`] error, and a length prefix outside
/// `1..=`[`MAX_FRAME_LEN`] is [`io::ErrorKind::InvalidData`] (byte alignment
/// is lost, the connection must be torn down).
///
/// # Errors
///
/// Propagates any I/O error from the reader (`Interrupted` is retried).
pub fn read_frame<R: Read>(reader: &mut R, buf: &mut Vec<u8>) -> io::Result<Option<()>> {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < header.len() {
        match reader.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame header",
                ))
            }
            Ok(k) => got += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header);
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(ProtocolError::BadFrameLen(len).into());
    }
    buf.clear();
    buf.resize(len as usize, 0);
    let mut got = 0usize;
    while got < buf.len() {
        match reader.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame body",
                ))
            }
            Ok(k) => got += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut wire = Vec::new();
        req.encode(&mut wire);
        let mut cursor = io::Cursor::new(&wire);
        let mut buf = Vec::new();
        assert_eq!(read_frame(&mut cursor, &mut buf).unwrap(), Some(()));
        assert_eq!(Request::decode(&buf).unwrap(), req);
        assert_eq!(cursor.position() as usize, wire.len());
    }

    fn roundtrip_response(resp: Response) {
        let mut wire = Vec::new();
        resp.encode(&mut wire);
        let mut cursor = io::Cursor::new(&wire);
        let mut buf = Vec::new();
        assert_eq!(read_frame(&mut cursor, &mut buf).unwrap(), Some(()));
        assert_eq!(Response::decode(&buf).unwrap(), resp);
    }

    #[test]
    fn every_message_roundtrips() {
        roundtrip_request(Request::SameComponent { u: 7, v: u64::MAX });
        roundtrip_request(Request::ComponentOf { v: 0 });
        roundtrip_request(Request::ComponentSize { c: 123_456_789 });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Shutdown);

        roundtrip_response(Response::Same {
            epoch: 9,
            same: true,
        });
        roundtrip_response(Response::Same {
            epoch: 9,
            same: false,
        });
        roundtrip_response(Response::Component {
            epoch: 1,
            component: 42,
        });
        roundtrip_response(Response::Size {
            epoch: 2,
            size: 1000,
        });
        roundtrip_response(Response::Pong { epoch: u64::MAX });
        roundtrip_response(Response::ShuttingDown);
        roundtrip_response(Response::NotFound { epoch: 5 });
        roundtrip_response(Response::BadRequest);
        roundtrip_response(Response::Stats(StatsReply {
            epoch: 3,
            vertices: 100,
            edges: 400,
            components: 2,
            batches: 3,
            recomputes: 1,
            queries: 123_456,
            not_found: 7,
            connections: 4,
            latency_buckets: (0..48).map(|i| i * i).collect(),
        }));
    }

    #[test]
    fn pipelined_frames_decode_in_order() {
        let mut wire = Vec::new();
        let reqs = [
            Request::Ping,
            Request::SameComponent { u: 1, v: 2 },
            Request::ComponentSize { c: 3 },
        ];
        for r in &reqs {
            r.encode(&mut wire);
        }
        let mut cursor = io::Cursor::new(&wire);
        let mut buf = Vec::new();
        for r in &reqs {
            assert_eq!(read_frame(&mut cursor, &mut buf).unwrap(), Some(()));
            assert_eq!(Request::decode(&buf).unwrap(), *r);
        }
        assert_eq!(read_frame(&mut cursor, &mut buf).unwrap(), None);
    }

    #[test]
    fn malformed_frames_are_rejected() {
        // Unknown tag.
        assert_eq!(Request::decode(&[99]), Err(ProtocolError::UnknownTag(99)));
        assert_eq!(Response::decode(&[99]), Err(ProtocolError::UnknownTag(99)));
        // Wrong payload size.
        assert_eq!(
            Request::decode(&[1, 0, 0]),
            Err(ProtocolError::WrongPayloadLen { tag: 1, got: 2 })
        );
        assert_eq!(
            Response::decode(&[5]),
            Err(ProtocolError::WrongPayloadLen { tag: 5, got: 0 })
        );
        // Empty body.
        assert_eq!(Request::decode(&[]), Err(ProtocolError::BadFrameLen(0)));

        // Zero and oversized length prefixes kill the stream.
        let mut cursor = io::Cursor::new(vec![0u8; 4]);
        let mut buf = Vec::new();
        let err = read_frame(&mut cursor, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let mut oversized = ((MAX_FRAME_LEN + 1).to_le_bytes()).to_vec();
        oversized.push(1);
        let err = read_frame(&mut io::Cursor::new(oversized), &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // EOF inside a frame is an error, not a clean close.
        let mut truncated = Vec::new();
        Request::SameComponent { u: 1, v: 2 }.encode(&mut truncated);
        truncated.truncate(truncated.len() - 3);
        let err = read_frame(&mut io::Cursor::new(truncated), &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        let err = read_frame(&mut io::Cursor::new(vec![5u8, 0]), &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
