//! Epoch-versioned immutable snapshots of the streaming decomposition, and
//! the double-buffered cell that hands them to concurrent readers.
//!
//! The concurrency contract of `wcc serve` is asymmetric: one ingest thread
//! owns the [`crate::stream::IncrementalComponents`] engine and mutates it
//! freely (union–find path compression mutates on *reads*, so the engine can
//! never be shared), while many connection threads answer component queries
//! at rates past 10⁵/s. The bridge is a [`ComponentSnapshot`]: a frozen copy
//! of the labelling, published at batch boundaries and never mutated again.
//!
//! * [`SnapshotCell`] is the publication point — an epoch counter
//!   ([`AtomicU64`]) next to a mutex-guarded `Arc` slot. Publishing stores
//!   the new `Arc` under the lock and *then* bumps the epoch with `Release`
//!   ordering.
//! * [`SnapshotReader`] is the per-connection view — it caches the last
//!   `Arc` it saw and revalidates with a single `Acquire` epoch load per
//!   query. The mutex is touched only on the query *after* a publish (to
//!   clone the new `Arc`); in the steady state between batches the read path
//!   is one atomic load plus array indexing, and readers never contend with
//!   each other or with the publisher.
//!
//! This is the classic epoch/RCU read-mostly shape built from `std` parts
//! only. Readers can lag a publish by at most the in-flight query (they
//! linearize before it), but can never observe a *torn* labelling: every
//! answer comes from exactly one immutable snapshot, and carries that
//! snapshot's epoch so the differential suite can check it against
//! from-scratch ground truth for that exact prefix of the stream.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An immutable point-in-time view of the component decomposition, answering
/// the full query surface of the serve protocol without locks.
///
/// Component ids are stable, meaningful names: the component of a vertex is
/// the **raw id of its oldest member** (the member that appeared earliest in
/// the stream). Fast-path growth — new vertices attaching to a standing
/// component — therefore preserves the component's id across epochs; ids
/// change only when components merge (the older side's id wins) or a
/// recompute reshapes the decomposition.
///
/// The heavy payloads (`index`, `raw_of`, `rep`, `size`) sit behind their own
/// `Arc`s so the engine can republish unchanged parts in O(1): a batch of
/// duplicate edges produces a new snapshot (fresh epoch and edge count) whose
/// arrays are *shared* with the previous one.
#[derive(Debug, Clone)]
pub struct ComponentSnapshot {
    epoch: u64,
    /// Raw (external) vertex id → dense id, frozen at publish time.
    index: Arc<HashMap<u64, u32>>,
    /// `raw_of[dense] = raw`, the inverse of `index`.
    raw_of: Arc<Vec<u64>>,
    /// `rep[dense]` = dense id of the oldest member of `dense`'s component.
    rep: Arc<Vec<u32>>,
    /// `size[r]` = component size, valid where `r` is an oldest-member id.
    size: Arc<Vec<u32>>,
    num_components: usize,
    edges: u64,
    batches: u64,
    recomputes: u64,
}

impl ComponentSnapshot {
    /// The snapshot a [`SnapshotCell`] starts from: epoch 0, no vertices —
    /// every lookup misses until the first publish.
    pub fn empty() -> Self {
        ComponentSnapshot {
            epoch: 0,
            index: Arc::new(HashMap::new()),
            raw_of: Arc::new(Vec::new()),
            rep: Arc::new(Vec::new()),
            size: Arc::new(Vec::new()),
            num_components: 0,
            edges: 0,
            batches: 0,
            recomputes: 0,
        }
    }

    /// Assembles a snapshot from engine-built parts (see
    /// `IncrementalComponents::snapshot`, the only production caller).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        epoch: u64,
        index: Arc<HashMap<u64, u32>>,
        raw_of: Arc<Vec<u64>>,
        rep: Arc<Vec<u32>>,
        size: Arc<Vec<u32>>,
        num_components: usize,
        edges: u64,
        batches: u64,
        recomputes: u64,
    ) -> Self {
        debug_assert_eq!(index.len(), raw_of.len());
        debug_assert_eq!(raw_of.len(), rep.len());
        ComponentSnapshot {
            epoch,
            index,
            raw_of,
            rep,
            size,
            num_components,
            edges,
            batches,
            recomputes,
        }
    }

    /// The epoch this snapshot was published as (= batches ingested when it
    /// was built; 0 only for [`ComponentSnapshot::empty`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Distinct vertices in the snapshot.
    pub fn num_vertices(&self) -> usize {
        self.raw_of.len()
    }

    /// Components in the snapshot.
    pub fn num_components(&self) -> usize {
        self.num_components
    }

    /// Accumulated edges (duplicates and self-loops count, matching
    /// [`crate::stream::IncrementalComponents::num_edges`]).
    pub fn num_edges(&self) -> u64 {
        self.edges
    }

    /// Batches the engine had applied when this snapshot was built.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Slow-path recomputes the engine had performed.
    pub fn recomputes(&self) -> u64 {
        self.recomputes
    }

    fn dense(&self, raw: u64) -> Option<usize> {
        self.index.get(&raw).map(|&d| d as usize)
    }

    /// Whether raw vertices `u` and `v` are in the same component; `None` if
    /// either id has not appeared in the stream.
    pub fn same_component(&self, u: u64, v: u64) -> Option<bool> {
        let (du, dv) = (self.dense(u)?, self.dense(v)?);
        Some(self.rep[du] == self.rep[dv])
    }

    /// The component id of raw vertex `v` (the raw id of its component's
    /// oldest member); `None` if `v` has not appeared in the stream.
    pub fn component_of(&self, v: u64) -> Option<u64> {
        let d = self.dense(v)?;
        Some(self.raw_of[self.rep[d] as usize])
    }

    /// The size of the component containing raw vertex `c`. Accepts *any*
    /// member id, so `component_size(component_of(v)) == component_size(v)`;
    /// `None` if `c` has not appeared in the stream.
    pub fn component_size(&self, c: u64) -> Option<u64> {
        let d = self.dense(c)?;
        Some(u64::from(self.size[self.rep[d] as usize]))
    }

    /// `true` when both snapshots share the same underlying label arrays
    /// (i.e. one was republished from the other in O(1) because no batch in
    /// between changed the decomposition). Used by tests and benches to pin
    /// the quiet-republish fast path.
    pub fn shares_structure(&self, other: &ComponentSnapshot) -> bool {
        Arc::ptr_eq(&self.rep, &other.rep) && Arc::ptr_eq(&self.size, &other.size)
    }

    /// `true` when both snapshots share the vertex index (no new vertices
    /// between their builds).
    pub fn shares_index(&self, other: &ComponentSnapshot) -> bool {
        Arc::ptr_eq(&self.index, &other.index) && Arc::ptr_eq(&self.raw_of, &other.raw_of)
    }
}

/// The publication point between the ingest thread and the readers: an epoch
/// counter plus a mutex-guarded `Arc` slot (see the module docs for the
/// ordering argument).
#[derive(Debug)]
pub struct SnapshotCell {
    epoch: AtomicU64,
    slot: Mutex<Arc<ComponentSnapshot>>,
}

impl Default for SnapshotCell {
    fn default() -> Self {
        SnapshotCell::new()
    }
}

impl SnapshotCell {
    /// A cell holding the empty epoch-0 snapshot.
    pub fn new() -> Self {
        SnapshotCell {
            epoch: AtomicU64::new(0),
            slot: Mutex::new(Arc::new(ComponentSnapshot::empty())),
        }
    }

    /// The epoch of the current snapshot. One `Acquire` load — this is the
    /// only thing a reader pays per query in the steady state.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publishes a snapshot, making it visible to all readers, and returns
    /// its epoch. Epochs must increase strictly — the engine derives them
    /// from its batch counter, which only moves forward.
    ///
    /// The slot is replaced under the lock *before* the epoch is bumped with
    /// `Release`: a reader that observes the new epoch (`Acquire`) and takes
    /// the lock is therefore guaranteed to find a snapshot at least that new
    /// in the slot.
    pub fn publish(&self, snapshot: ComponentSnapshot) -> u64 {
        let epoch = snapshot.epoch();
        let mut slot = self.slot.lock().expect("snapshot slot poisoned");
        debug_assert!(
            epoch > self.epoch.load(Ordering::Relaxed),
            "snapshot epochs must increase strictly ({} then {})",
            self.epoch.load(Ordering::Relaxed),
            epoch
        );
        *slot = Arc::new(snapshot);
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }

    /// Clones the current snapshot `Arc` (takes the lock; readers only call
    /// this through [`SnapshotReader`] when the epoch moved).
    pub fn load(&self) -> Arc<ComponentSnapshot> {
        self.slot.lock().expect("snapshot slot poisoned").clone()
    }
}

/// A per-reader cached view of a [`SnapshotCell`]: revalidates with one
/// atomic load per query and re-clones the `Arc` only when the epoch moved.
#[derive(Debug)]
pub struct SnapshotReader {
    cached: Arc<ComponentSnapshot>,
}

impl SnapshotReader {
    /// A reader primed with the cell's current snapshot.
    pub fn new(cell: &SnapshotCell) -> Self {
        SnapshotReader {
            cached: cell.load(),
        }
    }

    /// The freshest snapshot the cell has published. Steady state: one
    /// `Acquire` load and no locking. An in-flight publish may serve the
    /// previous snapshot for one more query (the query linearizes before the
    /// publish); it can never serve a torn one.
    #[inline]
    pub fn current(&mut self, cell: &SnapshotCell) -> &ComponentSnapshot {
        if cell.epoch() != self.cached.epoch() {
            self.cached = cell.load();
        }
        &self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn singleton_snapshot(epoch: u64, raws: &[u64]) -> ComponentSnapshot {
        let index: HashMap<u64, u32> = raws
            .iter()
            .enumerate()
            .map(|(d, &r)| (r, d as u32))
            .collect();
        let n = raws.len();
        ComponentSnapshot::assemble(
            epoch,
            Arc::new(index),
            Arc::new(raws.to_vec()),
            Arc::new((0..n as u32).collect()),
            Arc::new(vec![1; n]),
            n,
            0,
            epoch,
            0,
        )
    }

    #[test]
    fn empty_snapshot_misses_everything() {
        let s = ComponentSnapshot::empty();
        assert_eq!(s.epoch(), 0);
        assert_eq!(s.same_component(0, 1), None);
        assert_eq!(s.component_of(0), None);
        assert_eq!(s.component_size(0), None);
    }

    #[test]
    fn cell_publish_and_reader_revalidation() {
        let cell = SnapshotCell::new();
        let mut reader = SnapshotReader::new(&cell);
        assert_eq!(reader.current(&cell).epoch(), 0);

        cell.publish(singleton_snapshot(1, &[10, 20]));
        let s = reader.current(&cell);
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.same_component(10, 20), Some(false));
        assert_eq!(s.component_of(20), Some(20));
        assert_eq!(s.component_size(10), Some(1));
        assert_eq!(s.same_component(10, 99), None);

        // A stale reader serves its cache until the epoch moves, then
        // re-clones exactly once.
        cell.publish(singleton_snapshot(2, &[10, 20, 30]));
        assert_eq!(reader.current(&cell).epoch(), 2);
        assert_eq!(reader.current(&cell).num_vertices(), 3);
    }

    #[test]
    #[should_panic(expected = "increase strictly")]
    #[cfg(debug_assertions)]
    fn non_monotone_publish_is_rejected() {
        let cell = SnapshotCell::new();
        cell.publish(singleton_snapshot(2, &[1]));
        cell.publish(singleton_snapshot(1, &[1]));
    }

    #[test]
    fn concurrent_readers_always_see_a_coherent_epoch() {
        let cell = Arc::new(SnapshotCell::new());
        let stop = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut reader = SnapshotReader::new(&cell);
                    let mut last = 0u64;
                    while stop.load(Ordering::Acquire) == 0 {
                        let s = reader.current(&cell);
                        // Epochs only move forward, and a snapshot's vertex
                        // count equals its epoch by construction below —
                        // a torn or stale-slot read would break either.
                        assert!(s.epoch() >= last);
                        assert_eq!(s.num_vertices() as u64, s.epoch());
                        last = s.epoch();
                    }
                })
            })
            .collect();
        for e in 1..=100u64 {
            let raws: Vec<u64> = (0..e).collect();
            cell.publish(singleton_snapshot(e, &raws));
        }
        stop.store(1, Ordering::Release);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.epoch(), 100);
    }
}
