//! The concurrent component-query service behind `wcc serve`.
//!
//! This module turns the streaming engine ([`crate::stream`]) into a
//! long-lived server: one ingest thread keeps applying `WCCS` edge batches
//! while many TCP connections answer `same_component` / `component_of` /
//! `component_size` / `stats` queries at 10⁵+ per second — without the
//! readers ever blocking the union–find fast path or waiting out a
//! Theorem-4 recompute. DESIGN.md §11 walks through the full protocol and
//! the reasons behind it.
//!
//! The three layers:
//!
//! * [`snapshot`] — epoch-versioned immutable [`ComponentSnapshot`]s,
//!   published through a [`SnapshotCell`] (atomic epoch + `Arc` flip) and
//!   read through per-connection [`SnapshotReader`]s whose steady-state
//!   cost is one `Acquire` load per query.
//! * [`protocol`] — the length-prefixed little-endian wire format; every
//!   answer is stamped with the epoch of the snapshot that produced it.
//! * [`server`] — the blocking-I/O TCP front end: acceptor thread,
//!   per-connection handlers with flush-on-idle pipelining, latency
//!   telemetry ([`wcc_mpc::LogHistogram`]) and timeout-free shutdown.

pub mod protocol;
pub mod server;
pub mod snapshot;

pub use protocol::{read_frame, ProtocolError, Request, Response, StatsReply, MAX_FRAME_LEN};
pub use server::{Server, ServerTelemetry};
pub use snapshot::{ComponentSnapshot, SnapshotCell, SnapshotReader};
