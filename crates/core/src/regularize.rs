//! Step 1 — Regularization (Section 4, Lemma 4.1).
//!
//! The pipeline first turns the arbitrary sparse input graph `G` into a
//! constant-degree regular graph `H` with the same component structure and
//! (up to constants) the same per-component spectral gap, by taking the
//! replacement product of `G` with a family of constant-degree expander
//! clouds — one cloud of size `deg(v)` per vertex `v`, sampled with
//! `RegularGraphConstruction`:
//!
//! * clouds that fit in one machine (`deg(v) ≤ m^δ`) are rejection-sampled
//!   locally until their spectral gap clears the threshold (Corollary 4.4);
//! * larger clouds are built distributively: sample a random value per
//!   (vertex, permutation) pair, sort to obtain random permutations, read the
//!   edges off the sorted order (Lemma 4.5). The simulator executes this
//!   locally but charges the `O(1/δ)` sort rounds of the lemma.
//!
//! The output records the cloud layout so component labels of `H` can be
//! pulled back to `G` ([`RegularizedGraph::pull_back_labels`]).

use crate::params::Params;
use crate::products::{replacement_product, ProductLayout};

use rand::Rng;
use wcc_graph::{generators, ComponentLabels, Graph};
use wcc_mpc::{MpcContext, MpcError};

/// Errors produced by the pipeline steps in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The supplied parameters are inconsistent.
    BadParams(String),
    /// The MPC simulator rejected the run (memory budget exceeded, …).
    Mpc(MpcError),
    /// An internal sampling step exhausted its retry budget.
    SamplingFailed(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::BadParams(msg) => write!(f, "invalid parameters: {msg}"),
            CoreError::Mpc(e) => write!(f, "MPC simulation error: {e}"),
            CoreError::SamplingFailed(msg) => write!(f, "sampling failed: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<MpcError> for CoreError {
    fn from(e: MpcError) -> Self {
        CoreError::Mpc(e)
    }
}

/// The result of the regularization step.
#[derive(Debug, Clone)]
pub struct RegularizedGraph {
    /// The `(d+1)`-regular replacement product.
    pub graph: Graph,
    /// Degree of the regular graph (`expander_degree + 1`).
    pub degree: usize,
    /// For every vertex of `graph`, the original vertex whose cloud it
    /// belongs to.
    pub cloud_of: Vec<usize>,
    /// Number of vertices of the original graph.
    pub original_vertices: usize,
}

impl RegularizedGraph {
    /// Pulls component labels of the regularized graph back to the original
    /// vertex set (Lemma 4.1's one-to-one correspondence between components).
    ///
    /// Original vertices whose cloud is empty — i.e. isolated vertices of the
    /// input, which the paper excludes by assumption — are given fresh
    /// singleton labels.
    pub fn pull_back_labels(&self, labels: &ComponentLabels) -> ComponentLabels {
        let mut raw = vec![usize::MAX; self.original_vertices];
        for (idx, &orig) in self.cloud_of.iter().enumerate() {
            if raw[orig] == usize::MAX {
                raw[orig] = labels.label(idx);
            }
        }
        // Isolated original vertices get fresh labels after all real ones.
        let mut next = labels.num_components();
        for slot in raw.iter_mut() {
            if *slot == usize::MAX {
                *slot = next;
                next += 1;
            }
        }
        ComponentLabels::from_raw_labels(&raw)
    }
}

/// Builds a `d`-regular cloud on `size` vertices with spectral gap at least
/// `min_gap` (for `size > 2`), mirroring `RegularGraphConstruction`.
///
/// Sizes 1 and 2 get the canonical degenerate clouds (`d` self-loops /
/// `d` parallel edges); everything else is rejection-sampled from the
/// permutation model and retried until the gap clears the threshold.
pub(crate) fn sample_cloud<R: Rng + ?Sized>(
    size: usize,
    d: usize,
    min_gap: f64,
    gap_iters: usize,
    max_attempts: usize,
    rng: &mut R,
) -> Result<Graph, CoreError> {
    match size {
        0 => Ok(Graph::empty(0)),
        1 => Ok(Graph::from_edges_unchecked(1, (0..d).map(|_| (0, 0)))),
        2 => Ok(Graph::from_edges_unchecked(2, (0..d).map(|_| (0, 1)))),
        _ => {
            for _ in 0..max_attempts {
                let g = generators::random_regular_permutation_graph(size, d, rng);
                // For clouds barely larger than d the permutation model is
                // automatically a very good expander; only run the (costly)
                // gap estimate for sizes where it could plausibly fail.
                if size <= d || wcc_graph::spectral::spectral_gap(&g, gap_iters) >= min_gap {
                    return Ok(g);
                }
            }
            Err(CoreError::SamplingFailed(format!(
                "no {d}-regular expander on {size} vertices reached gap {min_gap} \
                 in {max_attempts} attempts"
            )))
        }
    }
}

/// Step 1 of the pipeline: Lemma 4.1.
///
/// Returns the `(d+1)`-regular graph `H = G ⓡ H` together with the cloud
/// mapping. Charges the `O(1/δ)` rounds of Lemmas 4.5 and 4.6 (expander
/// construction by distributed sorting + one shuffle to assemble the
/// product).
///
/// # Errors
///
/// Returns [`CoreError::BadParams`] for inconsistent parameters,
/// [`CoreError::SamplingFailed`] if an expander cloud cannot be sampled, or a
/// wrapped [`MpcError`] if the simulated cluster cannot hold the product.
pub fn regularize<R: Rng + ?Sized>(
    g: &Graph,
    params: &Params,
    ctx: &mut MpcContext,
    rng: &mut R,
) -> Result<RegularizedGraph, CoreError> {
    params.validate().map_err(CoreError::BadParams)?;
    let d = params.expander_degree;
    ctx.begin_phase("regularize");

    // Lemma 4.5: RegularGraphConstruction. Clouds of size <= m^delta are
    // sampled locally (one round); larger clouds are built by the
    // sample-and-sort construction, costing one distributed sort over their
    // total size.
    let m = g.num_edges().max(1);
    let local_threshold = ctx.config().memory_per_machine;
    let mut clouds = Vec::with_capacity(g.num_vertices());
    let mut large_cloud_words = 0usize;
    for v in g.vertices() {
        let dv = g.degree(v);
        if dv > local_threshold {
            large_cloud_words += dv * d / 2;
        }
        clouds.push(sample_cloud(
            dv,
            d,
            params.expander_min_gap,
            params.expander_gap_iters,
            params.expander_max_attempts,
            rng,
        )?);
    }
    // Local sampling of small clouds: one round of local work + verification.
    ctx.charge(1, 0);
    if large_cloud_words > 0 {
        // Distributed permutation-by-sorting for the oversized clouds.
        ctx.charge_sort(large_cloud_words);
    }

    // Lemma 4.6: the replacement product itself — every edge of G generates
    // one inter-cloud edge, assembled with a single shuffle keyed by port.
    let (product, layout) = replacement_product(g, &clouds);
    ctx.charge_shuffle(2 * m);
    ctx.record_balanced_load(2 * product.num_edges())?;
    ctx.end_phase();

    let ProductLayout { cloud_of, .. } = layout;
    Ok(RegularizedGraph {
        degree: d + 1,
        cloud_of,
        original_vertices: g.num_vertices(),
        graph: product,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wcc_graph::prelude::*;
    use wcc_mpc::MpcConfig;

    fn ctx_for(g: &Graph) -> MpcContext {
        MpcContext::new(MpcConfig::for_input_size(2 * g.num_edges() + 16, 0.5).permissive())
    }

    fn params() -> Params {
        Params::test_scale()
    }

    #[test]
    fn output_is_regular_and_component_preserving() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::planted_expander_components(&[40, 25, 10], 6, &mut rng);
        let mut ctx = ctx_for(&g);
        let reg = regularize(&g, &params(), &mut ctx, &mut rng).unwrap();
        assert!(reg.graph.is_regular(reg.degree));
        let base_cc = connected_components(&g);
        let reg_cc = connected_components(&reg.graph);
        assert_eq!(base_cc.num_components(), reg_cc.num_components());
        let pulled = reg.pull_back_labels(&reg_cc);
        assert!(pulled.same_partition(&base_cc));
        assert!(ctx.stats().total_rounds() >= 2);
    }

    #[test]
    fn heavy_hub_graph_is_regularized() {
        // The star is the worst case for the walk step; regularization must
        // flatten its huge hub into a cloud.
        let g = generators::star(200);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut ctx = ctx_for(&g);
        let reg = regularize(&g, &params(), &mut ctx, &mut rng).unwrap();
        assert!(reg.graph.is_regular(reg.degree));
        assert_eq!(reg.graph.num_vertices(), 2 * g.num_edges());
        assert_eq!(connected_components(&reg.graph).num_components(), 1);
    }

    #[test]
    fn gap_of_expander_survives_regularization() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::random_regular_permutation_graph(100, 10, &mut rng);
        let gap_before = spectral::spectral_gap(&g, 300);
        let mut ctx = ctx_for(&g);
        let reg = regularize(&g, &params(), &mut ctx, &mut rng).unwrap();
        let gap_after = spectral::spectral_gap(&reg.graph, 600);
        assert!(gap_before > 0.2);
        assert!(gap_after > 0.01, "gap collapsed to {gap_after}");
    }

    #[test]
    fn isolated_vertices_get_singleton_labels_on_pull_back() {
        let g = Graph::from_edges_unchecked(5, vec![(0, 1), (1, 2)]); // 3, 4 isolated
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut ctx = ctx_for(&g);
        let reg = regularize(&g, &params(), &mut ctx, &mut rng).unwrap();
        let reg_cc = connected_components(&reg.graph);
        let pulled = reg.pull_back_labels(&reg_cc);
        assert_eq!(pulled.len(), 5);
        assert_eq!(pulled.num_components(), 3);
        assert!(pulled.same_component(0, 2));
        assert!(!pulled.same_component(3, 4));
    }

    #[test]
    fn bad_params_are_reported() {
        let g = generators::cycle(10);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut ctx = ctx_for(&g);
        let mut p = params();
        p.expander_degree = 5; // odd
        assert!(matches!(
            regularize(&g, &p, &mut ctx, &mut rng),
            Err(CoreError::BadParams(_))
        ));
    }

    #[test]
    fn sample_cloud_degenerate_sizes() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let c1 = sample_cloud(1, 6, 0.3, 50, 10, &mut rng).unwrap();
        assert!(c1.is_regular(6));
        let c2 = sample_cloud(2, 6, 0.3, 50, 10, &mut rng).unwrap();
        assert!(c2.is_regular(6));
        let c9 = sample_cloud(9, 6, 0.3, 80, 20, &mut rng).unwrap();
        assert!(c9.is_regular(6));
        assert_eq!(connected_components(&c9).num_components(), 1);
    }
}
